//! Bit-identity of the on-demand deep-tail staging backend with the
//! staged-local oracle.
//!
//! The tentpole contract of `stage_ondemand`: a deep syndrome decoded
//! through [`DeepBackend::Ondemand`] — landmark exclusion, upper-triangle
//! rows, per-pair deadline certificates — must be indistinguishable,
//! prediction by prediction and matching by matching, from the same
//! decoder reading the staged dense block ([`DeepBackend::Staged`], the
//! PR 8 oracle). The on-demand engine reuses the staged path's exact
//! relaxation loop (same heap order, same strict-`<` rule, same bound
//! formulas), so equality is exact, not approximate. These tests enforce
//! it at d ∈ {3, 5, 7, 9} under defect densities high enough that the
//! deep tier (k > `DP_NODE_LIMIT`) actually fires: scratch decodes in
//! both weight domains, same-weight batches, the streamed pipeline
//! across tile sizes × thread splits, the serving front-end, and the
//! counters-sum invariant that proves every upper-triangle pair of a
//! non-memo stage is resolved exactly once.

use std::sync::{Arc, OnceLock};

use astrea::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Debug builds (the tier-1 `cargo test -q` gate) run a scaled-down
/// sweep so the suite stays in the seconds range; CI's dedicated
/// `cargo test --release --test ondemand_vs_staged` step runs the full
/// count. Coverage thresholds scale through the same helper so they
/// stay proportional to the shots actually taken.
fn shots(full: usize) -> usize {
    if cfg!(debug_assertions) {
        full.div_ceil(8)
    } else {
        full
    }
}

/// GWT-free contexts per (d, p). The p values are deliberately hot — at
/// these densities a large fraction of shots exceed `DP_NODE_LIMIT`
/// and exercise the deep backends (d = 3 cannot reach the deep tier at
/// any sane p — its 16 detectors rarely fire 12+ — and rides along for
/// trivial-agreement coverage).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3usize, 3e-2), (5, 3e-2), (7, 1.5e-2), (9, 1e-2)]
            .into_iter()
            .map(|(d, p)| {
                let ctx = ExperimentContext::with_source(d, p, WeightSource::Local);
                assert!(
                    ctx.decoding().try_gwt().is_none(),
                    "local context built a GWT"
                );
                ctx
            })
            .collect()
    })
}

/// An on-demand decoder and its staged oracle over the same context, on
/// the chosen weight axis.
fn decoder_pair(ctx: &ExperimentContext, quantized: bool) -> (MwpmDecoder<'_>, MwpmDecoder<'_>) {
    let ond = if quantized {
        MwpmDecoder::for_context_quantized(ctx.decoding())
    } else {
        MwpmDecoder::for_context(ctx.decoding())
    };
    let stg = ond.clone().with_deep_backend(DeepBackend::Staged);
    assert_eq!(ond.deep_backend(), DeepBackend::Ondemand);
    assert_eq!(stg.deep_backend(), DeepBackend::Staged);
    (ond, stg)
}

#[test]
fn scratch_decodes_agree_on_both_weight_axes() {
    let mut deep_total = 0u32;
    for ctx in grid() {
        for quantized in [false, true] {
            let (mut ond, mut stg) = decoder_pair(ctx, quantized);
            let mut so = DecodeScratch::new();
            let mut ss = DecodeScratch::new();
            let mut sampler = DemSampler::new(ctx.dem());
            let mut rng = StdRng::seed_from_u64(3000 + ctx.distance as u64);
            for _ in 0..shots(400) {
                let shot = sampler.sample(&mut rng);
                deep_total += (shot.detectors.len() > DP_NODE_LIMIT) as u32;
                let po = ond.decode_with_scratch(&shot.detectors, &mut so);
                let ps = stg.decode_with_scratch(&shot.detectors, &mut ss);
                assert_eq!(
                    po, ps,
                    "d = {}, quantized = {quantized}: {:?}",
                    ctx.distance, shot.detectors
                );
            }
            if ctx.distance >= 5 {
                // The comparison only means something if the deep tier
                // actually ran, and ran on-demand on exactly one side.
                assert!(!so.ondemand.stats.is_idle(), "d = {}", ctx.distance);
                assert!(so.ondemand.stats.collisions > 0, "d = {}", ctx.distance);
                assert!(ss.ondemand.stats.is_idle(), "d = {}", ctx.distance);
            }
        }
    }
    assert!(
        deep_total as usize > shots(1_000),
        "only {deep_total} deep syndromes sampled"
    );
}

#[test]
fn full_matchings_agree_with_ondemand_predictions() {
    // `decode_full` (the allocating oracle) always solves over staged
    // weights; the on-demand scratch prediction must land on the same
    // observables, and the two backends' full matchings must be the
    // same object bit for bit.
    for ctx in grid() {
        let (mut ond, stg) = decoder_pair(ctx, false);
        let mut so = DecodeScratch::new();
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(4000 + ctx.distance as u64);
        for _ in 0..shots(200) {
            let shot = sampler.sample(&mut rng);
            let fo = ond.decode_full(&shot.detectors);
            let fs = stg.decode_full(&shot.detectors);
            assert_eq!(
                fo.pairs, fs.pairs,
                "d = {}: {:?}",
                ctx.distance, shot.detectors
            );
            assert_eq!(fo.to_boundary, fs.to_boundary, "d = {}", ctx.distance);
            assert_eq!(fo.observables, fs.observables, "d = {}", ctx.distance);
            assert_eq!(
                fo.weight.to_bits(),
                fs.weight.to_bits(),
                "d = {}",
                ctx.distance
            );
            let po = ond.decode_with_scratch(&shot.detectors, &mut so);
            assert_eq!(po.observables, fo.observables, "d = {}", ctx.distance);
        }
    }
}

#[test]
fn ondemand_counters_partition_the_pair_count() {
    // Every upper-triangle pair of a non-memo stage is resolved exactly
    // once: excluded up front by a coordinate/landmark bound, settled
    // within its deadline (collision), or certified dominated by an
    // expired deadline. The three counters must therefore sum to
    // k·(k−1)/2 per stage — no pair double-counted, none dropped.
    for ctx in grid().iter().filter(|c| c.distance >= 5) {
        let (mut ond, _) = decoder_pair(ctx, false);
        let mut scratch = DecodeScratch::new();
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(5000 + ctx.distance as u64);
        let mut checked = 0u32;
        for _ in 0..shots(300) {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len() as u64;
            if k as usize <= DP_NODE_LIMIT {
                continue;
            }
            let before = scratch.ondemand.stats;
            ond.decode_with_scratch(&shot.detectors, &mut scratch);
            let delta = scratch.ondemand.stats.delta_since(&before);
            assert_eq!(
                delta.stages, 1,
                "d = {}: one stage per deep decode",
                ctx.distance
            );
            if delta.memo_hits > 0 {
                continue;
            }
            let pairs = k * (k - 1) / 2;
            assert_eq!(
                delta.collisions + delta.deadline_pruned + delta.excluded,
                pairs,
                "d = {}, k = {k}: counters do not partition the pair count",
                ctx.distance
            );
            assert!(delta.regions <= k, "d = {}", ctx.distance);
            assert!(delta.settled >= delta.collisions, "d = {}", ctx.distance);
            checked += 1;

            // An immediate replay of the same detector list must hit the
            // staged-block memo and do no graph work at all.
            let before = scratch.ondemand.stats;
            ond.decode_with_scratch(&shot.detectors, &mut scratch);
            let replay = scratch.ondemand.stats.delta_since(&before);
            assert_eq!(replay.memo_hits, 1, "d = {}", ctx.distance);
            assert_eq!(replay.settled + replay.regions + replay.collisions, 0);
        }
        assert!(
            checked as usize > shots(50),
            "d = {}: only {checked} deep stages checked",
            ctx.distance
        );
    }
}

#[test]
fn batched_decodes_agree() {
    // decode_slice routes same-weight runs through the fused closed-form
    // batch and everything past the closed forms through the tiered
    // per-shot path — at these densities that includes the deep tier on
    // both backends.
    for ctx in grid() {
        let batch = sample_batch(ctx, shots(3_000) as u64, 4, 177);
        let (mut ond, mut stg) = decoder_pair(ctx, false);
        let mut so = DecodeScratch::new();
        let mut ss = DecodeScratch::new();
        let ro = decode_slice(&mut ond, &mut so, &batch, 0..batch.len());
        let rs = decode_slice(&mut stg, &mut ss, &batch, 0..batch.len());
        assert_eq!(ro, rs, "d = {}", ctx.distance);
        if ctx.distance >= 5 {
            assert!(!so.ondemand.stats.is_idle(), "d = {}", ctx.distance);
            assert!(ss.ondemand.stats.is_idle(), "d = {}", ctx.distance);
        }
    }
}

#[test]
fn streamed_pipeline_agrees_across_tiles_and_threads() {
    use astrea::experiments::estimate_ler_streamed_counted;

    let ondemand: Box<astrea_experiments::DecoderFactory> = Box::new(|c: &ExperimentContext| {
        Box::new(MwpmDecoder::for_context(c.decoding())) as Box<dyn Decoder + '_>
    });
    let staged: Box<astrea_experiments::DecoderFactory> = Box::new(|c: &ExperimentContext| {
        Box::new(MwpmDecoder::for_context(c.decoding()).with_deep_backend(DeepBackend::Staged))
            as Box<dyn Decoder + '_>
    });
    for ctx in grid() {
        let mut reference = None;
        for tile_words in [1usize, 2, 5] {
            for threads in [1usize, 3] {
                let config = PipelineConfig {
                    tile_words,
                    producers: 1 + threads / 2,
                    consumers: threads,
                    channel_depth: 2,
                    source: SyndromeSource::Dem,
                    hard_cache_entries: 256,
                };
                let (ro, co) =
                    estimate_ler_streamed_counted(ctx, shots(1_103) as u64, 29, &*ondemand, config);
                let (rs, cs) =
                    estimate_ler_streamed_counted(ctx, shots(1_103) as u64, 29, &*staged, config);
                assert_eq!(
                    ro, rs,
                    "d = {}: tile_words {tile_words} × {threads} threads",
                    ctx.distance
                );
                // The backend switch must be visible in the counters: the
                // on-demand run stages on-demand, the oracle never does,
                // and both surface live local-provider counters.
                if ctx.distance >= 5 {
                    assert!(!co.ondemand.is_idle(), "d = {}", ctx.distance);
                    assert!(co.ondemand.collisions > 0, "d = {}", ctx.distance);
                }
                assert!(cs.ondemand.is_idle(), "d = {}", ctx.distance);
                // The oracle stages every non-easy shot through the
                // staged path; the on-demand run's provider work is
                // visible through whichever engine its shots used (at
                // these densities d ≥ 7 is deep-only, so its staged
                // counters are legitimately zero).
                assert!(!cs.local_weights.is_idle(), "d = {}", ctx.distance);
                assert!(
                    !co.local_weights.is_idle() || !co.ondemand.is_idle(),
                    "d = {}",
                    ctx.distance
                );
                match &reference {
                    None => reference = Some(ro),
                    Some(r) => assert_eq!(&ro, r, "d = {}", ctx.distance),
                }
            }
        }
    }
}

#[test]
fn serving_front_end_agrees() {
    // The decode service running the on-demand backend must return
    // exactly the responses the staged-oracle service returns for the
    // same stream.
    for ctx in grid().iter().filter(|c| c.distance == 5 || c.distance == 7) {
        let stream = {
            let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(5, 700);
            SyndromeBatch::from_packed(&det, &obs)
        };
        let mut responses: Vec<Vec<(u64, Prediction)>> = Vec::new();
        for backend in [DeepBackend::Ondemand, DeepBackend::Staged] {
            let factory: Arc<BatchDecoderFactory> = Arc::new(move |c: &DecodingContext| {
                Box::new(MwpmDecoder::for_context(c).with_deep_backend(backend)) as Box<dyn Decoder>
            });
            let service = DecodeService::new(
                Arc::new(ctx.decoding().clone()),
                ServeConfig {
                    workers: 3,
                    tile_words: 2,
                    ..ServeConfig::default()
                },
                factory,
            );
            let mut session = service.session(SubmitPolicy::Block);
            for i in 0..stream.len() {
                session
                    .submit(stream.detectors(i), stream.observables(i))
                    .expect("submit");
            }
            let mut got = Vec::with_capacity(stream.len());
            for _ in 0..stream.len() {
                got.push(session.recv().expect("recv"));
            }
            drop(session);
            service.shutdown();
            responses.push(got);
        }
        assert_eq!(responses[0], responses[1], "d = {}", ctx.distance);
    }
}
