//! Cross-crate checks of the paper's closed-form numbers: Table 1
//! resources, equation (2) matching counts, §5.4 latencies, Table 6 SRAM
//! sizes, Table 7 bandwidths, and the LILLIPUT scaling argument.

use astrea::prelude::*;
use astrea_core::hw6::num_perfect_matchings;
use astrea_core::overheads::{required_bandwidth_mbps, StorageModel};
use astrea_core::{astrea_decode_cycles, astrea_fetch_cycles, lilliput_table_bytes};

#[test]
fn table_1_resources() {
    for (d, data, parity, total, synd) in [
        (3, 9, 8, 17, 16),
        (5, 25, 24, 49, 72),
        (7, 49, 48, 97, 192),
        (9, 81, 80, 161, 400),
    ] {
        let r = CodeResources::for_distance(d);
        assert_eq!(
            (
                r.data_qubits,
                r.parity_qubits_x + r.parity_qubits_z,
                r.total_qubits,
                r.syndrome_len_per_basis
            ),
            (data, parity, total, synd)
        );
        // And the actual lattice agrees with the closed form.
        let code = SurfaceCode::new(d).unwrap();
        assert_eq!(code.num_data_qubits(), data);
        assert_eq!(code.num_stabilizers(), parity);
    }
}

#[test]
fn equation_2_matching_counts() {
    // §4.3: w = 4 → 3 matchings, w = 10 → 945, w = 20 → 6.5e8.
    assert_eq!(num_perfect_matchings(4), 3);
    assert_eq!(num_perfect_matchings(10), 945);
    assert_eq!(num_perfect_matchings(20), 654_729_075);
    // §5.3: HW-8 = 7 HW6 accesses; HW-10 = 63 accesses.
    assert_eq!(num_perfect_matchings(8) / num_perfect_matchings(6), 7);
    assert_eq!(num_perfect_matchings(10) / num_perfect_matchings(6), 63);
}

#[test]
fn section_5_4_latency_model() {
    // Worst case 114 cycles = 456 ns at 250 MHz.
    assert_eq!(astrea_fetch_cycles(10) + astrea_decode_cycles(10), 114);
    let p = Prediction {
        observables: 0,
        cycles: 114,
        deferred: false,
    };
    assert_eq!(p.latency_ns(250.0), 456.0);
}

#[test]
fn table_6_sram_model() {
    let model = StorageModel::default();
    let o7 = model.overheads(7);
    let o9 = model.overheads(9);
    assert_eq!(o7.gwt_bytes, 36 * 1024);
    assert_eq!(o9.gwt_bytes, 160_000);
    assert_eq!(o7.mwpm_register_bytes, 24);
    assert_eq!(o9.mwpm_register_bytes, 30);
    assert_eq!(o7.lwt_bytes, 512);
    // GWT dominates, as the paper notes.
    assert!(o9.gwt_bytes > o9.total_bytes() * 9 / 10);
}

#[test]
fn table_7_bandwidths() {
    for (trans_ns, mbps) in [
        (100.0, 100.0),
        (200.0, 50.0),
        (300.0, 80.0 / 8.0 / 300.0 * 1e3),
        (500.0, 20.0),
    ] {
        assert!((required_bandwidth_mbps(9, trans_ns) - mbps).abs() < 1e-9);
    }
}

#[test]
fn lilliput_memory_wall() {
    // §5.6: d = 5 over full rounds is already hopeless; d = 7 overflows
    // even u128 bookkeeping.
    let d3 = lilliput_table_bytes(3, 3).unwrap();
    assert_eq!(d3, 2u128 << 16);
    let d5 = lilliput_table_bytes(5, 5).unwrap();
    assert!(d5 > 1u128 << 70);
    assert!(lilliput_table_bytes(7, 7).is_none());
}

#[test]
fn gwt_sizes_match_syndrome_lengths() {
    for d in [3usize, 5] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let expected = CodeResources::for_distance(d).syndrome_len_per_basis;
        assert_eq!(ctx.gwt().len(), expected);
        assert_eq!(ctx.gwt().quantized_bytes(), expected * expected);
    }
}

#[test]
fn analytic_model_upper_bounds_observation() {
    // Figure 6's defining property: the binomial model is an upper bound
    // on the observed tail at every Hamming weight.
    use astrea_experiments::{analytic, hamming::HammingHistogram};
    let ctx = ExperimentContext::new(5, 1e-3);
    let h = HammingHistogram::sample(&ctx, 200_000, 4, 3);
    for hw in [2usize, 4, 6, 8] {
        let model_tail = analytic::hamming_weight_tail(5, 1e-3, hw - 1);
        let observed_tail = h.tail_probability(hw - 1);
        assert!(
            model_tail >= observed_tail * 0.9,
            "hw {hw}: model {model_tail} < observed {observed_tail}"
        );
    }
}
