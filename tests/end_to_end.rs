//! End-to-end integration tests: the full stack from lattice to logical
//! error rates, across crates.

use astrea::prelude::*;
use astrea_experiments::DecoderFactory;
use rand::SeedableRng;

fn factories<'a>() -> Vec<(&'static str, Box<DecoderFactory<'a>>)> {
    let mwpm: Box<DecoderFactory<'a>> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let astrea: Box<DecoderFactory<'a>> =
        Box::new(|c| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let astrea_g: Box<DecoderFactory<'a>> =
        Box::new(|c| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let uf: Box<DecoderFactory<'a>> =
        Box::new(|c| Box::new(UnionFindDecoder::new(c.graph())) as Box<dyn Decoder>);
    let clique: Box<DecoderFactory<'a>> =
        Box::new(|c| Box::new(CliqueDecoder::new(c.graph(), c.gwt())) as Box<dyn Decoder>);
    vec![
        ("MWPM", mwpm),
        ("Astrea", astrea),
        ("Astrea-G", astrea_g),
        ("UF", uf),
        ("Clique", clique),
    ]
}

#[test]
fn every_decoder_beats_the_trivial_decoder_at_d3() {
    // The trivial decoder (no correction) fails whenever the observable
    // flips; every real decoder must do better.
    let ctx = ExperimentContext::new(3, 5e-3);
    let trivial_failures = {
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        (0..30_000)
            .filter(|_| sampler.sample(&mut rng).observables != 0)
            .count() as u64
    };
    for (name, factory) in factories() {
        let r = estimate_ler(&ctx, 30_000, 4, 1, &*factory);
        assert!(
            r.failures * 2 < trivial_failures,
            "{name}: {} failures vs trivial {trivial_failures}",
            r.failures
        );
    }
}

#[test]
fn accuracy_ordering_matches_the_paper() {
    // MWPM ≈ Astrea ≈ Astrea-G ≤ Clique < UF, within Monte-Carlo noise.
    let ctx = ExperimentContext::new(5, 5e-3);
    let trials = 150_000;
    let mut lers = std::collections::HashMap::new();
    for (name, factory) in factories() {
        let r = estimate_ler(&ctx, trials, 4, 17, &*factory);
        lers.insert(name, r.ler());
    }
    let mwpm = lers["MWPM"];
    assert!(mwpm > 0.0, "need failures for comparison");
    // Astrea-G matches MWPM. Plain Astrea trails slightly at this (high)
    // p because it ignores the now-nonnegligible HW > 10 syndromes — its
    // design point is p = 1e-4, where that tail is below the LER.
    assert!(
        (lers["Astrea-G"] / mwpm - 1.0).abs() < 0.2,
        "Astrea-G LER {} vs MWPM {}",
        lers["Astrea-G"],
        mwpm
    );
    assert!(
        lers["Astrea"] >= mwpm * 0.95 && lers["Astrea"] < mwpm * 2.0,
        "Astrea LER {} vs MWPM {}",
        lers["Astrea"],
        mwpm
    );
    // At p this close to threshold all decoders compress together; the
    // UF-vs-MWPM gap is asserted separately at the paper's operating
    // point below.
    assert!(
        lers["UF"] >= mwpm * 0.95,
        "UF ({}) should not beat MWPM ({})",
        lers["UF"],
        mwpm
    );
}

#[test]
fn uf_is_measurably_worse_than_mwpm_at_the_paper_operating_point() {
    // Figure 4's qualitative claim: the approximate Union-Find decoder is
    // less accurate than MWPM in the low-p regime. Direct Monte-Carlo
    // cannot reach these rates, so use the paper's own Appendix-A
    // stratified estimator. (Deviation note, recorded in EXPERIMENTS.md:
    // a faithful Delfosse–Nickerson UF lands ~1.3–2× behind MWPM here,
    // not the 100× the paper reports for the full AFS hardware system —
    // our baseline is *stronger* than theirs, which only makes Astrea's
    // parity with MWPM harder to achieve, not easier.)
    use astrea_experiments::stratified::estimate_stratified;
    let ctx = ExperimentContext::new(5, 1e-4);
    let mwpm: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let uf: Box<DecoderFactory> =
        Box::new(|c| Box::new(UnionFindDecoder::new(c.graph())) as Box<dyn Decoder>);
    let m = estimate_stratified(&ctx, 8, 12_000, 4, 21, &*mwpm).ler();
    let u = estimate_stratified(&ctx, 8, 12_000, 4, 21, &*uf).ler();
    assert!(m > 0.0);
    assert!(
        u > 1.2 * m,
        "UF ({u:.3e}) should be measurably worse than MWPM ({m:.3e}) at p = 1e-4"
    );
}

#[test]
fn astrea_equals_mwpm_shot_by_shot_at_low_weight() {
    // Not just equal rates: on syndromes within its reach, Astrea must
    // produce the same weight-optimal prediction as quantized MWPM except
    // for exact ties.
    let ctx = ExperimentContext::new(3, 3e-3);
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mut mwpm = MwpmDecoder::with_quantized_weights(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let (mut n, mut same) = (0, 0);
    for _ in 0..30_000 {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() || shot.detectors.len() > 10 {
            continue;
        }
        n += 1;
        same += (astrea.decode(&shot.detectors).observables
            == mwpm.decode(&shot.detectors).observables) as u32;
    }
    assert!(n > 500);
    assert!(same as f64 / n as f64 > 0.995, "{same}/{n}");
}

#[test]
fn logical_error_rate_shrinks_with_distance_for_astrea_g() {
    // Exponential error suppression (below threshold) must survive the
    // full Astrea-G path, not just ideal MWPM.
    let p = 2e-3;
    let ctx3 = ExperimentContext::new(3, p);
    let ctx5 = ExperimentContext::new(5, p);
    let factory: Box<DecoderFactory> =
        Box::new(|c| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let r3 = estimate_ler(&ctx3, 60_000, 4, 3, &*factory);
    let r5 = estimate_ler(&ctx5, 60_000, 4, 3, &*factory);
    assert!(r3.failures > 30, "{}", r3.failures);
    assert!(
        r5.ler() < r3.ler() / 2.0,
        "d=3 {} vs d=5 {}",
        r3.ler(),
        r5.ler()
    );
}

#[test]
fn frame_simulator_and_dem_sampler_agree_end_to_end() {
    // Decoding statistics must be the same whether shots come from the
    // fast DEM sampler or from full circuit-level frame simulation.
    let code = SurfaceCode::new(3).unwrap();
    let noise = NoiseModel::depolarizing(4e-3);
    let circuit = build_memory_z_circuit(&code, 3, noise);
    let ctx = DecodingContext::from_circuit(&circuit);
    let mut decoder = MwpmDecoder::new(ctx.gwt());

    let trials = 40_000;
    let mut frame_failures = 0u32;
    let mut sim = FrameSimulator::new(&circuit);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for _ in 0..trials {
        let (dets, obs) = sim.sample(&circuit, &mut rng);
        let active: Vec<u32> = dets
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        frame_failures += (decoder.decode(&active).observables != obs) as u32;
    }

    let mut dem_failures = 0u32;
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    for _ in 0..trials {
        let shot = sampler.sample(&mut rng);
        dem_failures += (decoder.decode(&shot.detectors).observables != shot.observables) as u32;
    }

    let (a, b) = (frame_failures as f64, dem_failures as f64);
    assert!(a > 20.0 && b > 20.0, "need failures: frame {a}, dem {b}");
    // 5-sigma Poisson agreement.
    assert!(
        (a - b).abs() < 5.0 * (a + b).sqrt(),
        "frame {a} vs dem {b} failures"
    );
}

#[test]
fn full_run_is_deterministic() {
    let ctx = ExperimentContext::new(3, 5e-3);
    for (_, factory) in factories() {
        let a = estimate_ler(&ctx, 5_000, 3, 77, &*factory);
        let b = estimate_ler(&ctx, 5_000, 3, 77, &*factory);
        assert_eq!(a, b);
    }
}

#[test]
fn more_rounds_means_more_exposure() {
    // A memory experiment over 3d rounds accumulates roughly three logical
    // cycles of error exposure; its failure rate must exceed the d-round
    // experiment's.
    use qec_circuit::build_memory_z_circuit;
    let code = SurfaceCode::new(3).unwrap();
    let noise = NoiseModel::depolarizing(4e-3);
    let short = build_memory_z_circuit(&code, 3, noise);
    let long = build_memory_z_circuit(&code, 9, noise);
    let ctx_short = ExperimentContext::from_circuit(3, 4e-3, &short);
    let ctx_long = ExperimentContext::from_circuit(3, 4e-3, &long);
    let factory: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let r_short = estimate_ler(&ctx_short, 40_000, 4, 8, &*factory);
    let r_long = estimate_ler(&ctx_long, 40_000, 4, 8, &*factory);
    assert!(r_short.failures > 20);
    assert!(
        r_long.ler() > 1.5 * r_short.ler(),
        "3 rounds: {}, 9 rounds: {}",
        r_short.ler(),
        r_long.ler()
    );
}

#[test]
fn x_and_z_memory_have_statistically_equal_ler() {
    // §3.4: the bases are functionally equivalent under symmetric noise.
    use qec_circuit::{build_memory_x_circuit, build_memory_z_circuit};
    let code = SurfaceCode::new(3).unwrap();
    let noise = NoiseModel::depolarizing(5e-3);
    let zc = build_memory_z_circuit(&code, 3, noise);
    let xc = build_memory_x_circuit(&code, 3, noise);
    let zctx = ExperimentContext::from_circuit(3, 5e-3, &zc);
    let xctx = ExperimentContext::from_circuit(3, 5e-3, &xc);
    let factory: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let z = estimate_ler(&zctx, 60_000, 4, 4, &*factory);
    let x = estimate_ler(&xctx, 60_000, 4, 4, &*factory);
    let (zf, xf) = (z.failures as f64, x.failures as f64);
    assert!(zf > 30.0 && xf > 30.0, "need failures: z {zf}, x {xf}");
    assert!(
        (zf - xf).abs() < 6.0 * (zf + xf).sqrt(),
        "basis asymmetry: Z {zf} failures vs X {xf}"
    );
}

#[test]
fn stale_gwt_is_worse_than_reprogrammed_gwt_under_drift() {
    // §8.2: the GWT adapts to non-uniform error rates.
    use qec_circuit::{build_memory_circuit, NoiseMap};
    use surface_code::Basis;
    let code = SurfaceCode::new(3).unwrap();
    let base = 2e-3;
    let mut hot = NoiseMap::uniform(&code, NoiseModel::depolarizing(base));
    for q in [0usize, 1, 3, 4] {
        hot.scale_qubit(q, 10.0);
    }
    let true_circuit = build_memory_circuit(&code, 3, &hot, Basis::Z);
    let true_ctx = ExperimentContext::from_circuit(3, base, &true_circuit);
    let stale_ctx = ExperimentContext::new(3, base);

    let stale_gwt = stale_ctx.gwt();
    let stale: Box<DecoderFactory> =
        Box::new(move |_c| Box::new(MwpmDecoder::new(stale_gwt)) as Box<dyn Decoder>);
    let fresh: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let r_stale = estimate_ler(&true_ctx, 150_000, 4, 6, &*stale);
    let r_fresh = estimate_ler(&true_ctx, 150_000, 4, 6, &*fresh);
    assert!(r_fresh.failures > 30);
    assert!(
        r_stale.ler() >= r_fresh.ler(),
        "stale {} vs fresh {}",
        r_stale.ler(),
        r_fresh.ler()
    );
}

#[test]
fn local_mwpm_matches_full_mwpm_at_distance_9() {
    // The sparse (GWT-free) software matcher must track full MWPM on a
    // larger code too — the regime PyMatching-style decoding targets.
    let ctx = ExperimentContext::new(9, 2e-3);
    let mut local = LocalMwpmDecoder::new(ctx.graph());
    let mut full = MwpmDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let (mut n, mut agree) = (0u32, 0u32);
    for _ in 0..3000 {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() {
            continue;
        }
        n += 1;
        agree += (local.decode(&shot.detectors).observables
            == full.decode(&shot.detectors).observables) as u32;
    }
    assert!(n > 1000);
    assert!(
        agree as f64 / n as f64 > 0.995,
        "local/full agreement {agree}/{n} at d=9"
    );
}
