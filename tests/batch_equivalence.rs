//! Batched decoding must be indistinguishable from sequential decoding.
//!
//! The batch engine's whole contract is determinism: for the same seed,
//! a run sharded over any number of workers — persistent-pool or
//! scoped-thread — produces bit-identical corrections, failure counts,
//! and latency statistics. These properties hold for *arbitrary*
//! `(distance, p, seed, threads)` combinations, enforced by proptest.

use astrea::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Distances × error rates covered by the properties. Contexts are built
/// once (all-pairs Dijkstra is the expensive part) and shared by every
/// case; the *decode* inputs remain fully random.
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3, 2e-3), (3, 8e-3), (5, 2e-3), (5, 6e-3)]
            .into_iter()
            .map(|(d, p)| ExperimentContext::new(d, p))
            .collect()
    })
}

fn mwpm_factory<'a>() -> Box<astrea_experiments::DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn astrea_g_factory<'a>() -> Box<astrea_experiments::DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

proptest! {
    // Each case decodes hundreds of shots twice; a modest case count
    // keeps the whole file inside the tier-1 time budget.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn estimate_ler_is_thread_count_invariant(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 2usize..9,
        trials in 301u64..900,
        use_astrea_g in any::<bool>(),
    ) {
        let ctx = &grid()[ctx_idx];
        let factory = if use_astrea_g { astrea_g_factory() } else { mwpm_factory() };
        let sequential = estimate_ler(ctx, trials, 1, seed, &*factory);
        let batched = estimate_ler(ctx, trials, threads, seed, &*factory);
        prop_assert_eq!(sequential, batched, "threads {} diverged", threads);
        prop_assert_eq!(sequential.trials, trials);
    }

    #[test]
    fn pool_predictions_match_sequential_decode(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 1usize..9,
        shots in 100u64..600,
    ) {
        let ctx = &grid()[ctx_idx];
        let batch = sample_batch(ctx, shots, threads, seed);

        // Sequential reference: one decoder, one scratch arena, in order.
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let reference = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());

        // Persistent pool with an arbitrary worker count.
        let shared = Arc::new(ctx.decoding().clone());
        let factory: Arc<BatchDecoderFactory> = Arc::new(|c: &DecodingContext| {
            Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>
        });
        let mut pool = BatchDecoder::new(shared, threads, factory);
        let batched = pool.decode_batch(&batch);

        prop_assert_eq!(&batched.predictions, &reference.predictions);
        prop_assert_eq!(batched.stats, reference.stats);
        prop_assert_eq!(batched.failures, reference.failures);
        prop_assert_eq!(batched.deferred, reference.deferred);
    }

    #[test]
    fn sampling_is_thread_count_invariant(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 2usize..9,
        shots in 1u64..700,
    ) {
        let ctx = &grid()[ctx_idx];
        let a = sample_batch(ctx, shots, 1, seed);
        let b = sample_batch(ctx, shots, threads, seed);
        prop_assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            prop_assert_eq!(a.detectors(i), b.detectors(i), "shot {}", i);
            prop_assert_eq!(a.observables(i), b.observables(i), "shot {}", i);
        }
    }

    #[test]
    fn scoped_and_persistent_paths_agree(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 1usize..9,
        shots in 50u64..400,
    ) {
        // `decode_batch_ler` (scoped threads, borrowed factory) and
        // `BatchDecoder` (persistent pool, HRTB factory) must account
        // identically: same failures, same deferrals, same stats.
        let ctx = &grid()[ctx_idx];
        let batch = sample_batch(ctx, shots, threads, seed);
        let ler = decode_batch_ler(ctx, &batch, threads, &*mwpm_factory());

        let shared = Arc::new(ctx.decoding().clone());
        let factory: Arc<BatchDecoderFactory> = Arc::new(|c: &DecodingContext| {
            Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>
        });
        let mut pool = BatchDecoder::new(shared, threads, factory);
        let batched = pool.decode_batch(&batch);

        prop_assert_eq!(ler.trials, shots);
        prop_assert_eq!(ler.failures, batched.failures);
        prop_assert_eq!(ler.deferred, batched.deferred);
        prop_assert_eq!(ler.latency, batched.stats);
    }
}
