//! Bit-identity of the decode service with the offline batch path.
//!
//! The serving contract: for any number of concurrent clients, any
//! cross-client tile packing, any worker count, and any flush timing,
//! each client's response stream equals exactly what offline
//! `decode_batch`/`decode_slice` produce for its shots alone, and the
//! aggregate service accounting (the `LerResult` fields: trials,
//! failures, deferrals, latency statistics) equals the offline totals.
//! These tests replay identical packed syndrome streams through both
//! paths — with randomized flush timing and thread interleavings — and
//! assert equality, deterministic decode by deterministic decode.

use std::sync::{Arc, OnceLock};

use astrea::prelude::*;
use astrea_serve::{ArrivalMode, DecodeService, LoadGenConfig, ServeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shared decoding contexts (DEM extraction is the expensive part).
fn grid() -> &'static [Arc<DecodingContext>] {
    static GRID: OnceLock<Vec<Arc<DecodingContext>>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3usize, 8e-3), (3, 2e-2), (5, 6e-3)]
            .into_iter()
            .map(|(d, p)| {
                let code = SurfaceCode::new(d).expect("valid distance");
                Arc::new(DecodingContext::for_memory_experiment(
                    &code,
                    NoiseModel::depolarizing(p),
                ))
            })
            .collect()
    })
}

fn mwpm_factory() -> Arc<BatchDecoderFactory> {
    Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn sample_stream(ctx: &DecodingContext, seed: u64, shots: usize) -> SyndromeBatch {
    let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(seed, shots);
    SyndromeBatch::from_packed(&det, &obs)
}

/// Runs every stream through the service concurrently — one thread per
/// client, each flushing at `flush_prob`-random points of its stream —
/// and returns per-client predictions in submission order.
fn serve_streams(
    ctx: &Arc<DecodingContext>,
    config: ServeConfig,
    streams: &[SyndromeBatch],
    flush_prob: f64,
    seed: u64,
) -> Vec<Vec<Prediction>> {
    let service = DecodeService::new(Arc::clone(ctx), config, mwpm_factory());
    let mut per_client: Vec<Vec<Prediction>> = Vec::with_capacity(streams.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(streams.len());
        for (client, stream) in streams.iter().enumerate() {
            let mut session = service.session(astrea_serve::SubmitPolicy::Block);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((client as u64) << 17));
                let mut got = Vec::with_capacity(stream.len());
                for i in 0..stream.len() {
                    session
                        .submit(stream.detectors(i), stream.observables(i))
                        .expect("submit");
                    if rng.gen_bool(flush_prob) {
                        session.flush().expect("flush");
                    }
                    // Occasionally drain a response early so submission
                    // and consumption interleave differently per run.
                    if rng.gen_bool(0.25) {
                        if let Some((_, p)) = drain_one(&mut session) {
                            got.push(p);
                        }
                    }
                }
                session.flush().expect("final flush");
                while got.len() < stream.len() {
                    let (seq, p) = session.recv().expect("recv");
                    assert_eq!(seq, got.len() as u64, "out-of-order delivery");
                    got.push(p);
                }
                got
            }));
        }
        for h in handles {
            per_client.push(h.join().expect("client thread panicked"));
        }
    });

    // The service accounting must equal the offline totals before we
    // hand predictions back (asserted here so every caller checks it).
    let stats = service.stats();
    let mut offline = StreamTotals::default();
    for s in streams {
        offline.absorb(ctx, s);
    }
    let serving = LerResult {
        trials: stats.outcome.stats.shots,
        failures: stats.outcome.failures,
        deferred: stats.outcome.deferred,
        latency: stats.outcome.stats,
    };
    assert_eq!(
        serving,
        offline.ler(),
        "service LerResult diverged from offline"
    );
    service.shutdown();
    per_client
}

fn drain_one(session: &mut astrea_serve::ClientSession) -> Option<(u64, Prediction)> {
    session
        .recv_timeout(std::time::Duration::from_millis(1))
        .ok()
}

/// Offline reference accounting accumulated across streams.
#[derive(Default)]
struct StreamTotals {
    stats: LatencyStats,
    failures: u64,
    deferred: u64,
}

impl StreamTotals {
    fn absorb(&mut self, ctx: &DecodingContext, stream: &SyndromeBatch) {
        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let out = decode_slice(&mut dec, &mut scratch, stream, 0..stream.len());
        self.stats.merge(&out.stats);
        self.failures += out.failures;
        self.deferred += out.deferred;
    }

    fn ler(&self) -> LerResult {
        LerResult {
            trials: self.stats.shots,
            failures: self.failures,
            deferred: self.deferred,
            latency: self.stats,
        }
    }
}

fn offline_predictions(ctx: &DecodingContext, stream: &SyndromeBatch) -> Vec<Prediction> {
    let mut dec = MwpmDecoder::new(ctx.gwt());
    let mut scratch = DecodeScratch::new();
    decode_slice(&mut dec, &mut scratch, stream, 0..stream.len()).predictions
}

#[test]
fn concurrent_clients_match_offline_decode_batch() {
    let ctx = &grid()[1];
    let clients = 4;
    let streams: Vec<SyndromeBatch> = (0..clients)
        .map(|c| sample_stream(ctx, 1000 + c as u64, 400))
        .collect();

    let config = ServeConfig {
        workers: 2,
        tile_words: 2,
        ..ServeConfig::default()
    };
    let served = serve_streams(ctx, config, &streams, 0.15, 42);

    // Per-client bit-identity against the offline batch engine itself
    // (2-thread pool), which is in turn bit-identical to decode_slice.
    let mut pool = BatchDecoder::new(Arc::clone(ctx), 2, mwpm_factory());
    for (stream, got) in streams.iter().zip(&served) {
        let offline = pool.decode_batch(stream);
        assert_eq!(
            got, &offline.predictions,
            "serving diverged from decode_batch"
        );
    }
}

#[test]
fn load_gen_streams_match_offline_for_both_modes() {
    let ctx = &grid()[0];
    let cfg = LoadGenConfig {
        clients: 3,
        shots_per_client: 250,
        mode: ArrivalMode::Closed,
        replay_fraction: 0.4,
        seed: 31,
    };
    let streams = astrea_serve::build_workload(ctx, &cfg);
    for mode in [
        ArrivalMode::Closed,
        ArrivalMode::Open {
            shots_per_sec: 60_000.0,
        },
    ] {
        let service = DecodeService::new(Arc::clone(ctx), ServeConfig::default(), mwpm_factory());
        let report = astrea_serve::run_load(&service, &streams, mode);
        for (stream, outcome) in streams.iter().zip(&report.outcomes) {
            assert_eq!(
                outcome.predictions,
                offline_predictions(ctx, stream),
                "load-gen serving diverged from offline"
            );
        }
        service.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleavings of 2–8 client streams × tile sizes ×
    /// worker counts produce the same per-client outputs as each stream
    /// decoded alone.
    #[test]
    fn cross_client_batching_is_invisible(
        ctx_idx in 0usize..3,
        clients in 2usize..=8,
        shots_per_client in 1usize..150,
        tile_words in prop::sample::select(vec![1usize, 2, 5]),
        workers in 1usize..=3,
        flush_prob in prop::sample::select(vec![0.0, 0.1, 0.5]),
        seed in any::<u64>(),
    ) {
        let ctx = &grid()[ctx_idx];
        let streams: Vec<SyndromeBatch> = (0..clients)
            .map(|c| sample_stream(ctx, seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9), shots_per_client))
            .collect();
        let config = ServeConfig {
            workers,
            tile_words,
            ..ServeConfig::default()
        };
        let served = serve_streams(ctx, config, &streams, flush_prob, seed);
        for (stream, got) in streams.iter().zip(&served) {
            prop_assert_eq!(got, &offline_predictions(ctx, stream));
        }
    }
}
