//! Certificates and statistical gates for the graph-native primal-dual
//! deep-tail backend.
//!
//! [`DeepBackend::GraphPd`] is explicitly **not** bit-identical to the
//! on-demand/staged engines: meet-in-the-middle weights associate the
//! f64 sum differently and equal-weight shortest chains may tie-break to
//! a different matching. Its contract is therefore proven three ways:
//!
//! 1. **Per-shot weight certificates** — every graph-pd matching is a
//!    perfect matching over the shot's detectors whose total weight,
//!    re-evaluated under the *oracle's* staged weights, equals the
//!    on-demand optimum in both weight domains (exact and quantized).
//!    Distinct matchings differ by whole error mechanisms (≥ ~10⁻³ in
//!    −log₁₀ P units), so the 10⁻⁶-relative tolerance separates "same
//!    optimum, different rounding" from any real suboptimality.
//! 2. **Self-consistency** — the backend is deterministic per detector
//!    list, so scratch, allocating, batched, streamed (any tile size ×
//!    thread split), and served decodes must agree bit for bit *with
//!    each other*.
//! 3. **A statistical LER gate** — two-proportion equivalence against
//!    the on-demand backend on the same sampled stream at deep-tier-hot
//!    p, which is what bounds the tie-break surface's effect on logical
//!    accuracy.
//!
//! Counter drift guards ride along: a graph-pd run must leave the
//! on-demand counters idle and vice versa, so a dispatch regression
//! cannot silently decode on the wrong engine.

use std::sync::{Arc, OnceLock};

use astrea::prelude::*;
use blossom_mwpm::MatchingSolution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Debug builds (the tier-1 `cargo test -q` gate) run a scaled-down
/// sweep; CI's dedicated `cargo test --release --test graphpd_vs_ondemand`
/// step runs the full count. Thresholds scale through the same helper.
fn shots(full: usize) -> usize {
    if cfg!(debug_assertions) {
        full.div_ceil(8)
    } else {
        full
    }
}

/// GWT-free contexts per (d, p), deliberately hot so the deep tier
/// (k > `DP_NODE_LIMIT`) actually fires (d = 3 rides along for
/// trivial-agreement coverage).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3usize, 3e-2), (5, 3e-2), (7, 1.5e-2), (9, 1e-2)]
            .into_iter()
            .map(|(d, p)| {
                let ctx = ExperimentContext::with_source(d, p, WeightSource::Local);
                assert!(
                    ctx.decoding().try_gwt().is_none(),
                    "local context built a GWT"
                );
                ctx
            })
            .collect()
    })
}

/// A graph-pd decoder and an on-demand reference over the same context,
/// on the chosen weight axis.
fn decoder_pair(ctx: &ExperimentContext, quantized: bool) -> (MwpmDecoder<'_>, MwpmDecoder<'_>) {
    let ond = if quantized {
        MwpmDecoder::for_context_quantized(ctx.decoding())
    } else {
        MwpmDecoder::for_context(ctx.decoding())
    };
    let gpd = ond.clone().with_deep_backend(DeepBackend::GraphPd);
    assert_eq!(ond.deep_backend(), DeepBackend::Ondemand);
    assert_eq!(gpd.deep_backend(), DeepBackend::GraphPd);
    (gpd, ond)
}

/// Re-evaluates a matching under the oracle's staged weights: the sum of
/// its pair weights (clamped exactly as the deep solvers clamp them) and
/// boundary weights on the chosen axis. The oracle must have staged a
/// superset of the solution's detectors.
fn matching_weight(sol: &MatchingSolution, oracle: &LocalWeightProvider, quantized: bool) -> f64 {
    // The deep solvers substitute 2 × WEIGHT_CLAMP (= 2e4) for dominated
    // pairs; no finite surface-code weight approaches it, so the clamp
    // only normalizes the INFINITY sentinels.
    let clamp = 2e4;
    let bt = oracle.boundary();
    let scale = bt.scale();
    let mut w = 0.0;
    for &(a, b) in &sol.pairs {
        let pw = if quantized {
            oracle.pair_weight_q(a, b) as f64 / scale
        } else {
            oracle.pair_weight(a, b)
        };
        w += pw.min(clamp);
    }
    for &a in &sol.to_boundary {
        w += if quantized {
            bt.weight_q(a) as f64 / scale
        } else {
            bt.weight(a)
        };
    }
    w
}

#[test]
fn weight_certificates_hold_on_both_axes() {
    // Sampled deep syndromes plus randomized detector subsets (the
    // proptest-style sweep: arbitrary densities and k well past the DP
    // band, not just what the noise model produces). For every shot,
    // both backends' full matchings are perfect over the detectors and
    // carry equal total weight under one canonical staged oracle, on
    // both weight axes; the graph-pd scratch prediction agrees with its
    // own allocating path bit for bit.
    let mut deep_total = 0u32;
    for ctx in grid() {
        let boundary = ctx.decoding().boundary();
        let mut oracle = LocalWeightProvider::new(ctx.graph(), boundary);
        for quantized in [false, true] {
            let (mut gpd, mut ond) = decoder_pair(ctx, quantized);
            let mut sg = DecodeScratch::new();
            let mut so = DecodeScratch::new();
            let mut sampler = DemSampler::new(ctx.dem());
            let mut rng = StdRng::seed_from_u64(6000 + ctx.distance as u64);
            let n = ctx.graph().num_detectors() as u32;
            for round in 0..shots(240) {
                let detectors: Vec<u32> = if round % 3 == 2 {
                    // Random subset at a random density (possibly far
                    // above what sampling produces).
                    let density = rng.gen_range(0.02..0.25);
                    (0..n).filter(|_| rng.gen_bool(density)).collect()
                } else {
                    sampler.sample(&mut rng).detectors.clone()
                };
                deep_total += (detectors.len() > DP_NODE_LIMIT) as u32;
                let pg = gpd.decode_with_scratch(&detectors, &mut sg);
                let fg = gpd.decode_full(&detectors);
                let fo = ond.decode_full(&detectors);
                assert_eq!(
                    pg.observables, fg.observables,
                    "d = {}, quantized = {quantized}: scratch != full",
                    ctx.distance
                );
                assert!(fg.is_perfect_over(&detectors), "d = {}", ctx.distance);
                assert!(fo.is_perfect_over(&detectors), "d = {}", ctx.distance);
                oracle.stage(&detectors);
                let wg = matching_weight(&fg, &oracle, quantized);
                let wo = matching_weight(&fo, &oracle, quantized);
                assert!(
                    (wg - wo).abs() <= 1e-6 * (1.0 + wo.abs()),
                    "d = {}, quantized = {quantized}: graph-pd matching weighs {wg}, \
                     oracle optimum {wo} ({detectors:?})",
                    ctx.distance
                );
                ond.decode_with_scratch(&detectors, &mut so);
            }
            if ctx.distance >= 5 {
                // Drift guard: each backend drives only its own engine.
                assert!(!sg.graphpd.stats.is_idle(), "d = {}", ctx.distance);
                assert!(sg.graphpd.stats.merges > 0, "d = {}", ctx.distance);
                assert!(sg.ondemand.stats.is_idle(), "d = {}", ctx.distance);
                assert!(!so.ondemand.stats.is_idle(), "d = {}", ctx.distance);
                assert!(so.graphpd.stats.is_idle(), "d = {}", ctx.distance);
            }
        }
    }
    assert!(
        deep_total as usize > shots(1_000),
        "only {deep_total} deep syndromes exercised"
    );
}

#[test]
fn graphpd_counters_partition_the_pair_count() {
    // Every pair of a non-memo graph-pd stage resolves exactly once:
    // excluded up front, met within its bound (merge), or certified
    // dominated. The three counters must sum to k·(k−1)/2 per stage,
    // and a replay of the same list must be a pure memo hit.
    for ctx in grid().iter().filter(|c| c.distance >= 5) {
        let (mut gpd, _) = decoder_pair(ctx, false);
        let mut scratch = DecodeScratch::new();
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(7000 + ctx.distance as u64);
        let mut checked = 0u32;
        for _ in 0..shots(300) {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len() as u64;
            if k as usize <= DP_NODE_LIMIT {
                continue;
            }
            let before = scratch.graphpd.stats;
            gpd.decode_with_scratch(&shot.detectors, &mut scratch);
            let delta = scratch.graphpd.stats.delta_since(&before);
            assert_eq!(delta.stages, 1, "d = {}", ctx.distance);
            if delta.memo_hits > 0 {
                continue;
            }
            let pairs = k * (k - 1) / 2;
            assert_eq!(
                delta.merges + delta.deadline_pruned + delta.excluded,
                pairs,
                "d = {}, k = {k}: counters do not partition the pair count",
                ctx.distance
            );
            assert!(delta.regions <= k, "d = {}", ctx.distance);
            assert!(delta.grows >= delta.regions, "d = {}", ctx.distance);
            checked += 1;

            let before = scratch.graphpd.stats;
            gpd.decode_with_scratch(&shot.detectors, &mut scratch);
            let replay = scratch.graphpd.stats.delta_since(&before);
            assert_eq!(replay.memo_hits, 1, "d = {}", ctx.distance);
            assert_eq!(replay.grows + replay.regions + replay.merges, 0);
        }
        assert!(
            checked as usize > shots(50),
            "d = {}: only {checked} deep stages checked",
            ctx.distance
        );
        // The whole sweep must never have touched the on-demand engine.
        assert!(scratch.ondemand.stats.is_idle(), "d = {}", ctx.distance);
    }
}

#[test]
fn batched_decodes_match_per_shot_decodes() {
    // decode_slice routes shots through the closed-form batches and the
    // tiered per-shot path; under graph-pd the batched predictions must
    // equal a fresh per-shot sweep of the same decoder bit for bit.
    for ctx in grid() {
        let batch = sample_batch(ctx, shots(3_000) as u64, 4, 911);
        let (mut gpd, _) = decoder_pair(ctx, false);
        let mut sb = DecodeScratch::new();
        let outcome = decode_slice(&mut gpd, &mut sb, &batch, 0..batch.len());
        let mut sp = DecodeScratch::new();
        let mut failures = 0u64;
        for i in 0..batch.len() {
            let p = gpd.decode_with_scratch(batch.detectors(i), &mut sp);
            assert_eq!(p, outcome.predictions[i], "d = {}, shot {i}", ctx.distance);
            failures += u64::from(p.observables != batch.observables(i));
        }
        assert_eq!(outcome.failures, failures, "d = {}", ctx.distance);
        if ctx.distance >= 5 {
            assert!(!sb.graphpd.stats.is_idle(), "d = {}", ctx.distance);
            assert!(sb.ondemand.stats.is_idle(), "d = {}", ctx.distance);
        }
    }
}

#[test]
fn streamed_pipeline_is_invariant_and_ler_equivalent() {
    use astrea::experiments::estimate_ler_streamed_counted;

    // Graph-pd is deterministic per detector list, so the streamed
    // result must be invariant across tile sizes × thread splits; and on
    // the same sampled stream its failure count must be statistically
    // indistinguishable from the on-demand backend's (two-proportion
    // z-gate — the backends may differ on individual tie shots, but any
    // systematic accuracy gap would show here).
    let gpd = mwpm_factory(DeepBackend::GraphPd);
    let ond = mwpm_factory(DeepBackend::Ondemand);
    for ctx in grid() {
        let trials = shots(4_400) as u64;
        let mut reference = None;
        let mut gpd_failures = 0u64;
        let mut ond_failures = 0u64;
        for (tile_words, threads) in [(1usize, 1usize), (2, 3), (5, 2)] {
            let config = PipelineConfig {
                tile_words,
                producers: 1 + threads / 2,
                consumers: threads,
                channel_depth: 2,
                source: SyndromeSource::Dem,
                hard_cache_entries: 256,
            };
            let (rg, cg) = estimate_ler_streamed_counted(ctx, trials, 37, &gpd, config);
            // Backend drift guard at the pipeline level.
            if ctx.distance >= 5 {
                assert!(!cg.graphpd.is_idle(), "d = {}", ctx.distance);
                assert!(cg.graphpd.merges > 0, "d = {}", ctx.distance);
            }
            assert!(cg.ondemand.is_idle(), "d = {}", ctx.distance);
            match &reference {
                None => {
                    let (ro, co) = estimate_ler_streamed_counted(ctx, trials, 37, &ond, config);
                    assert!(co.graphpd.is_idle(), "d = {}", ctx.distance);
                    if ctx.distance >= 5 {
                        assert!(!co.ondemand.is_idle(), "d = {}", ctx.distance);
                    }
                    gpd_failures = rg.failures;
                    ond_failures = ro.failures;
                    reference = Some(rg);
                }
                Some(r) => assert_eq!(
                    &rg, r,
                    "d = {}: tile_words {tile_words} × {threads} threads",
                    ctx.distance
                ),
            }
        }
        // Two-proportion z-gate on the same stream. Outcomes are paired
        // (only tie shots can differ), so the unpaired variance estimate
        // is conservative.
        let (f1, f2, n) = (gpd_failures as f64, ond_failures as f64, trials as f64);
        let pooled = (f1 + f2) / (2.0 * n);
        if pooled > 0.0 {
            let se = (2.0 * pooled * (1.0 - pooled) / n).sqrt();
            let z = (f1 - f2) / se;
            assert!(
                z.abs() < 5.0,
                "d = {}: graph-pd LER diverges from on-demand \
                 ({gpd_failures} vs {ond_failures} failures in {trials} shots, z = {z:.2})",
                ctx.distance
            );
        }
    }
}

#[test]
fn serving_front_end_matches_offline_decodes() {
    // A decode service running the graph-pd backend must return, shot
    // for shot, exactly what an offline scratch decode of the same
    // stream produces.
    for ctx in grid().iter().filter(|c| c.distance == 5 || c.distance == 7) {
        let stream = {
            let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(5, 700);
            SyndromeBatch::from_packed(&det, &obs)
        };
        let factory: Arc<BatchDecoderFactory> = Arc::new(move |c: &DecodingContext| {
            Box::new(MwpmDecoder::for_context(c).with_deep_backend(DeepBackend::GraphPd))
                as Box<dyn Decoder>
        });
        let service = DecodeService::new(
            Arc::new(ctx.decoding().clone()),
            ServeConfig {
                workers: 3,
                tile_words: 2,
                ..ServeConfig::default()
            },
            factory,
        );
        let mut session = service.session(SubmitPolicy::Block);
        for i in 0..stream.len() {
            session
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        let mut got: Vec<(u64, Prediction)> = Vec::with_capacity(stream.len());
        for _ in 0..stream.len() {
            got.push(session.recv().expect("recv"));
        }
        drop(session);
        service.shutdown();
        got.sort_unstable_by_key(|&(id, _)| id);
        let (mut offline, _) = decoder_pair(ctx, false);
        let mut scratch = DecodeScratch::new();
        for (id, served) in got {
            let want = offline.decode_with_scratch(stream.detectors(id as usize), &mut scratch);
            assert_eq!(served, want, "d = {}, shot {id}", ctx.distance);
        }
        if ctx.distance >= 5 {
            assert!(!scratch.graphpd.stats.is_idle(), "d = {}", ctx.distance);
        }
    }
}
