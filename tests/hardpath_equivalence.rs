//! Equivalence of the hard-shot fast paths with their references.
//!
//! PR 4 rebuilt how hard shots (Hamming weight ≥ 3) reach the matching
//! solver: HW ≤ 4 syndromes decode through a GWT-direct closed form (one
//! batched triangular gather, no weight-matrix staging), HW 5..=11 stage
//! a dense matrix with one batched row gather and run the memoized
//! subset DP, and cacheable weights may be served from a per-worker
//! [`HardSyndromeCache`]. None of that may change a single decoded bit:
//!
//! * every `decode_with_scratch` result must equal the closure-staged
//!   reference (`subset_dp::solve` reading the weight table entry-wise)
//!   *and* the decoder's allocating `decode` path, for the exact and the
//!   quantized decoder alike;
//! * the full streamed pipeline must produce bit-identical [`LerResult`]s
//!   whether the hard-syndrome cache is disabled, tiny (evicting
//!   constantly), or large.
//!
//! PR 5 extends the scratch path past the DP crossover: deep shots
//! (HW > 11) now run the cluster decomposition and the sparse blossom
//! solver entirely in the per-worker arena. The deep axis below pins
//! that band to the allocating dense-oracle path bit-for-bit.

use astrea::prelude::*;
use blossom_mwpm::subset_dp;
use decoding_graph::DecodeScratch;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Mirrors the decoder's private pair-weight clamp (`2 × WEIGHT_CLAMP`
/// in `blossom_mwpm::decoder`); the reference closure must clamp the
/// same way to stay bit-identical.
const PAIR_CLAMP: f64 = 2.0e4;

/// Contexts for d ∈ {3, 5, 7} at p = 10⁻³, built once (the d = 7
/// all-pairs Dijkstra is the expensive part).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [3usize, 5, 7]
            .into_iter()
            .map(|d| ExperimentContext::new(d, 1e-3))
            .collect()
    })
}

/// Draws `hw` distinct detector indices from the candidate pool, topping
/// up with the smallest unused indices if the pool repeats (every grid
/// context has far more than 8 detectors, so this always succeeds).
fn distinct_detectors(candidates: &[u32], num_detectors: usize, hw: usize) -> Vec<u32> {
    let mut dets: Vec<u32> = Vec::with_capacity(hw);
    for &c in candidates {
        let d = c % num_detectors as u32;
        if !dets.contains(&d) {
            dets.push(d);
            if dets.len() == hw {
                return dets;
            }
        }
    }
    for d in 0..num_detectors as u32 {
        if !dets.contains(&d) {
            dets.push(d);
            if dets.len() == hw {
                break;
            }
        }
    }
    dets
}

/// The closure-staged reference decode: `subset_dp::solve` reading the
/// weight table one entry at a time (exact or dequantized), observable
/// mask folded off the mate assignment — the path every batched-gather
/// and closed-form shortcut must reproduce bit-for-bit.
fn reference_decode(gwt: &decoding_graph::GlobalWeightTable, dets: &[u32], quantized: bool) -> u32 {
    let k = dets.len();
    let pair = |i: usize, j: usize| -> f64 {
        let w = if quantized {
            gwt.pair_weight_q(dets[i], dets[j]) as f64 / gwt.scale()
        } else {
            gwt.pair_weight(dets[i], dets[j])
        };
        w.min(PAIR_CLAMP)
    };
    let boundary = |i: usize| -> f64 {
        if quantized {
            gwt.boundary_weight_q(dets[i]) as f64 / gwt.scale()
        } else {
            gwt.boundary_weight(dets[i])
        }
    };
    let (mate, _) = subset_dp::solve(k, pair, boundary);
    let mut observables = 0u32;
    for (i, m) in mate.iter().enumerate() {
        match m {
            None => observables ^= gwt.boundary_obs(dets[i]),
            Some(j) if *j > i => observables ^= gwt.pair_obs(dets[i], dets[*j]),
            Some(_) => {}
        }
    }
    observables
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GWT-direct closed forms (HW 3–4) and the batched-gather memoized
    /// DP band (HW 5–8) both reproduce the closure-staged reference and
    /// the allocating decode path, for exact and quantized weights.
    #[test]
    fn scratch_decode_matches_closure_staged_reference(
        ctx_idx in 0usize..3,
        hw in 3usize..=8,
        candidates in prop::collection::vec(any::<u32>(), 32),
    ) {
        let ctx = &grid()[ctx_idx];
        let gwt = ctx.gwt();
        let dets = distinct_detectors(&candidates, gwt.len(), hw);
        prop_assert_eq!(dets.len(), hw);
        let mut scratch = DecodeScratch::new();
        for quantized in [false, true] {
            let mut decoder = if quantized {
                MwpmDecoder::with_quantized_weights(gwt)
            } else {
                MwpmDecoder::new(gwt)
            };
            let fast = decoder.decode_with_scratch(&dets, &mut scratch);
            let reference = reference_decode(gwt, &dets, quantized);
            prop_assert_eq!(
                fast.observables, reference,
                "scratch path diverged from closure reference on {:?} (quantized: {})",
                &dets, quantized
            );
            let plain = decoder.decode(&dets);
            prop_assert_eq!(
                fast, plain,
                "scratch path diverged from allocating path on {:?} (quantized: {})",
                &dets, quantized
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deep-band axis: above the DP crossover the scratch path switches
    /// to cluster decomposition plus the sparse blossom solver, and must
    /// still reproduce the allocating `decode` path (dense blossom
    /// oracle) bit-for-bit — exact and quantized, one reused scratch.
    #[test]
    fn deep_scratch_decode_matches_allocating_path(
        ctx_idx in 0usize..3,
        hw in 12usize..=24,
        candidates in prop::collection::vec(any::<u32>(), 48),
    ) {
        let ctx = &grid()[ctx_idx];
        let gwt = ctx.gwt();
        let hw = hw.min(gwt.len());
        let dets = distinct_detectors(&candidates, gwt.len(), hw);
        prop_assert_eq!(dets.len(), hw);
        let mut scratch = DecodeScratch::new();
        for quantized in [false, true] {
            let mut decoder = if quantized {
                MwpmDecoder::with_quantized_weights(gwt)
            } else {
                MwpmDecoder::new(gwt)
            };
            let fast = decoder.decode_with_scratch(&dets, &mut scratch);
            let plain = decoder.decode(&dets);
            prop_assert_eq!(
                fast, plain,
                "deep scratch path diverged from allocating path on {:?} (quantized: {})",
                &dets, quantized
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hard-syndrome prediction cache is invisible in the result:
    /// disabled, thrashing-small, and comfortably-large configurations
    /// all produce the same `LerResult` through the full pipeline.
    #[test]
    fn hard_cache_capacity_never_changes_the_result(
        seed in any::<u64>(),
        trials in 500u64..2_500,
        consumers in 1usize..4,
    ) {
        // d = 5 at a rate high enough that HW 5–8 shots (the cacheable
        // band) actually occur.
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        let ctx = CTX.get_or_init(|| ExperimentContext::new(5, 6e-3));
        let factory: Box<astrea_experiments::DecoderFactory> =
            Box::new(|c: &ExperimentContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder + '_>);
        let config = |entries: usize| PipelineConfig {
            tile_words: 4,
            producers: 1,
            consumers,
            channel_depth: 2,
            source: SyndromeSource::Dem,
            hard_cache_entries: entries,
        };
        let off = estimate_ler_streamed(ctx, trials, seed, &*factory, config(0));
        for entries in [1usize, 64, 8192] {
            let on = estimate_ler_streamed(ctx, trials, seed, &*factory, config(entries));
            prop_assert_eq!(&on, &off, "cache with {} entries changed the result", entries);
        }
    }
}
