//! The full decoder stack on the 1-D repetition code: every decoder in
//! the workspace is code-agnostic, so the bring-up code of the hardware
//! demos the paper cites must work end-to-end without modification.

use astrea::prelude::*;
use astrea_experiments::DecoderFactory;
use qec_circuit::build_repetition_memory_circuit;
use surface_code::RepetitionCode;

fn rep_ctx(d: usize, p: f64) -> ExperimentContext {
    let code = RepetitionCode::new(d).unwrap();
    let circuit = build_repetition_memory_circuit(&code, d, NoiseModel::depolarizing(p));
    ExperimentContext::from_circuit(d, p, &circuit)
}

#[test]
fn every_decoder_decodes_the_repetition_code() {
    let ctx = rep_ctx(5, 5e-3);
    let mwpm: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let astrea: Box<DecoderFactory> =
        Box::new(|c| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let astrea_g: Box<DecoderFactory> =
        Box::new(|c| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let uf: Box<DecoderFactory> =
        Box::new(|c| Box::new(UnionFindDecoder::new(c.graph())) as Box<dyn Decoder>);
    let local: Box<DecoderFactory> =
        Box::new(|c| Box::new(LocalMwpmDecoder::new(c.graph())) as Box<dyn Decoder>);

    let trivial = {
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        (0..30_000)
            .filter(|_| sampler.sample(&mut rng).observables != 0)
            .count() as u64
    };
    assert!(trivial > 100, "need raw failures to compare against");

    for (name, factory) in [
        ("MWPM", mwpm),
        ("Astrea", astrea),
        ("Astrea-G", astrea_g),
        ("UF", uf),
        ("Local-MWPM", local),
    ] {
        let r = estimate_ler(&ctx, 30_000, 2, 3, &*factory);
        assert!(
            r.failures * 3 < trivial,
            "{name} barely beats no decoding on the repetition code: \
             {} vs {trivial} raw flips",
            r.failures
        );
    }
}

#[test]
fn repetition_code_suppresses_errors_with_distance() {
    let p = 1e-2;
    let ctx3 = rep_ctx(3, p);
    let ctx7 = rep_ctx(7, p);
    let factory: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let r3 = estimate_ler(&ctx3, 60_000, 2, 5, &*factory);
    let r7 = estimate_ler(&ctx7, 60_000, 2, 5, &*factory);
    assert!(r3.failures > 30, "{}", r3.failures);
    assert!(
        r7.ler() < r3.ler() / 3.0,
        "d=3 {} vs d=7 {}",
        r3.ler(),
        r7.ler()
    );
}

#[test]
fn repetition_gwt_is_one_dimensional_and_tiny() {
    // ℓ = (d − 1)(rounds + 1): 24 detectors at d = 5 → a 576-byte GWT,
    // the scale LILLIPUT-era hardware targeted.
    let ctx = rep_ctx(5, 1e-3);
    assert_eq!(ctx.gwt().len(), 4 * 6);
    assert_eq!(ctx.gwt().quantized_bytes(), 576);
}
