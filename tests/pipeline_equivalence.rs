//! Equivalence of the streaming sampler→decoder pipeline with the
//! barrier path.
//!
//! The streamed estimator (`estimate_ler_streamed`) cuts a run into
//! packed tiles, overlaps sampling with decoding across producer and
//! consumer threads, and screens shots word-parallel so only Hamming
//! weight ≥ 3 syndromes reach the real decoder. None of that may change
//! a single bit of the result: tiles inherit the per-word-column seeding
//! contract (`qec_circuit::column_seed`), the HW ≤ 2 screen replays the
//! decoder through a memo cache, and every counter merges
//! order-independently. These properties hold for arbitrary tile sizes
//! (one word, odd sizes, whole-batch), producer/consumer splits, and
//! seeds — enforced by proptest against the barrier reference.

use astrea::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Distances × error rates covered by the properties; contexts are built
/// once and shared across cases (DEM extraction is the expensive part).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3, 2e-3), (3, 8e-3), (5, 2e-3), (5, 6e-3)]
            .into_iter()
            .map(|(d, p)| ExperimentContext::new(d, p))
            .collect()
    })
}

fn mwpm_factory() -> Box<astrea_experiments::DecoderFactory<'static>> {
    Box::new(|c: &ExperimentContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder + '_>)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn streamed_estimate_is_bit_identical_to_barrier(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        tile_choice in 0usize..3,
        producers in 1usize..4,
        consumers in prop::sample::select(vec![1usize, 3, 8]),
        trials in 1u64..2_000,
        hard_cache_entries in prop::sample::select(vec![0usize, 2, 8192]),
    ) {
        let ctx = &grid()[ctx_idx];
        let factory = mwpm_factory();
        let barrier = estimate_ler_barrier(ctx, trials, 2, seed, &*factory);
        // Tile sizes from the spec: a single word, a small odd count, and
        // one tile covering the whole batch.
        let tile_words = [1, 7, (trials as usize).div_ceil(64)][tile_choice];
        let config = PipelineConfig {
            tile_words,
            producers,
            consumers,
            channel_depth: 2,
            source: SyndromeSource::Dem,
            hard_cache_entries,
        };
        let streamed = estimate_ler_streamed(ctx, trials, seed, &*factory, config);
        prop_assert_eq!(streamed, barrier, "config {:?}", config);
    }

    #[test]
    fn streamed_estimate_is_config_invariant_with_astrea(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        tile_words in 1usize..20,
        consumers in 1usize..9,
    ) {
        // Astrea's cycle model and deferrals stress the accounting (the
        // screen must replay modeled cycles exactly); every pipeline shape
        // must agree with the single-threaded single-tile run.
        let ctx = &grid()[ctx_idx];
        let factory: Box<astrea_experiments::DecoderFactory> =
            Box::new(|c| Box::new(AstreaDecoder::new(c.gwt())));
        let trials = 1_001u64;
        let reference = estimate_ler_streamed(
            ctx,
            trials,
            seed,
            &*factory,
            PipelineConfig {
                tile_words: (trials as usize).div_ceil(64),
                producers: 1,
                consumers: 1,
                channel_depth: 1,
                source: SyndromeSource::Dem,
                hard_cache_entries: 0,
            },
        );
        let config = PipelineConfig {
            tile_words,
            producers: 2,
            consumers,
            channel_depth: 3,
            source: SyndromeSource::Dem,
            hard_cache_entries: 64,
        };
        let streamed = estimate_ler_streamed(ctx, trials, seed, &*factory, config);
        prop_assert_eq!(streamed, reference, "config {:?}", config);
    }
}
