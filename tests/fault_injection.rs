//! Exhaustive fault injection: the circuit-level code distance, verified
//! mechanism by mechanism.
//!
//! A distance-d code must correct every combination of up to ⌊(d−1)/2⌋
//! elementary errors. Hook (CNOT) errors can silently halve the effective
//! distance if the syndrome-extraction schedule is wrong — the classic
//! surface-code implementation bug. These tests enumerate *every* single
//! error mechanism (d = 3, 5) and *every pair* of mechanisms (d = 5) and
//! assert exact MWPM corrects them all, which certifies both the
//! hook-safe schedule in `surface-code` and the decoding stack above it.

use astrea::prelude::*;
use qec_circuit::ErrorMechanism;

fn combine(mechs: &[&ErrorMechanism]) -> (Vec<u32>, u32) {
    let mut dets: Vec<u32> = mechs
        .iter()
        .flat_map(|m| m.detectors.iter().copied())
        .collect();
    dets.sort_unstable();
    let mut folded = Vec::new();
    let mut k = 0;
    while k < dets.len() {
        let mut l = k + 1;
        while l < dets.len() && dets[l] == dets[k] {
            l += 1;
        }
        if (l - k) % 2 == 1 {
            folded.push(dets[k]);
        }
        k = l;
    }
    let obs = mechs.iter().fold(0, |acc, m| acc ^ m.observables);
    (folded, obs)
}

#[test]
fn every_single_mechanism_is_corrected() {
    for d in [3usize, 5] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        let mut astrea = AstreaDecoder::new(ctx.gwt());
        let mut uf = UnionFindDecoder::new(ctx.graph());
        for m in ctx.dem().mechanisms() {
            let (dets, obs) = combine(&[m]);
            assert_eq!(mwpm.decode(&dets).observables, obs, "MWPM, d={d}, {m:?}");
            assert_eq!(
                astrea.decode(&dets).observables,
                obs,
                "Astrea, d={d}, {m:?}"
            );
            assert_eq!(uf.decode(&dets).observables, obs, "UF, d={d}, {m:?}");
        }
    }
}

#[test]
fn every_mechanism_pair_is_corrected_at_distance_5() {
    // 301 mechanisms → 45 150 pairs, all of which MWPM must decode
    // correctly for the circuit-level distance to be ≥ 5.
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut mwpm = MwpmDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let mut failures = 0u32;
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (mwpm.decode(&dets).observables != obs) as u32;
        }
    }
    assert_eq!(
        failures, 0,
        "effective circuit distance < 5: a hook error leaks through the schedule"
    );
}

#[test]
fn astrea_matches_mwpm_on_every_mechanism_pair_at_distance_5() {
    // Astrea's brute force must preserve the distance guarantee too
    // (every pair produces Hamming weight ≤ 4, well within its reach).
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let mut failures = 0u32;
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (astrea.decode(&dets).observables != obs) as u32;
        }
    }
    assert_eq!(failures, 0, "Astrea broke the distance-5 guarantee");
}

#[test]
fn distance_3_corrects_singles_but_not_all_pairs() {
    // Sanity check on the method itself: d = 3 corrects any one error but
    // must fail on some pairs (⌊(3−1)/2⌋ = 1). If no pair failed, the
    // injection harness would be vacuous.
    let ctx = ExperimentContext::new(3, 1e-3);
    let mut mwpm = MwpmDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let (mut failures, mut total) = (0u32, 0u32);
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (mwpm.decode(&dets).observables != obs) as u32;
            total += 1;
        }
    }
    assert!(
        failures > 0,
        "two errors should defeat a distance-3 code sometimes"
    );
    assert!(
        failures < total / 4,
        "but most pairs should still decode ({failures}/{total} failed)"
    );
}

// ---------------------------------------------------------------------
// Service fault injection: a client misbehaving — consuming slowly,
// disconnecting mid-stream, or slamming into its in-flight budget —
// must not stall, reorder, or corrupt any other client's responses,
// and the service must still shut down cleanly with every thread
// joined (shutdown() joins the batcher and all workers, so a leaked or
// wedged worker turns these tests into timeouts).
// ---------------------------------------------------------------------

use astrea_serve::{DecodeService, RecvError, ServeConfig, SubmitError, SubmitPolicy};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn serve_ctx(d: usize, p: f64) -> Arc<DecodingContext> {
    let code = SurfaceCode::new(d).expect("valid distance");
    Arc::new(DecodingContext::for_memory_experiment(
        &code,
        NoiseModel::depolarizing(p),
    ))
}

fn serve_factory() -> Arc<BatchDecoderFactory> {
    Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn serve_stream(ctx: &DecodingContext, seed: u64, shots: usize) -> SyndromeBatch {
    let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(seed, shots);
    SyndromeBatch::from_packed(&det, &obs)
}

fn serve_offline(ctx: &DecodingContext, stream: &SyndromeBatch) -> Vec<Prediction> {
    let mut dec = MwpmDecoder::new(ctx.gwt());
    let mut scratch = DecodeScratch::new();
    decode_slice(&mut dec, &mut scratch, stream, 0..stream.len()).predictions
}

#[test]
fn slow_consumer_does_not_stall_other_clients() {
    let ctx = serve_ctx(3, 1e-2);
    let slow_stream = serve_stream(&ctx, 101, 300);
    let fast_stream = serve_stream(&ctx, 202, 200);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 1,
            ..ServeConfig::default()
        },
        serve_factory(),
    );

    // The slow client submits its whole stream and then goes to sleep
    // on the responses: they park in its own session queue, bounded by
    // its credit budget, without occupying the worker.
    let mut slow = service.session(SubmitPolicy::Block);
    for i in 0..slow_stream.len() {
        slow.submit(slow_stream.detectors(i), slow_stream.observables(i))
            .expect("slow submit");
    }

    // Meanwhile the fast client ping-pongs its stream with a deadline:
    // every response must arrive promptly and match the offline decode.
    let mut fast = service.session(SubmitPolicy::Block);
    let want_fast = serve_offline(&ctx, &fast_stream);
    for (i, w) in want_fast.iter().enumerate() {
        fast.submit(fast_stream.detectors(i), fast_stream.observables(i))
            .expect("fast submit");
        let (seq, pred) = fast
            .recv_timeout(Duration::from_secs(10))
            .expect("fast client stalled behind a slow consumer");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w, "fast client prediction corrupted");
    }

    // The slow client finally wakes up; its responses were neither
    // dropped nor reordered.
    let want_slow = serve_offline(&ctx, &slow_stream);
    for (i, w) in want_slow.iter().enumerate() {
        let (seq, pred) = slow
            .recv_timeout(Duration::from_secs(10))
            .expect("slow recv");
        assert_eq!(seq, i as u64, "slow client responses reordered");
        assert_eq!(&pred, w, "slow client prediction corrupted");
    }
    service.shutdown();
}

#[test]
fn mid_stream_disconnect_leaves_other_clients_intact() {
    let ctx = serve_ctx(3, 1e-2);
    let doomed_stream = serve_stream(&ctx, 303, 150);
    let survivor_stream = serve_stream(&ctx, 404, 150);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 2,
            tile_words: 1,
            ..ServeConfig::default()
        },
        serve_factory(),
    );

    // Client A submits half its stream and hangs up without ever
    // reading a response; the workers' sends to it are dropped on the
    // floor, nothing blocks.
    let mut doomed = service.session(SubmitPolicy::Block);
    for i in 0..doomed_stream.len() / 2 {
        doomed
            .submit(doomed_stream.detectors(i), doomed_stream.observables(i))
            .expect("doomed submit");
    }
    drop(doomed);

    // Client B's stream decodes exactly as if it were alone.
    let mut survivor = service.session(SubmitPolicy::Block);
    let want = serve_offline(&ctx, &survivor_stream);
    for i in 0..survivor_stream.len() {
        survivor
            .submit(survivor_stream.detectors(i), survivor_stream.observables(i))
            .expect("survivor submit");
    }
    for (i, w) in want.iter().enumerate() {
        let (seq, pred) = survivor
            .recv_timeout(Duration::from_secs(10))
            .expect("survivor stalled after a peer disconnect");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w, "survivor prediction corrupted");
    }

    // The disconnected shots were still decoded and counted: after
    // shutdown (which joins every worker, so all accounting is
    // published) the service totals cover both clients' submissions.
    service.shutdown();
    let stats = service.stats();
    assert_eq!(
        stats.counters.shots_screened,
        (doomed_stream.len() / 2 + survivor_stream.len()) as u64,
        "disconnected client's in-flight shots vanished from accounting"
    );
}

#[test]
fn queue_full_backpressure_is_isolated_per_client() {
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 505, 64);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 4,
            max_inflight: 4,
            // Nothing flushes on its own: staged shots pin credits, so
            // the Reject client genuinely hits its budget.
            batch_window: Duration::from_secs(600),
            ..ServeConfig::default()
        },
        serve_factory(),
    );

    let mut rejecting = service.session(SubmitPolicy::Reject);
    for i in 0..4 {
        rejecting
            .submit(stream.detectors(i), stream.observables(i))
            .expect("within budget");
    }
    assert_eq!(
        rejecting.submit(stream.detectors(4), stream.observables(4)),
        Err(SubmitError::Full),
        "budget exhaustion must reject, not block"
    );

    // A second client is not affected by its peer's full queue: its own
    // budget is fresh and an explicit flush gets it responses.
    let mut other = service.session(SubmitPolicy::Block);
    let want = serve_offline(&ctx, &stream);
    for i in 0..8 {
        other
            .submit(stream.detectors(i), stream.observables(i))
            .expect("peer submit");
    }
    other.flush().expect("peer flush");
    for (i, w) in want.iter().enumerate().take(8) {
        let (seq, pred) = other
            .recv_timeout(Duration::from_secs(10))
            .expect("peer stalled behind a full client");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w);
    }

    // The flush also released the rejecting client's staged shots, so
    // its credits come back and submission resumes.
    for (i, w) in want.iter().enumerate().take(4) {
        let (seq, pred) = rejecting
            .recv_timeout(Duration::from_secs(10))
            .expect("recv");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w);
    }
    rejecting
        .submit(stream.detectors(4), stream.observables(4))
        .expect("budget restored after draining");
    service.flush();
    assert_eq!(
        rejecting
            .recv_timeout(Duration::from_secs(10))
            .expect("recv")
            .1,
        want[4]
    );
    service.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_with_live_sessions() {
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 606, 100);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 3,
            tile_words: 1,
            ..ServeConfig::default()
        },
        serve_factory(),
    );
    let mut sessions: Vec<_> = (0..3)
        .map(|_| service.session(SubmitPolicy::Block))
        .collect();
    for s in sessions.iter_mut() {
        for i in 0..stream.len() {
            s.submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        for i in 0..stream.len() {
            let (seq, _) = s.recv_timeout(Duration::from_secs(10)).expect("recv");
            assert_eq!(seq, i as u64);
        }
    }

    // shutdown() joins the batcher and every worker; a leaked thread
    // would hang here. Calling it again (and via Drop later) is a no-op.
    service.shutdown();
    service.shutdown();
    let after = service.stats();
    assert_eq!(after.counters.shots_screened, 3 * stream.len() as u64);

    // Every session observes closure instead of hanging.
    for s in sessions.iter_mut() {
        assert_eq!(s.submit(&[0], 0), Err(SubmitError::Closed));
        assert_eq!(s.recv(), Err(RecvError::Closed));
    }
}

#[test]
fn wire_disconnect_mid_stream_is_survivable() {
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 707, 80);
    let service = Arc::new(DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 1,
            ..ServeConfig::default()
        },
        serve_factory(),
    ));
    let server = astrea_serve::serve_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");

    // One client submits a burst and slams the socket shut without
    // reading anything.
    let mut rude = astrea_serve::WireClient::connect_tcp(addr).expect("connect rude");
    for i in 0..40 {
        rude.submit(stream.detectors(i), stream.observables(i))
            .expect("rude submit");
    }
    drop(rude);

    // A polite client on the same server still gets exact responses.
    let mut polite = astrea_serve::WireClient::connect_tcp(addr).expect("connect polite");
    let want = serve_offline(&ctx, &stream);
    for (i, w) in want.iter().enumerate() {
        polite
            .submit(stream.detectors(i), stream.observables(i))
            .expect("polite submit");
        let (seq, pred) = polite.recv().expect("polite recv");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w, "polite client corrupted by peer disconnect");
    }
    drop(polite);
    server.shutdown();
    service.shutdown();
}

#[test]
fn dropping_receive_half_unblocks_a_parked_submitter() {
    // Credits are only returned by the receive half absorbing responses,
    // so a Block-policy submitter with an exhausted budget parks until
    // its peer thread reads — or, if that thread instead drops the
    // ReceiveHandle (the wire writer does exactly this on a broken
    // pipe), the drop must close the credit gate and fail the parked
    // submit with Closed. Pre-fix this test deadlocked right here.
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 808, 8);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 1,
            max_inflight: 4,
            ..ServeConfig::default()
        },
        serve_factory(),
    );
    let (mut submit, recv) = service.session(SubmitPolicy::Block).into_split();
    for i in 0..4 {
        submit
            .submit(stream.detectors(i), stream.observables(i))
            .expect("within budget");
    }
    // Nobody ever absorbs the responses, so the budget stays pinned at
    // zero; the receive half dies while the next submit is parked.
    let dropper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(recv);
    });
    assert_eq!(
        submit.submit(stream.detectors(4), stream.observables(4)),
        Err(SubmitError::Closed),
        "parked submitter must observe the dropped receive half"
    );
    dropper.join().expect("dropper join");
    // And with the gate closed, both policies fail fast from now on.
    assert_eq!(
        submit.submit(stream.detectors(5), stream.observables(5)),
        Err(SubmitError::Closed)
    );
    service.shutdown();
}

#[test]
fn wire_flood_past_budget_then_disconnect_does_not_wedge_shutdown() {
    // The deadlock this guards against: a client floods far past the
    // session's in-flight budget without reading, so the connection
    // reader parks in credit acquisition; the client then disconnects,
    // the writer dies on the broken pipe and drops the receive half —
    // the only thing that returns credits. The reader must wake with
    // Closed (the receive half's Drop closes the credit gate), not wait
    // on the condvar forever with server shutdown hung behind it.
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 808, 96);
    let service = Arc::new(DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 1,
            max_inflight: 8,
            ..ServeConfig::default()
        },
        serve_factory(),
    ));
    let server = astrea_serve::serve_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");

    let mut rude = astrea_serve::WireClient::connect_tcp(addr).expect("connect rude");
    for i in 0..stream.len() {
        rude.submit(stream.detectors(i), stream.observables(i))
            .expect("rude submit");
    }
    drop(rude);

    // The server is still fully functional for a well-behaved client.
    let mut polite = astrea_serve::WireClient::connect_tcp(addr).expect("connect polite");
    let want = serve_offline(&ctx, &stream);
    for (i, w) in want.iter().enumerate().take(32) {
        polite
            .submit(stream.detectors(i), stream.observables(i))
            .expect("polite submit");
        let (seq, pred) = polite.recv().expect("polite recv");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, w, "polite client corrupted by flooding peer");
    }
    drop(polite);

    // Pre-fix this hung in handle.join() on the rude connection's
    // reader thread; the test harness would time out here.
    server.shutdown();
    service.shutdown();
}

#[test]
fn finished_wire_connections_are_reaped() {
    let ctx = serve_ctx(3, 1e-2);
    let stream = serve_stream(&ctx, 909, 20);
    let service = Arc::new(DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            tile_words: 1,
            ..ServeConfig::default()
        },
        serve_factory(),
    ));
    let server = astrea_serve::serve_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");

    // A handful of short-lived connections come and go.
    for _ in 0..4 {
        let mut c = astrea_serve::WireClient::connect_tcp(addr).expect("connect");
        for i in 0..stream.len() {
            c.submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
            c.recv().expect("recv");
        }
    }

    // The idle accept loop joins their threads instead of tracking one
    // handle per connection ever accepted.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "closed connections were never reaped ({} still tracked)",
            server.connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Reaping does not disturb a server that keeps serving.
    let mut late = astrea_serve::WireClient::connect_tcp(addr).expect("connect late");
    late.submit(stream.detectors(0), stream.observables(0))
        .expect("late submit");
    late.recv().expect("late recv");
    assert_eq!(server.connections(), 1);
    drop(late);
    server.shutdown();
    service.shutdown();
}
