//! Exhaustive fault injection: the circuit-level code distance, verified
//! mechanism by mechanism.
//!
//! A distance-d code must correct every combination of up to ⌊(d−1)/2⌋
//! elementary errors. Hook (CNOT) errors can silently halve the effective
//! distance if the syndrome-extraction schedule is wrong — the classic
//! surface-code implementation bug. These tests enumerate *every* single
//! error mechanism (d = 3, 5) and *every pair* of mechanisms (d = 5) and
//! assert exact MWPM corrects them all, which certifies both the
//! hook-safe schedule in `surface-code` and the decoding stack above it.

use astrea::prelude::*;
use qec_circuit::ErrorMechanism;

fn combine(mechs: &[&ErrorMechanism]) -> (Vec<u32>, u32) {
    let mut dets: Vec<u32> = mechs
        .iter()
        .flat_map(|m| m.detectors.iter().copied())
        .collect();
    dets.sort_unstable();
    let mut folded = Vec::new();
    let mut k = 0;
    while k < dets.len() {
        let mut l = k + 1;
        while l < dets.len() && dets[l] == dets[k] {
            l += 1;
        }
        if (l - k) % 2 == 1 {
            folded.push(dets[k]);
        }
        k = l;
    }
    let obs = mechs.iter().fold(0, |acc, m| acc ^ m.observables);
    (folded, obs)
}

#[test]
fn every_single_mechanism_is_corrected() {
    for d in [3usize, 5] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        let mut astrea = AstreaDecoder::new(ctx.gwt());
        let mut uf = UnionFindDecoder::new(ctx.graph());
        for m in ctx.dem().mechanisms() {
            let (dets, obs) = combine(&[m]);
            assert_eq!(mwpm.decode(&dets).observables, obs, "MWPM, d={d}, {m:?}");
            assert_eq!(
                astrea.decode(&dets).observables,
                obs,
                "Astrea, d={d}, {m:?}"
            );
            assert_eq!(uf.decode(&dets).observables, obs, "UF, d={d}, {m:?}");
        }
    }
}

#[test]
fn every_mechanism_pair_is_corrected_at_distance_5() {
    // 301 mechanisms → 45 150 pairs, all of which MWPM must decode
    // correctly for the circuit-level distance to be ≥ 5.
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut mwpm = MwpmDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let mut failures = 0u32;
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (mwpm.decode(&dets).observables != obs) as u32;
        }
    }
    assert_eq!(
        failures, 0,
        "effective circuit distance < 5: a hook error leaks through the schedule"
    );
}

#[test]
fn astrea_matches_mwpm_on_every_mechanism_pair_at_distance_5() {
    // Astrea's brute force must preserve the distance guarantee too
    // (every pair produces Hamming weight ≤ 4, well within its reach).
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let mut failures = 0u32;
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (astrea.decode(&dets).observables != obs) as u32;
        }
    }
    assert_eq!(failures, 0, "Astrea broke the distance-5 guarantee");
}

#[test]
fn distance_3_corrects_singles_but_not_all_pairs() {
    // Sanity check on the method itself: d = 3 corrects any one error but
    // must fail on some pairs (⌊(3−1)/2⌋ = 1). If no pair failed, the
    // injection harness would be vacuous.
    let ctx = ExperimentContext::new(3, 1e-3);
    let mut mwpm = MwpmDecoder::new(ctx.gwt());
    let mechs = ctx.dem().mechanisms();
    let (mut failures, mut total) = (0u32, 0u32);
    for i in 0..mechs.len() {
        for j in (i + 1)..mechs.len() {
            let (dets, obs) = combine(&[&mechs[i], &mechs[j]]);
            failures += (mwpm.decode(&dets).observables != obs) as u32;
            total += 1;
        }
    }
    assert!(
        failures > 0,
        "two errors should defeat a distance-3 code sometimes"
    );
    assert!(
        failures < total / 4,
        "but most pairs should still decode ({failures}/{total} failed)"
    );
}
