//! Bit-identity of the GWT-free local weight path with the Global
//! Weight Table path.
//!
//! The tentpole contract of the staged `LocalWeightProvider`: a decoder
//! reading per-shot truncated-Dijkstra weights must be indistinguishable
//! — prediction by prediction, matching by matching, bit by bit — from
//! the same decoder reading the precomputed O(ℓ²) table. The provider
//! replays the GWT's exact relaxation order over a truncated frontier
//! and stages `INFINITY` for pairs it can prove boundary-dominated, so
//! equality is exact, not approximate. These tests enforce it at
//! d ∈ {3, 5, 7, 9, 11} — the last two still inside the 32 MiB GWT
//! auto-budget, so the truncation and settle-bound edge cases between
//! the toy distances and the GWT-free regime are differentially
//! covered — across the full decode surface: allocating decodes
//! (`decode_full`), scratch decodes on both the exact and quantized
//! weight axes, same-weight batches, the streamed pipeline across tile
//! sizes × thread splits, and the serving front-end.

use std::sync::{Arc, OnceLock};

use astrea::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Debug builds (the tier-1 `cargo test -q` gate) run a scaled-down
/// sweep so the suite stays in the seconds range; CI's dedicated
/// `cargo test --release --test local_vs_gwt` step runs the full count.
fn shots(full: usize) -> usize {
    if cfg!(debug_assertions) {
        full.div_ceil(8)
    } else {
        full
    }
}

/// (GWT-backed, GWT-free) context pairs per (d, p); built once — DEM
/// extraction dominates and both contexts share it logically.
fn grid() -> &'static [(ExperimentContext, ExperimentContext)] {
    static GRID: OnceLock<Vec<(ExperimentContext, ExperimentContext)>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3usize, 8e-3), (5, 5e-3), (7, 3e-3), (9, 3e-3), (11, 2e-3)]
            .into_iter()
            .map(|(d, p)| {
                let g = ExperimentContext::with_source(d, p, WeightSource::Gwt);
                let l = ExperimentContext::with_source(d, p, WeightSource::Local);
                assert!(
                    l.decoding().try_gwt().is_none(),
                    "local context built a GWT"
                );
                (g, l)
            })
            .collect()
    })
}

#[test]
fn full_matchings_are_bit_identical() {
    for (g, l) in grid() {
        let gdec = MwpmDecoder::for_context(g.decoding());
        let ldec = MwpmDecoder::for_context(l.decoding());
        let mut sampler = DemSampler::new(g.dem());
        let mut rng = StdRng::seed_from_u64(1000 + g.distance as u64);
        for _ in 0..shots(600) {
            let shot = sampler.sample(&mut rng);
            let sg = gdec.decode_full(&shot.detectors);
            let sl = ldec.decode_full(&shot.detectors);
            assert_eq!(
                sg.pairs, sl.pairs,
                "d = {}: {:?}",
                g.distance, shot.detectors
            );
            assert_eq!(sg.to_boundary, sl.to_boundary, "d = {}", g.distance);
            assert_eq!(sg.observables, sl.observables, "d = {}", g.distance);
            assert_eq!(
                sg.weight.to_bits(),
                sl.weight.to_bits(),
                "d = {}: weights differ beyond the last ulp",
                g.distance
            );
        }
    }
}

#[test]
fn scratch_decodes_agree_on_both_weight_axes() {
    for (g, l) in grid() {
        for quantized in [false, true] {
            let (mut gdec, mut ldec) = if quantized {
                (
                    MwpmDecoder::for_context_quantized(g.decoding()),
                    MwpmDecoder::for_context_quantized(l.decoding()),
                )
            } else {
                (
                    MwpmDecoder::for_context(g.decoding()),
                    MwpmDecoder::for_context(l.decoding()),
                )
            };
            let mut sg = DecodeScratch::new();
            let mut sl = DecodeScratch::new();
            let mut sampler = DemSampler::new(g.dem());
            let mut rng = StdRng::seed_from_u64(2000 + g.distance as u64);
            for _ in 0..shots(600) {
                let shot = sampler.sample(&mut rng);
                assert_eq!(
                    gdec.decode_with_scratch(&shot.detectors, &mut sg),
                    ldec.decode_with_scratch(&shot.detectors, &mut sl),
                    "d = {}, quantized = {quantized}: {:?}",
                    g.distance,
                    shot.detectors
                );
            }
            // The local provider must actually have worked for the
            // comparison to mean anything.
            let stats = ldec.local_stats().expect("local decoder");
            assert!(stats.stages > 0 && stats.expansions > 0);
            assert!(gdec.local_stats().is_none());
        }
    }
}

#[test]
fn batched_decodes_agree() {
    // decode_slice routes same-weight runs through the fused closed-form
    // batch; the sorted slice layout exercises k ∈ {0..=4} batches plus
    // the per-shot tail on both backends.
    for (g, l) in grid() {
        let batch = sample_batch(g, shots(3_000) as u64, 4, 77);
        let mut gdec = MwpmDecoder::for_context(g.decoding());
        let mut ldec = MwpmDecoder::for_context(l.decoding());
        let mut sg = DecodeScratch::new();
        let mut sl = DecodeScratch::new();
        let rg = decode_slice(&mut gdec, &mut sg, &batch, 0..batch.len());
        let rl = decode_slice(&mut ldec, &mut sl, &batch, 0..batch.len());
        assert_eq!(rg, rl, "d = {}", g.distance);
    }
}

#[test]
fn streamed_pipeline_agrees_across_tiles_and_threads() {
    let factory: Box<astrea_experiments::DecoderFactory> = Box::new(|c: &ExperimentContext| {
        Box::new(MwpmDecoder::for_context(c.decoding())) as Box<dyn Decoder + '_>
    });
    for (g, l) in grid() {
        let mut reference = None;
        for tile_words in [1usize, 2, 5] {
            for threads in [1usize, 2, 3] {
                let config = PipelineConfig {
                    tile_words,
                    producers: 1 + threads / 2,
                    consumers: threads,
                    channel_depth: 2,
                    source: SyndromeSource::Dem,
                    hard_cache_entries: 256,
                };
                let rg = estimate_ler_streamed(g, shots(2_003) as u64, 13, &*factory, config);
                let rl = estimate_ler_streamed(l, shots(2_003) as u64, 13, &*factory, config);
                assert_eq!(
                    rg, rl,
                    "d = {}: tile_words {tile_words} × {threads} threads",
                    g.distance
                );
                // Every configuration must also agree with every other —
                // the local path preserves the pipeline's invariance.
                match &reference {
                    None => reference = Some(rl),
                    Some(r) => assert_eq!(&rl, r, "d = {}", g.distance),
                }
            }
        }
    }
}

#[test]
fn serving_front_end_agrees() {
    // The decode service on a GWT-free context must return exactly the
    // responses the GWT-backed service returns for the same stream.
    for (g, l) in grid().iter().take(2) {
        let stream = {
            let (det, obs) = BatchDemSampler::new(g.dem()).sample(5, 600);
            SyndromeBatch::from_packed(&det, &obs)
        };
        let mut responses: Vec<Vec<(u64, Prediction)>> = Vec::new();
        for ctx in [g, l] {
            let factory: Arc<BatchDecoderFactory> = Arc::new(|c: &DecodingContext| {
                Box::new(MwpmDecoder::for_context(c)) as Box<dyn Decoder>
            });
            let service = DecodeService::new(
                Arc::new(ctx.decoding().clone()),
                ServeConfig {
                    workers: 3,
                    tile_words: 2,
                    ..ServeConfig::default()
                },
                factory,
            );
            let mut session = service.session(SubmitPolicy::Block);
            for i in 0..stream.len() {
                session
                    .submit(stream.detectors(i), stream.observables(i))
                    .expect("submit");
            }
            let mut got = Vec::with_capacity(stream.len());
            for _ in 0..stream.len() {
                got.push(session.recv().expect("recv"));
            }
            drop(session);
            service.shutdown();
            responses.push(got);
        }
        assert_eq!(responses[0], responses[1], "d = {}", g.distance);
    }
}

#[test]
fn auto_context_resolves_by_budget() {
    // The tested distances all fit the auto budget; the first GWT-free
    // distance is d = 15 (≈ 40 MB projected). Verify the boundary from
    // both sides without building a d = 15 circuit (slow in debug) by
    // checking the projection arithmetic the budget compares against.
    for (g, _) in grid() {
        assert_eq!(g.weight_source(), WeightSource::Gwt);
        assert!(g.decoding().gwt_projected_bytes() <= decoding_graph::GWT_AUTO_BUDGET_BYTES);
    }
    let n15 = (15usize * 15 - 1) * (15 + 1) / 2;
    assert!(n15 * n15 * 13 > decoding_graph::GWT_AUTO_BUDGET_BYTES);
}
