//! Bit-identity of the packed easy-tier decode with the per-lane
//! reference path.
//!
//! The tile pipeline keeps shots bit-packed *through decode* for the
//! easy tiers: HW-1/HW-2 predictions are resolved once per distinct
//! syndrome key per word and fanned out to whole lane masks, failures
//! are accumulated as XORed prediction planes, and the k ≤ 4 closed
//! forms are dispatched as same-weight batches. None of that may change
//! a single bit: these properties pit the packed path against the
//! retained per-lane [`decode_tile_reference`] oracle — predictions,
//! `StreamOutcome` accounting, and the shot-partition counters must all
//! agree — with the standalone [`TileScreen`] as the independent
//! classification oracle for how many shots each tier must absorb. A
//! thread axis (streamed vs barrier across producer/consumer splits)
//! and a serving axis (concurrent clients vs offline `decode_slice`)
//! check that the packed tiers stay invisible end-to-end.

use std::sync::{Arc, OnceLock};

use astrea::prelude::*;
use astrea_core::pipeline::{
    decode_tile_reference, decode_tile_with_predictions, StreamOutcome, TileScratch,
};
use astrea_core::TileScreen;
use astrea_experiments::estimate_ler_streamed_counted;
use proptest::prelude::*;
use qec_circuit::tiles::{PackedSyndromeSource, TileLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distances × error rates covered by the properties; contexts are built
/// once and shared across cases (DEM extraction is the expensive part).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3, 8e-3), (5, 6e-3), (7, 5e-3)]
            .into_iter()
            .map(|(d, p)| ExperimentContext::new(d, p))
            .collect()
    })
}

fn mwpm_factory() -> Box<astrea_experiments::DecoderFactory<'static>> {
    Box::new(|c: &ExperimentContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder + '_>)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole contract: for arbitrary contexts, tile sizes, shot
    /// counts, decoder families, and seeds, the packed path reproduces
    /// the per-lane reference bit-for-bit — per-shot predictions,
    /// aggregate outcome, and every shot-partition counter — while
    /// [`TileScreen`] independently pins how many shots each tier must
    /// have absorbed.
    #[test]
    fn packed_easy_tier_matches_per_lane_reference(
        ctx_idx in 0usize..3,
        tile_words in prop::sample::select(vec![1usize, 2, 5]),
        shots in 1usize..600,
        astrea in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let ctx = &grid()[ctx_idx];
        let mut decoder_packed: Box<dyn Decoder> = if astrea {
            Box::new(AstreaDecoder::new(ctx.gwt()))
        } else {
            Box::new(MwpmDecoder::new(ctx.gwt()))
        };
        let mut decoder_ref: Box<dyn Decoder> = if astrea {
            Box::new(AstreaDecoder::new(ctx.gwt()))
        } else {
            Box::new(MwpmDecoder::new(ctx.gwt()))
        };
        let mut scratch_packed = DecodeScratch::new();
        let mut scratch_ref = DecodeScratch::new();
        let mut ts_packed = TileScratch::new();
        let mut ts_ref = TileScratch::new();
        let mut out_packed = StreamOutcome::default();
        let mut out_ref = StreamOutcome::default();
        let mut screen = TileScreen::new();
        // Oracle tallies from the standalone screen: [trivial, hw1, hw2, hard].
        let mut oracle = [0u64; 4];

        let layout = TileLayout::new(shots, tile_words);
        let mut sampler = BatchDemSampler::new(ctx.dem());
        for t in 0..layout.num_tiles() {
            let tile = sampler.sample_tile(seed, &layout, t);
            let det = tile.detectors();
            screen.compute(det);
            for w in 0..det.num_words() {
                let valid = det.valid_lanes(w);
                oracle[0] += u64::from((screen.hw0(w) & valid).count_ones());
                oracle[1] += u64::from((screen.hw1(w) & valid).count_ones());
                oracle[2] += u64::from((screen.hw2(w) & valid).count_ones());
                oracle[3] += u64::from((screen.hard(w) & valid).count_ones());
            }

            let mut preds_packed = vec![Prediction::identity(); tile.num_shots()];
            let mut preds_ref = vec![Prediction::identity(); tile.num_shots()];
            decode_tile_with_predictions(
                decoder_packed.as_mut(),
                &mut scratch_packed,
                &mut ts_packed,
                &tile,
                &mut out_packed,
                &mut preds_packed,
            );
            decode_tile_reference(
                decoder_ref.as_mut(),
                &mut scratch_ref,
                &mut ts_ref,
                &tile,
                &mut out_ref,
                Some(&mut preds_ref),
            );
            prop_assert_eq!(preds_packed, preds_ref, "tile {} diverged", t);
        }
        prop_assert_eq!(&out_packed, &out_ref);

        let (cp, cr) = (*ts_packed.counters(), *ts_ref.counters());
        prop_assert_eq!(cp.shot_partition(), cr.shot_partition());
        prop_assert_eq!(cp.shots_screened, shots as u64);
        prop_assert_eq!(cp.tier_sum(), cp.shots_screened);

        // TileScreen as the classification oracle for the packed tiers.
        prop_assert_eq!(cp.trivial_shots, oracle[0]);
        prop_assert_eq!(cp.hw1_shots, oracle[1]);
        prop_assert_eq!(cp.hw2_shots, oracle[2]);
        prop_assert_eq!(
            cp.closed_form_shots + cp.hard_cache_hits + cp.dp_shots + cp.sparse_blossom_shots,
            oracle[3]
        );

        // Key-resolution diagnostics: the reference path never probes
        // per key; the packed path probes at most once per easy shot.
        prop_assert_eq!(cr.hw1_key_lookups + cr.hw2_key_lookups, 0);
        prop_assert!(cp.hw1_key_lookups <= cp.hw1_shots);
        prop_assert!(cp.hw2_key_lookups <= cp.hw2_shots);
        prop_assert!(cp.hw1_shots == 0 || cp.hw1_key_lookups > 0);
        prop_assert!(cp.hw2_shots == 0 || cp.hw2_key_lookups > 0);
    }

    /// Thread axis: the packed tiers stay invisible under the streaming
    /// harness for every producer/consumer split and tile size — the
    /// streamed `LerResult` equals the barrier path's, and the summed
    /// worker counters still partition the stream.
    #[test]
    fn streamed_packed_decode_matches_barrier_across_threads(
        ctx_idx in 0usize..3,
        trials in 1u64..1200,
        tile_words in prop::sample::select(vec![1usize, 2, 5]),
        producers in 1usize..=2,
        consumers in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let ctx = &grid()[ctx_idx];
        let factory = mwpm_factory();
        let barrier = estimate_ler_barrier(ctx, trials, 2, seed, &factory);
        let config = PipelineConfig {
            tile_words,
            producers,
            consumers,
            channel_depth: 2,
            source: SyndromeSource::Dem,
            hard_cache_entries: astrea_core::DEFAULT_HARD_CACHE_ENTRIES,
        };
        let (streamed, counters) =
            estimate_ler_streamed_counted(ctx, trials, seed, &factory, config);
        prop_assert_eq!(streamed, barrier);
        prop_assert_eq!(counters.shots_screened, trials);
        prop_assert_eq!(counters.tier_sum(), counters.shots_screened);
    }
}

/// Serving axis: concurrent clients over the batching service receive
/// exactly the offline `decode_slice` predictions — the packed per-key
/// fan-out in `decode_tile_with_predictions` must route the right
/// prediction to every lane of every client, flush timing included.
#[test]
fn serving_inherits_packed_easy_tier_bit_identically() {
    let code = SurfaceCode::new(3).expect("valid distance");
    let ctx = Arc::new(DecodingContext::for_memory_experiment(
        &code,
        NoiseModel::depolarizing(8e-3),
    ));
    let factory: Arc<BatchDecoderFactory> =
        Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);

    let clients = 3;
    let streams: Vec<SyndromeBatch> = (0..clients)
        .map(|c| {
            let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(900 + c as u64, 300);
            SyndromeBatch::from_packed(&det, &obs)
        })
        .collect();

    let config = astrea_serve::ServeConfig {
        workers: 2,
        tile_words: 2,
        ..astrea_serve::ServeConfig::default()
    };
    let service = DecodeService::new(Arc::clone(&ctx), config, factory);
    let mut per_client: Vec<Vec<Prediction>> = Vec::with_capacity(streams.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(streams.len());
        for (client, stream) in streams.iter().enumerate() {
            let mut session = service.session(astrea_serve::SubmitPolicy::Block);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 ^ ((client as u64) << 9));
                for i in 0..stream.len() {
                    session
                        .submit(stream.detectors(i), stream.observables(i))
                        .expect("submit");
                    if rng.gen_bool(0.2) {
                        session.flush().expect("flush");
                    }
                }
                session.flush().expect("final flush");
                let mut got = Vec::with_capacity(stream.len());
                while got.len() < stream.len() {
                    let (seq, p) = session.recv().expect("recv");
                    assert_eq!(seq, got.len() as u64, "out-of-order delivery");
                    got.push(p);
                }
                got
            }));
        }
        for h in handles {
            per_client.push(h.join().expect("client thread panicked"));
        }
    });
    service.shutdown();

    for (stream, got) in streams.iter().zip(&per_client) {
        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let offline = decode_slice(&mut dec, &mut scratch, stream, 0..stream.len());
        assert_eq!(
            got, &offline.predictions,
            "serving diverged from offline decode_slice"
        );
    }
}
