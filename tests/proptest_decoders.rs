//! Cross-crate property tests: every decoder must behave sanely on
//! *arbitrary* detector subsets, not only on syndromes the noise model
//! happens to produce.

use astrea::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(3, 2e-3))
}

fn ctx5() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(5, 2e-3))
}

/// Arbitrary sorted detector subsets of the d=3 graph (16 detectors).
fn subset(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..16, 0..=max_len).prop_map(|s| s.into_iter().collect())
}

/// Arbitrary sorted detector subsets of the d=5 graph (72 detectors).
fn subset5(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..72, 0..=max_len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn astrea_matches_quantized_mwpm_weight_on_any_subset(dets in subset(10)) {
        let gwt = ctx().gwt();
        let astrea = AstreaDecoder::new(gwt);
        let mwpm = MwpmDecoder::with_quantized_weights(gwt);
        let a = astrea.decode_full(&dets).expect("within Astrea's ceiling");
        let m = mwpm.decode_full(&dets);
        prop_assert!(a.is_perfect_over(&dets));
        prop_assert!(m.is_perfect_over(&dets));
        // Quantized matching weights must agree exactly (both are optimal
        // over the same u8 table).
        let qw = |s: &blossom_mwpm::MatchingSolution| -> u32 {
            s.pairs.iter().map(|&(x, y)| gwt.pair_weight_q(x, y) as u32).sum::<u32>()
                + s.to_boundary.iter().map(|&x| gwt.boundary_weight_q(x) as u32).sum::<u32>()
        };
        prop_assert_eq!(qw(&a), qw(&m), "dets {:?}", dets);
    }

    #[test]
    fn astrea_g_defaults_agree_with_astrea_below_cutoff(dets in subset(10)) {
        let gwt = ctx().gwt();
        let mut g = AstreaGDecoder::new(gwt);
        let mut a = AstreaDecoder::new(gwt);
        prop_assert_eq!(g.decode(&dets), a.decode(&dets));
    }

    #[test]
    fn every_decoder_is_total_and_deterministic(dets in subset5(20)) {
        let c = ctx5();
        let mut decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(MwpmDecoder::new(c.gwt())),
            Box::new(AstreaGDecoder::new(c.gwt())),
            Box::new(UnionFindDecoder::new(c.graph())),
            Box::new(CliqueDecoder::new(c.graph(), c.gwt())),
        ];
        for d in &mut decoders {
            let p1 = d.decode(&dets);
            let p2 = d.decode(&dets);
            prop_assert_eq!(p1, p2, "{} is nondeterministic", d.name());
            prop_assert!(p1.observables <= 1, "{} predicted unknown observable", d.name());
        }
    }

    #[test]
    fn mwpm_weight_is_a_lower_bound_for_astrea_g(dets in subset5(24)) {
        // Greedy can only do worse-or-equal in weight, never better than
        // the exact optimum (sanity: exactness of the baseline).
        let c = ctx5();
        let gwt = c.gwt();
        let g = AstreaGDecoder::new(gwt);
        let mwpm = MwpmDecoder::with_quantized_weights(gwt);
        let (_, greedy) = g.decode_full(&dets);
        let exact = mwpm.decode_full(&dets);
        if let Some(greedy) = greedy {
            let qw = |s: &blossom_mwpm::MatchingSolution| -> u32 {
                s.pairs.iter().map(|&(x, y)| gwt.pair_weight_q(x, y) as u32).sum::<u32>()
                    + s.to_boundary.iter().map(|&x| gwt.boundary_weight_q(x) as u32).sum::<u32>()
            };
            prop_assert!(
                qw(&greedy) >= qw(&exact),
                "greedy ({}) beat the exact optimum ({}) on {:?}",
                qw(&greedy), qw(&exact), dets
            );
        }
    }

    #[test]
    fn predictions_depend_only_on_the_syndrome(dets in subset(8), salt in any::<u64>()) {
        // Shuffling construction order of the decoder must not matter.
        let gwt = ctx().gwt();
        let mut a1 = AstreaDecoder::new(gwt);
        let _ = salt; // decoders take no randomness; salt documents intent
        let mut a2 = AstreaDecoder::new(gwt);
        prop_assert_eq!(a1.decode(&dets), a2.decode(&dets));
    }
}

#[test]
fn uf_decoder_handles_adversarial_full_syndrome() {
    // All 16 detectors fired: valid input, must terminate and produce a
    // prediction.
    let c = ctx();
    let mut uf = UnionFindDecoder::new(c.graph());
    let dets: Vec<u32> = (0..16).collect();
    let p = uf.decode(&dets);
    assert!(p.observables <= 1);
}

#[test]
fn astrea_g_handles_adversarial_spread_syndromes() {
    // Maximally spread detectors at d=5 (every 3rd detector): high
    // Hamming weight, mostly far-apart pairs — worst case for the filter.
    let c = ctx5();
    let mut g = AstreaGDecoder::new(c.gwt());
    let dets: Vec<u32> = (0..72u32).step_by(3).collect(); // 24 detectors
    let p = g.decode(&dets);
    assert!(!p.deferred);
    assert!(p.cycles <= 250);
}
