//! Real-time latency contracts: the cycle model guarantees of the paper's
//! §5.4 and §7.2 hold for every syndrome either decoder accepts.

use astrea::prelude::*;
use rand::SeedableRng;

#[test]
fn astrea_never_exceeds_456ns() {
    let ctx = ExperimentContext::new(7, 1e-3);
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for _ in 0..20_000 {
        let shot = sampler.sample(&mut rng);
        let p = astrea.decode(&shot.detectors);
        if !p.deferred {
            assert!(
                p.latency_ns(250.0) <= 456.0,
                "hw {} took {} ns",
                shot.hamming_weight(),
                p.latency_ns(250.0)
            );
        }
    }
}

#[test]
fn astrea_g_never_exceeds_1us() {
    let ctx = ExperimentContext::new(7, 1e-3);
    let mut g = AstreaGDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut max_ns: f64 = 0.0;
    for _ in 0..20_000 {
        let shot = sampler.sample(&mut rng);
        let p = g.decode(&shot.detectors);
        assert!(
            p.latency_ns(250.0) <= 1000.0,
            "hw {} took {} ns",
            shot.hamming_weight(),
            p.latency_ns(250.0)
        );
        max_ns = max_ns.max(p.latency_ns(250.0));
    }
    assert!(max_ns > 0.0, "no syndromes decoded at all");
}

#[test]
fn trivial_syndromes_cost_zero_cycles() {
    // Figure 9: "Astrea takes 0ns to decode Hamming weight ≤ 2".
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    assert_eq!(astrea.decode(&[]).cycles, 0);
    assert_eq!(astrea.decode(&[3]).cycles, 0);
    assert_eq!(astrea.decode(&[3, 40]).cycles, 0);
}

#[test]
fn mean_latency_at_paper_operating_point_is_subnanosecond() {
    // §5.4 / Figure 9: at p = 10⁻⁴ the average latency is ~1 ns because
    // almost every syndrome is trivial.
    use astrea_experiments::DecoderFactory;
    let ctx = ExperimentContext::new(7, 1e-4);
    let factory: Box<DecoderFactory> =
        Box::new(|c: &ExperimentContext| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let r = estimate_ler(&ctx, 300_000, 4, 9, &*factory);
    assert!(
        r.latency.mean_ns(250.0) < 2.0,
        "mean latency {} ns",
        r.latency.mean_ns(250.0)
    );
}

#[test]
fn astrea_g_latency_grows_with_hamming_weight() {
    let ctx = ExperimentContext::new(7, 1e-3);
    let mut g = AstreaGDecoder::new(ctx.gwt());
    let low = g.decode(&(0..4u32).collect::<Vec<_>>());
    let high = g.decode(&(0..16u32).map(|i| i * 3).collect::<Vec<_>>());
    assert!(high.cycles > low.cycles);
}

#[test]
fn shrinking_the_budget_shrinks_worst_case_latency() {
    use astrea_core::AstreaGConfig;
    let ctx = ExperimentContext::new(7, 1e-3);
    let dets: Vec<u32> = (0..20u32).map(|i| i * 7).collect();
    let mut full = AstreaGDecoder::new(ctx.gwt());
    let mut half = AstreaGDecoder::with_config(
        ctx.gwt(),
        AstreaGConfig {
            cycle_budget: 125,
            ..AstreaGConfig::default()
        },
    );
    assert!(half.decode(&dets).cycles <= 125);
    assert!(full.decode(&dets).cycles <= 250);
}

#[test]
fn latency_stats_empty_batch_reports_zeros() {
    // Regression: an empty batch must report zero everywhere instead of
    // dividing by zero or returning garbage percentiles.
    let s = LatencyStats::default();
    assert_eq!(s.shots, 0);
    assert_eq!(s.mean_cycles(), 0.0);
    assert_eq!(s.mean_ns(250.0), 0.0);
    assert_eq!(s.mean_nontrivial_ns(250.0), 0.0);
    assert_eq!(s.max_ns(250.0), 0.0);
    for pct in [0.0, 50.0, 99.0, 100.0] {
        assert_eq!(s.percentile_cycles(pct), 0, "p{pct}");
    }

    // The batch engine agrees end to end.
    let ctx = ExperimentContext::new(3, 1e-3);
    let empty = SyndromeBatch::builder().finish();
    let r = decode_batch_ler(&ctx, &empty, 4, &|c: &ExperimentContext| {
        Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>
    });
    assert_eq!(r.trials, 0);
    assert_eq!(r.latency, LatencyStats::default());
    assert_eq!(r.ler(), 0.0);
    assert_eq!(r.std_err(), 0.0);
}

#[test]
fn latency_stats_all_trivial_batch_is_free() {
    // A batch of all-trivial syndromes (HW ≤ 2) costs zero cycles: means,
    // maxima, and every percentile collapse to zero, and nothing counts
    // as nontrivial.
    let mut s = LatencyStats::default();
    for _ in 0..100 {
        s.record(0, 0);
    }
    for _ in 0..40 {
        s.record(2, 0);
    }
    assert_eq!(s.shots, 140);
    assert_eq!(s.nontrivial_shots, 0);
    assert_eq!(s.mean_cycles(), 0.0);
    assert_eq!(s.mean_nontrivial_ns(250.0), 0.0);
    assert_eq!(s.max_cycles, 0);
    assert_eq!(s.percentile_cycles(100.0), 0);
    assert_eq!(s.hw_histogram()[0], 100);
    assert_eq!(s.hw_histogram()[2], 40);
    assert_eq!(s.cycle_histogram()[0], 140);

    // End to end: decoding only-empty syndromes through the batch path.
    let ctx = ExperimentContext::new(3, 1e-3);
    let mut builder = SyndromeBatch::builder();
    for _ in 0..50 {
        builder.push(&[], 0);
    }
    let r = decode_batch_ler(&ctx, &builder.finish(), 3, &|c: &ExperimentContext| {
        Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>
    });
    assert_eq!(r.trials, 50);
    assert_eq!(r.failures, 0);
    assert_eq!(r.latency.shots, 50);
    assert_eq!(r.latency.total_cycles, 0);
    assert_eq!(r.latency.percentile_cycles(100.0), 0);
}

#[test]
fn latency_stats_single_shot_batch_is_exact() {
    // With one shot, every statistic must equal that shot's cost exactly
    // — including the bucketed percentiles, which clamp to the observed
    // maximum.
    let mut s = LatencyStats::default();
    s.record(10, 114);
    assert_eq!(s.shots, 1);
    assert_eq!(s.nontrivial_shots, 1);
    assert_eq!(s.mean_cycles(), 114.0);
    assert_eq!(s.mean_ns(250.0), 456.0);
    assert_eq!(s.mean_nontrivial_ns(250.0), 456.0);
    assert_eq!(s.max_ns(250.0), 456.0);
    for pct in [1.0, 50.0, 100.0] {
        assert_eq!(s.percentile_cycles(pct), 114, "p{pct}");
    }
    assert_eq!(s.percentile_ns(100.0, 250.0), 456.0);

    // A single *trivial* shot stays all-zero.
    let mut t = LatencyStats::default();
    t.record(1, 0);
    assert_eq!(t.shots, 1);
    assert_eq!(t.nontrivial_shots, 0);
    assert_eq!(t.percentile_cycles(100.0), 0);
    assert_eq!(t.mean_cycles(), 0.0);
}

#[test]
fn astrea_g_mean_hhw_latency_matches_calibration() {
    // §7.4: ~450 ns average decode latency at d = 9, p = 1e-3. The cycle
    // model is calibrated to land in that regime; assert the mean over
    // high-Hamming-weight syndromes stays within [150, 900] ns so the
    // calibration cannot silently drift.
    let ctx = ExperimentContext::new(9, 1e-3);
    let mut g = AstreaGDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let (mut sum_ns, mut count) = (0.0f64, 0u32);
    for _ in 0..60_000 {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.len() <= 10 {
            continue;
        }
        let p = g.decode(&shot.detectors);
        sum_ns += p.latency_ns(250.0);
        count += 1;
    }
    assert!(count > 300, "need high-HW syndromes, got {count}");
    let mean = sum_ns / count as f64;
    assert!(
        (150.0..=900.0).contains(&mean),
        "mean HHW latency {mean} ns drifted from the ~450 ns calibration"
    );
}
