//! Invariance properties of the bit-packed, word-parallel sampling path.
//!
//! The packed samplers seed each 64-shot word column independently
//! (`qec_circuit::column_seed`) and always draw all 64 lanes, so a
//! sampled batch is a pure function of `(trials, seed)`: the thread
//! count never changes any shot, and a shorter run is always a prefix of
//! a longer one with the same seed. These properties hold for arbitrary
//! `(distance, p, seed, threads, trials)` combinations, enforced by
//! proptest.

use astrea::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Distances × error rates covered by the properties; contexts are built
/// once and shared across cases (DEM extraction is the expensive part).
fn grid() -> &'static [ExperimentContext] {
    static GRID: OnceLock<Vec<ExperimentContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [(3, 2e-3), (3, 8e-3), (5, 2e-3), (5, 6e-3)]
            .into_iter()
            .map(|(d, p)| ExperimentContext::new(d, p))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn packed_sampling_is_thread_count_invariant(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 2usize..9,
        trials in 1u64..700,
    ) {
        let ctx = &grid()[ctx_idx];
        let a = sample_batch(ctx, trials, 1, seed);
        let b = sample_batch(ctx, trials, threads, seed);
        prop_assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            prop_assert_eq!(a.detectors(i), b.detectors(i), "shot {}", i);
            prop_assert_eq!(a.observables(i), b.observables(i), "shot {}", i);
        }
    }

    #[test]
    fn packed_sampling_trial_count_is_a_prefix_property(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 1usize..9,
        short in 1u64..300,
        extra in 1u64..400,
    ) {
        // The first `short` shots must be identical whether the run asked
        // for `short` or `short + extra` trials — padding lanes are always
        // drawn, so shot streams never depend on the requested count.
        let ctx = &grid()[ctx_idx];
        let a = sample_batch(ctx, short, threads, seed);
        let b = sample_batch(ctx, short + extra, threads, seed);
        prop_assert_eq!(a.len() as u64, short);
        for i in 0..a.len() {
            prop_assert_eq!(a.detectors(i), b.detectors(i), "shot {}", i);
            prop_assert_eq!(a.observables(i), b.observables(i), "shot {}", i);
        }
    }

    #[test]
    fn packed_and_scalar_sampling_agree_on_trigger_statistics(
        ctx_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        // The packed and scalar streams differ shot-by-shot (different
        // seeding contracts) but must sample the same model: compare the
        // total fired-detector mass over a moderate batch.
        let ctx = &grid()[ctx_idx];
        let trials = 4_000u64;
        let packed = sample_batch(ctx, trials, 4, seed);
        let scalar = sample_batch_scalar(ctx, trials, 4, seed);
        let mass = |b: &astrea_core::SyndromeBatch| -> f64 {
            (0..b.len()).map(|i| b.hamming_weight(i)).sum::<usize>() as f64 / trials as f64
        };
        let (p, s) = (mass(&packed), mass(&scalar));
        // Mean fired detectors per shot is O(1); 4k trials give ~2% MC
        // error, so 15% is a comfortable 5-sigma-ish band.
        prop_assert!(
            (p - s).abs() / s.max(1e-9) < 0.15,
            "packed mass {} vs scalar mass {}", p, s
        );
    }
}
