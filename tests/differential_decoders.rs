//! Cross-decoder differential conformance suite.
//!
//! Every future hot-path rewrite is trusted only because this suite pins
//! the decoders against each other on the *same* syndromes in the *same*
//! quantized weight units:
//!
//! * **Astrea vs subset DP** — Astrea's staged brute force must land on
//!   the exact MWPM optimum for every syndrome of Hamming weight ≤ 10.
//! * **Dense blossom vs subset DP** — the two exact software baselines
//!   must agree on the total matching weight (they share no code).
//! * **Astrea-G vs Astrea** — with a weight threshold too large to filter
//!   anything, the greedy pipeline must never beat Astrea's exact weight,
//!   and for HW ≤ 10 (where it routes to the same brute force) must tie.
//!
//! The corpus mixes noise-model-sampled syndromes with adversarial
//! uniform-random detector subsets at d ∈ {3, 5, 7} — over 10 000
//! syndromes per run, all checked for exactness with zero tolerance.

use astrea::prelude::*;
use blossom_mwpm::{dense_blossom, subset_dp, MatchingSolution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quantized weight of a matching solution, in GWT table units.
fn quantized_weight(gwt: &GlobalWeightTable, sol: &MatchingSolution) -> u64 {
    let pairs: u64 = sol
        .pairs
        .iter()
        .map(|&(a, b)| gwt.pair_weight_q(a, b) as u64)
        .sum();
    let boundary: u64 = sol
        .to_boundary
        .iter()
        .map(|&a| gwt.boundary_weight_q(a) as u64)
        .sum();
    pairs + boundary
}

/// Exact optimum over the quantized weights via the subset DP, using the
/// same effective pair weight Astrea sees (direct edge or boundary detour,
/// whichever is cheaper).
fn dp_optimum(gwt: &GlobalWeightTable, dets: &[u32]) -> u64 {
    let (_, cost) = subset_dp::solve(
        dets.len(),
        |i, j| {
            let direct = gwt.pair_weight_q(dets[i], dets[j]) as f64;
            let via = gwt.boundary_weight_q(dets[i]) as f64 + gwt.boundary_weight_q(dets[j]) as f64;
            direct.min(via)
        },
        |i| gwt.boundary_weight_q(dets[i]) as f64,
    );
    cost.round() as u64
}

/// Exact optimum via the dense blossom algorithm on the standard
/// boundary-doubled graph: `k` real nodes plus one virtual boundary twin
/// per real node; twins connect to their real node at the boundary weight
/// and to each other for free.
fn blossom_optimum(gwt: &GlobalWeightTable, dets: &[u32]) -> u64 {
    let k = dets.len();
    let n = 2 * k;
    let weight = |u: usize, v: usize| -> i64 {
        let (u, v) = (u.min(v), u.max(v));
        match (u < k, v < k) {
            (true, true) => {
                let direct = gwt.pair_weight_q(dets[u], dets[v]) as i64;
                let via =
                    gwt.boundary_weight_q(dets[u]) as i64 + gwt.boundary_weight_q(dets[v]) as i64;
                direct.min(via)
            }
            // A real node may take any twin at its own boundary cost:
            // twins are interchangeable, and leftover twins pair among
            // themselves for free, so parity always works out.
            (true, false) => gwt.boundary_weight_q(dets[u]) as i64,
            (false, false) => 0,
            (false, true) => unreachable!("u <= v after normalization"),
        }
    };
    let (_, total) = dense_blossom::min_weight_perfect_matching(n, weight);
    total as u64
}

/// The differential corpus for one distance: noise-sampled syndromes plus
/// uniform-random detector subsets, all with Hamming weight in `[1, 10]`.
fn corpus(ctx: &ExperimentContext, sampled: usize, random: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(sampled + random);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = DemSampler::new(ctx.dem());
    while out.len() < sampled {
        let shot = sampler.sample(&mut rng);
        if (1..=10).contains(&shot.detectors.len()) {
            out.push(shot.detectors.clone());
        }
    }
    let detectors = ctx.gwt().len() as u32;
    for _ in 0..random {
        let hw = rng.gen_range(1..=10usize).min(detectors as usize);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < hw {
            set.insert(rng.gen_range(0..detectors));
        }
        out.push(set.into_iter().collect());
    }
    out
}

#[test]
fn exactness_holds_across_decoders_and_distances() {
    // Large enough to never filter an edge: quantized weights are u8, so
    // every pre-matching survives and Astrea-G's low-HW route is intact.
    let huge_wth = AstreaGConfig {
        weight_threshold: 1e6,
        ..AstreaGConfig::default()
    };

    let mut checked = 0u64;
    for (d, p, sampled, random) in [
        (3, 8e-3, 2000, 1600),
        (5, 4e-3, 2000, 1600),
        (7, 2e-3, 2000, 1600),
    ] {
        let ctx = ExperimentContext::new(d, p);
        let gwt = ctx.gwt();
        let astrea = AstreaDecoder::new(gwt);
        let astrea_g = AstreaGDecoder::with_config(gwt, huge_wth);

        for dets in corpus(&ctx, sampled, random, 0xD1FF + d as u64) {
            let hw = dets.len();

            // Astrea is exact MWPM over the quantized table.
            let sol = astrea
                .decode_full(&dets)
                .unwrap_or_else(|| panic!("Astrea refused HW {hw} syndrome {dets:?} at d={d}"));
            assert!(sol.is_perfect_over(&dets), "imperfect matching on {dets:?}");
            let astrea_w = quantized_weight(gwt, &sol);
            let dp_w = dp_optimum(gwt, &dets);
            assert_eq!(
                astrea_w, dp_w,
                "Astrea suboptimal at d={d} on {dets:?} (hw {hw})"
            );

            // The two independent exact baselines agree.
            let blossom_w = blossom_optimum(gwt, &dets);
            assert_eq!(
                blossom_w, dp_w,
                "dense blossom diverged from subset DP at d={d} on {dets:?} (hw {hw})"
            );

            // Greedy with an unfiltered weight table never beats exact —
            // and ties on the low-HW route it shares with Astrea.
            let (_, greedy) = astrea_g.decode_full(&dets);
            let greedy = greedy
                .unwrap_or_else(|| panic!("Astrea-G produced no matching on {dets:?} at d={d}"));
            let greedy_w = quantized_weight(gwt, &greedy);
            assert!(
                greedy_w >= astrea_w,
                "Astrea-G ({greedy_w}) beat exact MWPM ({astrea_w}) at d={d} on {dets:?}"
            );
            assert_eq!(
                greedy_w, astrea_w,
                "Astrea-G must tie Astrea below the brute-force cutoff at d={d} on {dets:?}"
            );

            checked += 1;
        }
    }
    assert!(
        checked >= 10_000,
        "conformance corpus too small: {checked} syndromes"
    );
}

#[test]
fn boundary_only_and_adjacent_pairs_are_exact() {
    // Focused edge geometry: single detectors (pure boundary matches) and
    // nearest-neighbour pairs, where quantization rounding is most likely
    // to produce ties that decoders must still break optimally.
    let ctx = ExperimentContext::new(5, 3e-3);
    let gwt = ctx.gwt();
    let astrea = AstreaDecoder::new(gwt);
    let n = gwt.len() as u32;
    for a in 0..n {
        let dets = vec![a];
        let sol = astrea.decode_full(&dets).expect("single detector");
        assert_eq!(quantized_weight(gwt, &sol), dp_optimum(gwt, &dets));
    }
    for a in 0..n {
        for b in (a + 1)..n.min(a + 9) {
            let dets = vec![a, b];
            let sol = astrea.decode_full(&dets).expect("detector pair");
            assert_eq!(
                quantized_weight(gwt, &sol),
                dp_optimum(gwt, &dets),
                "pair ({a}, {b})"
            );
            assert_eq!(blossom_optimum(gwt, &dets), dp_optimum(gwt, &dets));
        }
    }
}
