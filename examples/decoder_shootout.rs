//! Decoder shoot-out: logical error rate of every decoder in the
//! workspace on the same memory-experiment workload.
//!
//! This is the library-API version of the paper's Table 4 / Figure 4
//! comparison, scaled to run in seconds: distance 3 and 5 at a physical
//! error rate high enough for direct Monte-Carlo statistics.
//!
//! ```text
//! cargo run --release --example decoder_shootout
//! ```

use astrea::prelude::*;
use astrea_experiments::DecoderFactory;

const NAMES: [&str; 6] = [
    "MWPM",
    "Local-MWPM",
    "Astrea",
    "Astrea-G",
    "UF (AFS)",
    "Clique",
];

fn run_one(ctx: &ExperimentContext, name: &str, trials: u64, threads: usize) -> f64 {
    let factory: Box<DecoderFactory> = match name {
        "MWPM" => Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>),
        "Local-MWPM" => {
            Box::new(|c| Box::new(LocalMwpmDecoder::new(c.graph())) as Box<dyn Decoder>)
        }
        "Astrea" => Box::new(|c| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>),
        "Astrea-G" => Box::new(|c| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>),
        "UF (AFS)" => Box::new(|c| Box::new(UnionFindDecoder::new(c.graph())) as Box<dyn Decoder>),
        "Clique" => {
            Box::new(|c| Box::new(CliqueDecoder::new(c.graph(), c.gwt())) as Box<dyn Decoder>)
        }
        other => unreachable!("unknown decoder {other}"),
    };
    estimate_ler(ctx, trials, threads, 99, &*factory).ler()
}

fn main() {
    let trials = 200_000;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let p = 3e-3;

    println!("memory experiments, p = {p}, {trials} trials per cell\n");

    let ctx3 = ExperimentContext::new(3, p);
    let ctx5 = ExperimentContext::new(5, p);

    println!("{:<12} {:>12} {:>12}", "decoder", "d=3 LER", "d=5 LER");
    for name in NAMES {
        let l3 = run_one(&ctx3, name, trials, threads);
        let l5 = run_one(&ctx5, name, trials, threads);
        println!("{name:<12} {l3:>12.3e} {l5:>12.3e}");
    }

    println!();
    println!("Expected shape (paper Fig. 4 / Table 4): MWPM, Astrea and Astrea-G");
    println!("coincide; the Union-Find (AFS) decoder trails by a growing factor as");
    println!("the distance increases; Clique tracks MWPM closely because it defers");
    println!("every non-trivial syndrome to software MWPM — at the cost of losing");
    println!("real-time operation on exactly those syndromes.");
}
