//! Logical qubit lifetime: how long a memory survives under continuous
//! correction.
//!
//! A memory experiment measures the failure probability of *one* logical
//! cycle; an idle logical qubit lives through many. With per-cycle failure
//! probability `ε`, the expected lifetime is `1/ε` cycles — so decoder
//! accuracy converts directly into qubit lifetime, which is the unit
//! experimentalists quote. This example plays consecutive logical cycles
//! (fresh syndromes each cycle, decoder corrections tracked in a running
//! Pauli frame) and reports the measured mean lifetime per decoder,
//! showing how Astrea-G's MWPM-grade accuracy doubles-or-better the
//! lifetime an approximate decoder delivers from the *same* hardware.
//!
//! ```text
//! cargo run --release --example logical_lifetime
//! ```

use astrea::prelude::*;
use rand::SeedableRng;

fn mean_lifetime(
    ctx: &ExperimentContext,
    decoder: &mut dyn Decoder,
    episodes: u32,
    max_cycles: u32,
    seed: u64,
) -> f64 {
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut total_cycles = 0u64;
    let mut failures = 0u64;
    for _ in 0..episodes {
        // One episode: run cycles until the tracked logical frame diverges
        // from reality (a logical error slipped past the decoder).
        let mut survived = 0u32;
        while survived < max_cycles {
            let shot = sampler.sample(&mut rng);
            let prediction = decoder.decode(&shot.detectors);
            total_cycles += 1;
            if prediction.observables != shot.observables {
                failures += 1;
                break;
            }
            survived += 1;
        }
    }
    if failures == 0 {
        f64::INFINITY
    } else {
        total_cycles as f64 / failures as f64
    }
}

fn main() {
    let d = 5;
    let p = 4e-3;
    let ctx = ExperimentContext::new(d, p);
    let episodes = 400;
    let max_cycles = 10_000;

    println!("distance {d}, p = {p}: mean logical lifetime (cycles of {d} rounds)\n");
    let mut mwpm = MwpmDecoder::new(ctx.gwt());
    let mut astrea_g = AstreaGDecoder::new(ctx.gwt());
    let mut uf = UnionFindDecoder::new(ctx.graph());

    let decoders: [(&str, &mut dyn Decoder); 3] = [
        ("MWPM (software)", &mut mwpm),
        ("Astrea-G (real-time)", &mut astrea_g),
        ("Union-Find (AFS)", &mut uf),
    ];
    for (name, decoder) in decoders {
        let lifetime = mean_lifetime(&ctx, decoder, episodes, max_cycles, 17);
        println!(
            "{name:<22} {:>10.0} cycles  (~{:.1} ms of wall-clock memory at 1 us/round)",
            lifetime,
            lifetime * d as f64 * 1e-3,
        );
    }
    println!();
    println!("Accuracy is lifetime: every factor a decoder loses to MWPM is a factor");
    println!("of memory time lost on identical hardware — the paper's §9 argument for");
    println!("optimizing decoder accuracy, not just speed.");
}
