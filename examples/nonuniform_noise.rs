//! Non-uniform error rates and GWT reprogramming (paper §8.2).
//!
//! Real devices do not have one physical error rate: qubits vary across
//! the chip and drift over time. The paper argues Astrea's Global Weight
//! Table makes it uniquely flexible — the weights can simply be
//! reprogrammed from the current calibration. This example builds a
//! device with a hot corner, then decodes its syndromes twice: once with
//! weights computed for the *assumed* uniform device, once with weights
//! reprogrammed from the *true* rates.
//!
//! ```text
//! cargo run --release --example nonuniform_noise
//! ```

use astrea::prelude::*;
use astrea_experiments::DecoderFactory;
use qec_circuit::{build_memory_circuit, NoiseMap};
use surface_code::Basis;

fn main() {
    let d = 5;
    let base = 1e-3;
    let trials = 300_000;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let code = SurfaceCode::new(d).expect("distance 5 is valid");

    // The true device: a 2×2 corner of data qubits runs 8× hotter than the
    // calibrated base rate (fabrication defect, TLS, you name it).
    let mut hot = NoiseMap::uniform(&code, NoiseModel::depolarizing(base));
    for r in 0..2 {
        for c in 0..2 {
            hot.scale_qubit(r * d + c, 8.0);
        }
    }
    let true_circuit = build_memory_circuit(&code, d, &hot, Basis::Z);
    let true_ctx = ExperimentContext::from_circuit(d, base, &true_circuit);

    // Decoder 1: GWT programmed for the assumed uniform device.
    let assumed_ctx = ExperimentContext::new(d, base);
    let stale_gwt = assumed_ctx.gwt();
    let stale: Box<DecoderFactory> =
        Box::new(move |_c| Box::new(AstreaGDecoder::new(stale_gwt)) as Box<dyn Decoder>);

    // Decoder 2: GWT reprogrammed from the true calibration.
    let fresh: Box<DecoderFactory> =
        Box::new(|c| Box::new(AstreaGDecoder::new(c.gwt())) as Box<dyn Decoder>);

    let r_stale = estimate_ler(&true_ctx, trials, threads, 42, &*stale);
    let r_fresh = estimate_ler(&true_ctx, trials, threads, 42, &*fresh);

    println!("distance {d}, base p = {base}, 2x2 hot corner at 8x, {trials} trials\n");
    println!(
        "Astrea-G with uniform-calibration GWT : LER = {:.3e}",
        r_stale.ler()
    );
    println!(
        "Astrea-G with reprogrammed GWT        : LER = {:.3e}",
        r_fresh.ler()
    );
    println!(
        "\nReprogramming the weight table recovers {:.2}x in logical error rate —",
        r_stale.ler() / r_fresh.ler().max(1e-300)
    );
    println!("no gateware change required, which is §8.2's flexibility argument");
    println!("against fixed-function decoders like NISQ+/QECOOL/AFS.");
}
