//! Real-time decoding under the 1 µs syndrome cadence.
//!
//! Google Sycamore produces a syndrome round every ~1 µs; a real-time
//! decoder must keep up or errors back up faster than they can be
//! corrected (§1, §3.4). This example streams logical cycles for a
//! distance-7 qubit and compares, per syndrome:
//!
//! * **Astrea's modeled hardware latency** (250 MHz cycle model) against
//!   the 1 µs deadline, and
//! * the **measured wall-clock latency of exact software MWPM** on this
//!   machine — the comparison behind the paper's Figure 3.
//!
//! ```text
//! cargo run --release --example real_time_budget
//! ```

use astrea::prelude::*;
use rand::SeedableRng;
use std::time::Instant;

const DEADLINE_NS: f64 = 1000.0;

fn main() {
    let code = SurfaceCode::new(7).expect("distance 7 is valid");
    // p = 10⁻³: the harsh end of the paper's regime, where Hamming
    // weights above 10 appear and Astrea alone is not enough.
    let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));

    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mut astrea_g = AstreaGDecoder::new(ctx.gwt());
    let mwpm = MwpmDecoder::new(ctx.gwt());
    let clock = CycleModel::default();

    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let logical_cycles = 20_000;
    let mut astrea_misses = 0u64; // deadline misses incl. HW > 10 give-ups
    let mut astrea_g_misses = 0u64;
    let mut sw_misses = 0u64;
    let mut sw_worst_us = 0.0f64;
    let mut astrea_g_worst_ns = 0.0f64;

    for _ in 0..logical_cycles {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() {
            continue;
        }

        let a = astrea.decode(&shot.detectors);
        if a.deferred || a.latency_ns(250.0) > DEADLINE_NS {
            astrea_misses += 1;
        }

        let g = astrea_g.decode(&shot.detectors);
        astrea_g_worst_ns = astrea_g_worst_ns.max(g.latency_ns(250.0));
        if g.deferred || g.latency_ns(250.0) > DEADLINE_NS {
            astrea_g_misses += 1;
        }

        let t = Instant::now();
        let _ = mwpm.decode_full(&shot.detectors);
        let us = t.elapsed().as_secs_f64() * 1e6;
        sw_worst_us = sw_worst_us.max(us);
        if us * 1000.0 > DEADLINE_NS {
            sw_misses += 1;
        }
    }

    println!("distance 7, p = 1e-3, {logical_cycles} logical cycles\n");
    println!(
        "Astrea   (hardware model): {:5} deadline misses (all Hamming weight > 10)",
        astrea_misses
    );
    println!(
        "Astrea-G (hardware model): {:5} deadline misses; worst case {:.0} ns",
        astrea_g_misses, astrea_g_worst_ns
    );
    println!(
        "software MWPM (this CPU):  {:5} deadline misses; worst case {:.1} us",
        sw_misses, sw_worst_us
    );
    println!();
    println!(
        "Astrea-G's worst case is bounded by construction ({} cycles at 250 MHz);",
        clock.cycles_within_ns(DEADLINE_NS)
    );
    println!("software MWPM has no such bound — its tail is workload-dependent, which");
    println!("is why the paper's BlossomV baseline missed 1 us on 96% of nonzero");
    println!("syndromes despite a fine average case.");
}
