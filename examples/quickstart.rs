//! Quickstart: build a surface code, sample noisy syndromes, and decode
//! them in real time with Astrea.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use astrea::prelude::*;
use rand::SeedableRng;

fn main() {
    // A distance-5 rotated surface code under circuit-level depolarizing
    // noise at p = 10⁻³, decoded over d rounds (the paper's standard
    // memory experiment).
    let code = SurfaceCode::new(5).expect("distance 5 is valid");
    println!("{}", code.resources());

    // One-time setup: build the decoding context (detector error model,
    // matching graph, Global Weight Table).
    let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
    println!(
        "decoding graph: {} detectors, {} edges; GWT: {} bytes (8-bit quantized)",
        ctx.graph().num_detectors(),
        ctx.graph().edges().len(),
        ctx.gwt().quantized_bytes(),
    );

    // Astrea (real-time brute force) and the idealized software MWPM.
    let mut astrea = AstreaDecoder::new(ctx.gwt());
    let mut mwpm = MwpmDecoder::new(ctx.gwt());

    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);
    let clock = CycleModel::default();

    let mut stats = (0u32, 0u32, 0u32); // (shots, astrea ok, mwpm ok)
    println!("\n shot |  HW | Astrea ns | Astrea obs | MWPM obs | actual");
    println!("------+-----+-----------+------------+----------+-------");
    for shot_no in 0..10_000 {
        let shot = sampler.sample(&mut rng);
        let a = astrea.decode(&shot.detectors);
        let m = mwpm.decode(&shot.detectors);
        stats.0 += 1;
        stats.1 += (a.observables == shot.observables) as u32;
        stats.2 += (m.observables == shot.observables) as u32;
        if shot.hamming_weight() >= 6 {
            println!(
                "{:5} | {:3} | {:9.0} | {:10} | {:8} | {}",
                shot_no,
                shot.hamming_weight(),
                clock.to_ns(a.cycles),
                a.observables,
                m.observables,
                shot.observables
            );
        }
    }
    println!(
        "\n10,000 shots: Astrea corrected {} ({:.3}%), MWPM corrected {} ({:.3}%)",
        stats.1,
        100.0 * stats.1 as f64 / stats.0 as f64,
        stats.2,
        100.0 * stats.2 as f64 / stats.0 as f64,
    );
    println!("Astrea achieves MWPM-grade accuracy with a bounded worst case of 456 ns.");
}
