//! Tuning Astrea-G's weight threshold (the paper's §7.3 ablation).
//!
//! The weight threshold `Wth` trades search-space size against accuracy:
//! filtering at `Wth = 4` drops pairings that the true MWPM occasionally
//! needs, while `Wth ≥ 7` (100× below the logical error rate) is
//! indistinguishable from unfiltered search. This example sweeps `Wth`
//! on a distance-5 code at a high physical error rate and reports both
//! the logical error rate and the mean modeled latency, exposing the
//! trade-off directly through the public API.
//!
//! ```text
//! cargo run --release --example weight_threshold_tuning
//! ```

use astrea::prelude::*;
use astrea_core::AstreaGConfig;
use astrea_experiments::DecoderFactory;

fn main() {
    let trials = 300_000;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    // High p so that high-Hamming-weight syndromes (the ones the greedy
    // pipeline and its filter actually see) are common.
    let ctx = ExperimentContext::new(5, 8e-3);

    // Reference: idealized software MWPM.
    let mwpm: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
    let reference = estimate_ler(&ctx, trials, threads, 5, &*mwpm);
    println!(
        "d = 5, p = 8e-3, {trials} trials; MWPM reference LER = {:.3e}\n",
        reference.ler()
    );

    println!(
        "{:>5} {:>12} {:>10} {:>16} {:>14}",
        "Wth", "LER", "vs MWPM", "mean latency ns", "max latency ns"
    );
    for wth10 in [30u32, 40, 50, 60, 70, 80] {
        let wth = wth10 as f64 / 10.0;
        let config = AstreaGConfig {
            weight_threshold: wth,
            // Route everything nontrivial through the greedy pipeline so
            // the filter is actually exercised.
            lhw_cutoff: 4,
            ..AstreaGConfig::default()
        };
        let factory: Box<DecoderFactory> = Box::new(move |c| {
            Box::new(AstreaGDecoder::with_config(c.gwt(), config)) as Box<dyn Decoder>
        });
        let r = estimate_ler(&ctx, trials, threads, 5, &*factory);
        println!(
            "{:>5.1} {:>12.3e} {:>9.2}x {:>16.1} {:>14.0}",
            wth,
            r.ler(),
            r.ler() / reference.ler(),
            r.latency.mean_ns(250.0),
            r.latency.max_ns(250.0),
        );
    }

    println!();
    println!("Aggressive filtering (Wth ≤ 4) visibly costs accuracy; at the paper's");
    println!("default (Wth = 7) the greedy decoder tracks MWPM while its latency");
    println!("stays bounded by the 1 us pipeline budget.");
}
