//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the `rand` API it actually uses: [`RngCore`],
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. `StdRng` here is xoshiro256\*\*
//! seeded through SplitMix64 — a different (but high-quality) stream
//! than upstream's ChaCha12. Nothing in the workspace depends on the
//! exact upstream stream, only on determinism for a fixed seed, which
//! this crate guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random bits.
pub trait RngCore {
    /// Returns 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly "from all values" via [`Rng::gen`]
/// (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span / 2^64 — negligible for the small
                // spans this workspace draws.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's "standard" distribution (`f64` in
    /// `[0, 1)`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let (next, bytes) = (sm.0, sm.1.to_le_bytes());
            chunk.copy_from_slice(&bytes[..chunk.len()]);
            sm = splitmix64(next);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: returns `(next_state, output)`.
fn splitmix64(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (next, z ^ (z >> 31))
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256\*\*.
    ///
    /// Not the upstream ChaCha12 stream — see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers (upstream's `rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range(0..3u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(1..16u8);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
