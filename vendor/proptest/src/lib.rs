//! Offline stand-in for `proptest` (1.x-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` attribute, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, the [`Strategy`] trait with
//! `prop_map`, range strategies, [`collection::vec`],
//! [`collection::btree_set`], [`sample::select`], and [`any`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the concrete generated
//!   values and the case's deterministic seed, but is not minimized.
//! * **Deterministic.** Cases are generated from a fixed per-test seed,
//!   so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `proptest!` doc example necessarily shows `#[test]` functions
// inside the macro invocation; they are illustrative, not executable.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for primitive types.
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty => $gen:expr),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> AnyPrimitive<$t> {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(
    u8 => |r| rand::RngCore::next_u64(r) as u8,
    u16 => |r| rand::RngCore::next_u64(r) as u16,
    u32 => |r| rand::RngCore::next_u32(r),
    u64 => |r| rand::RngCore::next_u64(r),
    usize => |r| rand::RngCore::next_u64(r) as usize,
    i32 => |r| rand::RngCore::next_u32(r) as i32,
    i64 => |r| rand::RngCore::next_u64(r) as i64,
    bool => |r| rand::RngCore::next_u64(r) & 1 == 1
);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (upstream's `prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A size specification: any `usize` range-ish value.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (duplicates may yield a smaller set, as upstream allows).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`btree_set`] strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> std::collections::BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            // Bounded attempts: duplicates shrink the set rather than loop.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }
}

/// Sampling strategies (upstream's `prop::sample`).
pub mod sample {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing one element of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select { options }
    }

    /// The [`select`] strategy.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Upstream-style `prop::` facade module.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
    pub use rand::rngs::StdRng as TestRng;
}

/// The deterministic per-case seed: test name hash × case index.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Runs one property across `config.cases` deterministic cases.
///
/// `generate` draws the inputs; `run` returns `Err(message)` on a
/// `prop_assert!` failure. Used by the [`proptest!`] macro — not public
/// API in upstream, but harmless to expose here.
pub fn run_property<V: core::fmt::Debug>(
    test_name: &str,
    config: &ProptestConfig,
    generate: impl Fn(&mut StdRng) -> V,
    run: impl Fn(&V) -> Result<(), String>,
) {
    use rand::SeedableRng;
    for case in 0..config.cases {
        let seed = case_seed(test_name, case);
        let mut rng = StdRng::seed_from_u64(seed);
        let value = generate(&mut rng);
        if let Err(message) = run(&value) {
            panic!(
                "proptest case {case}/{} failed for `{test_name}`\n\
                 inputs: {value:#?}\n\
                 seed: {seed:#x}\n\
                 {message}",
                config.cases
            );
        }
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("prop_assert!({}) failed", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}  ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "prop_assert_ne! failed: both {:?}  ({} vs {})",
                l,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "prop_assert_ne! failed: both {:?}: {}",
                l,
                format!($($fmt)*)
            ));
        }
    }};
}

/// Declares deterministic randomized property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal arms first: the public catch-all below would otherwise
    // swallow recursive `@tests` calls and loop forever.
    (@tests ($config:expr)) => {};
    (
        @tests ($config:expr)
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(
                stringify!($name),
                &config,
                |rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), rng);)+
                    ($($arg,)+)
                },
                |&($(ref $arg,)+)| {
                    // Bind by cloning so the body can consume the inputs.
                    $(let $arg = ::core::clone::Clone::clone($arg);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..10, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_sets_are_sorted_and_bounded(s in prop::collection::btree_set(0u32..16, 0..=10)) {
            let v: Vec<u32> = s.into_iter().collect();
            prop_assert!(v.len() <= 10);
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn select_picks_from_options(n in prop::sample::select(vec![2usize, 4, 6]), x in any::<u32>()) {
            let _ = x;
            prop_assert!(n == 2 || n == 4 || n == 6);
        }

        #[test]
        fn map_applies(v in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert")]
    fn failures_report_inputs() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(10),
            |rng| Strategy::new_value(&(0u32..10), rng),
            |&x| {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            },
        );
    }

    #[test]
    fn cases_are_deterministic() {
        assert_eq!(crate::case_seed("foo", 3), crate::case_seed("foo", 3));
        assert_ne!(crate::case_seed("foo", 3), crate::case_seed("foo", 4));
        assert_ne!(crate::case_seed("foo", 3), crate::case_seed("bar", 3));
    }
}
