//! Offline stand-in for `criterion` (0.5-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Throughput`], and
//! [`black_box`].
//!
//! Measurement model: per benchmark, a short warm-up estimates the cost
//! of one iteration, then `sample_size` timed samples run with enough
//! iterations each to exceed a minimum sample duration. The median
//! ns/iteration (and throughput, when set) is printed to stdout. No
//! statistical analysis, HTML reports, or baseline comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: grow the iteration count until one
        // sample takes long enough to time reliably.
        let min_sample = Duration::from_millis(2);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= min_sample || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((min_sample.as_nanos() as u64 / elapsed.as_nanos().max(1) as u64) + 1).clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        self.iters_per_sample = iters;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = sample_ns[sample_ns.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_per_sample: 0,
            samples: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let mut line = format!(
            "{}/{:<40} {:>14} ns/iter ({} iters/sample, {} samples)",
            self.name,
            id.id,
            format_ns(bencher.median_ns),
            bencher.iters_per_sample,
            self.sample_size,
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if bencher.median_ns > 0.0 {
                let per_sec = count as f64 * 1e9 / bencher.median_ns;
                line.push_str(&format!("  [{per_sec:.3e} {unit}/s]"));
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for upstream
    /// API compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Prints the run summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!(
            "criterion-stub: {} benchmarks measured",
            self.benchmarks_run
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> $crate::Criterion {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() -> $crate::Criterion {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group().final_summary();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(16));
        group.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        trivial_bench(&mut c);
        assert_eq!(c.benchmarks_run, 2);
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        let c = smoke();
        c.final_summary();
        assert_eq!(c.benchmarks_run, 2);
    }
}
