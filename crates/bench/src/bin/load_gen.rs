//! Load generator for the decode service: sweeps client count × offered
//! rate in open-loop mode (latency measured from intended arrival, so
//! queueing is charged to the service) plus a closed-loop saturation run
//! per client count, and writes `results/BENCH_serving.json` with
//! p50/p99/p999 latency and achieved shots/s for each point. Each
//! point's per-shot cycle-model latencies also drive the `realtime`
//! backlog simulator at the paper's one-window-per-`d`-µs cadence, so
//! the table reports what the measured latency distribution would do to
//! a live QEC queue.
//!
//! Usage: `load_gen [--smoke] [output.json]` — defaults to
//! `results/BENCH_serving.json`. `--smoke` runs a small CI check
//! instead: an in-process open+closed run and a TCP wire round trip,
//! asserting the service counters account for every shot, predictions
//! match the offline decode, and shutdown is clean. Smoke writes no
//! artifacts (it must never clobber full-size results).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use astrea_core::{decode_slice, BatchDecoderFactory, PipelineCounters, SyndromeBatch};
use astrea_experiments::realtime::{simulate_backlog, BacklogReport};
use astrea_serve::{
    build_workload, run_load, serve_tcp, ArrivalMode, DecodeService, LoadGenConfig, LoadReport,
    ServeConfig, SubmitPolicy, WireClient,
};
use blossom_mwpm::MwpmDecoder;
use decoding_graph::{DecodeScratch, Decoder, DecodingContext};
use qec_circuit::NoiseModel;
use surface_code::SurfaceCode;

const SEED: u64 = 7;
const DISTANCE: usize = 5;
const ERROR_RATE: f64 = 5e-3;
const REPLAY_FRACTION: f64 = 0.3;
const OPEN_SHOTS_PER_CLIENT: usize = 4_000;
const CLOSED_SHOTS_PER_CLIENT: usize = 2_000;
const CLIENT_COUNTS: [usize; 2] = [2, 8];
const OPEN_RATES: [f64; 2] = [25_000.0, 100_000.0];

fn context(distance: usize, p: f64) -> Arc<DecodingContext> {
    let code = SurfaceCode::new(distance).expect("valid distance");
    Arc::new(DecodingContext::for_memory_experiment(
        &code,
        NoiseModel::depolarizing(p),
    ))
}

fn factory() -> Arc<BatchDecoderFactory> {
    Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..ServeConfig::default()
    }
}

/// Runs one configuration against a fresh service (so the report's
/// stats are a per-run delta) and folds the per-client cycle-model
/// latencies through the backlog simulator at the `d` µs cadence.
fn run_point(
    ctx: &Arc<DecodingContext>,
    streams: &[SyndromeBatch],
    mode: ArrivalMode,
) -> (LoadReport, BacklogReport) {
    let service = DecodeService::new(Arc::clone(ctx), serve_config(), factory());
    let report = run_load(&service, streams, mode);
    service.shutdown();

    // One decoding window every d µs (§3.4); each client is one logical
    // qubit's stream, so simulate per client and report the worst case.
    let period_ns = DISTANCE as f64 * 1_000.0;
    let backlog = report
        .outcomes
        .iter()
        .map(|o| simulate_backlog(period_ns, &o.modeled_ns))
        .max_by(|a, b| a.p99_sojourn_ns.total_cmp(&b.p99_sojourn_ns))
        .expect("at least one client");
    (report, backlog)
}

fn counters_json(c: &PipelineCounters) -> String {
    format!(
        "{{\"shots_screened\": {}, \"trivial\": {}, \"hw1\": {}, \"hw2\": {}, \
         \"closed_form\": {}, \"hard_cache_hits\": {}, \"hard_cache_misses\": {}, \
         \"dp\": {}, \"sparse_blossom\": {}}}",
        c.shots_screened,
        c.trivial_shots,
        c.hw1_shots,
        c.hw2_shots,
        c.closed_form_shots,
        c.hard_cache_hits,
        c.hard_cache_misses,
        c.dp_shots,
        c.sparse_blossom_shots,
    )
}

fn point_json(
    clients: usize,
    offered: Option<f64>,
    report: &LoadReport,
    backlog: &BacklogReport,
) -> String {
    let mut json = format!("    {{\"clients\": {clients}");
    if let Some(rate) = offered {
        let _ = write!(json, ", \"offered_shots_per_s\": {rate:.0}");
    }
    let _ = write!(
        json,
        ", \"shots\": {}, \"achieved_shots_per_s\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"p999_ns\": {}, \"max_ns\": {}, \"failures\": {}, \"tiles\": {}",
        report.shots,
        report.shots_per_sec,
        report.p50_ns,
        report.p99_ns,
        report.p999_ns,
        report.max_ns,
        report.failures,
        report.stats.tiles,
    );
    let _ = write!(
        json,
        ", \"backlog\": {{\"period_ns\": {:.0}, \"max_backlog\": {}, \"p99_sojourn_ns\": {:.0}, \
         \"late_fraction\": {:.6}}}",
        DISTANCE as f64 * 1_000.0,
        backlog.max_backlog,
        backlog.p99_sojourn_ns,
        backlog.late_fraction,
    );
    let _ = write!(
        json,
        ", \"counters\": {}}}",
        counters_json(&report.stats.counters)
    );
    json
}

fn print_point(label: &str, report: &LoadReport, backlog: &BacklogReport) {
    println!(
        "{label}: {} shots, {:.0} shots/s, p50 {} ns, p99 {} ns, p999 {} ns, max {} ns",
        report.shots,
        report.shots_per_sec,
        report.p50_ns,
        report.p99_ns,
        report.p999_ns,
        report.max_ns,
    );
    println!(
        "  cache {}/{} hits, backlog: max {}, late {:.4}",
        report.stats.counters.hard_cache_hits,
        report.stats.counters.hard_cache_hits + report.stats.counters.hard_cache_misses,
        backlog.max_backlog,
        backlog.late_fraction,
    );
}

/// CI smoke: a short in-process run plus a TCP wire round trip, with
/// hard assertions instead of artifacts.
fn smoke() {
    let ctx = context(3, 2e-2);
    let cfg = LoadGenConfig {
        clients: 2,
        shots_per_client: 250,
        mode: ArrivalMode::Closed,
        replay_fraction: 0.5,
        seed: SEED,
    };
    let streams = build_workload(&ctx, &cfg);

    // Offline reference for bit-identity.
    let offline: Vec<Vec<_>> = streams
        .iter()
        .map(|s| {
            let mut dec = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            decode_slice(&mut dec, &mut scratch, s, 0..s.len()).predictions
        })
        .collect();

    let (closed, _) = run_point(&ctx, &streams, ArrivalMode::Closed);
    let (open, _) = run_point(
        &ctx,
        &streams,
        ArrivalMode::Open {
            shots_per_sec: 50_000.0,
        },
    );
    for report in [&closed, &open] {
        assert_eq!(report.shots, 500, "smoke run lost shots");
        for (got, want) in report.outcomes.iter().zip(&offline) {
            assert_eq!(
                &got.predictions, want,
                "serving predictions diverged from offline decode"
            );
        }
        let c = &report.stats.counters;
        assert_eq!(c.shots_screened, report.shots, "screen missed shots");
        assert!(c.trivial_shots > 0, "no trivial shots at smoke noise");
        assert!(
            c.hw1_shots + c.hw2_shots + c.closed_form_shots + c.hard_cache_misses + c.dp_shots > 0,
            "no nontrivial shots decoded — counters idle"
        );
    }

    // Wire front-end: a fresh service, a TCP server on an ephemeral
    // port, one client ping-ponging a stream slice.
    let service = Arc::new(DecodeService::new(
        Arc::clone(&ctx),
        serve_config(),
        factory(),
    ));
    let server = serve_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind smoke server");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = WireClient::connect_tcp(addr).expect("connect smoke client");
    let s = &streams[0];
    for (i, want) in offline[0].iter().enumerate().take(64.min(s.len())) {
        client
            .submit(s.detectors(i), s.observables(i))
            .expect("wire submit");
        let (seq, pred) = client.recv().expect("wire recv");
        assert_eq!(seq, i as u64);
        assert_eq!(&pred, want, "wire prediction diverged");
    }
    drop(client);
    server.shutdown();
    let stats = service.stats();
    assert_eq!(stats.counters.shots_screened, 64, "wire shots not screened");
    service.shutdown();
    // A fresh in-process session against the shut-down service must
    // observe Closed, proving no worker is left behind.
    let mut session = service.session(SubmitPolicy::Block);
    assert!(session.submit(&[0], 0).is_err(), "service not closed");
    println!("smoke OK: serving path bit-identical, counters live, shutdown clean");
}

fn main() {
    let mut smoke_mode = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke_mode = true;
        } else {
            positional.push(arg);
        }
    }
    if smoke_mode {
        smoke();
        return;
    }
    let out_path = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "results/BENCH_serving.json".to_string());

    let ctx = context(DISTANCE, ERROR_RATE);
    let started = Instant::now();
    let mut open_points: Vec<String> = Vec::new();
    let mut closed_points: Vec<String> = Vec::new();

    for &clients in &CLIENT_COUNTS {
        let open_cfg = LoadGenConfig {
            clients,
            shots_per_client: OPEN_SHOTS_PER_CLIENT,
            mode: ArrivalMode::Closed, // per-point mode set below
            replay_fraction: REPLAY_FRACTION,
            seed: SEED,
        };
        let streams = build_workload(&ctx, &open_cfg);
        for &rate in &OPEN_RATES {
            let mode = ArrivalMode::Open {
                shots_per_sec: rate,
            };
            let (report, backlog) = run_point(&ctx, &streams, mode);
            print_point(
                &format!("open  clients={clients} rate={rate:.0}/s"),
                &report,
                &backlog,
            );
            open_points.push(point_json(clients, Some(rate), &report, &backlog));
        }

        let closed_cfg = LoadGenConfig {
            shots_per_client: CLOSED_SHOTS_PER_CLIENT,
            ..open_cfg
        };
        let closed_streams = build_workload(&ctx, &closed_cfg);
        let (report, backlog) = run_point(&ctx, &closed_streams, ArrivalMode::Closed);
        print_point(&format!("closed clients={clients}"), &report, &backlog);
        closed_points.push(point_json(clients, None, &report, &backlog));
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"distance\": {DISTANCE},");
    let _ = writeln!(json, "  \"p\": {ERROR_RATE},");
    let _ = writeln!(json, "  \"replay_fraction\": {REPLAY_FRACTION},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"workers\": {},", serve_config().workers);
    let _ = writeln!(
        json,
        "  \"open_shots_per_client\": {OPEN_SHOTS_PER_CLIENT},"
    );
    let _ = writeln!(
        json,
        "  \"closed_shots_per_client\": {CLOSED_SHOTS_PER_CLIENT},"
    );
    json.push_str("  \"open_loop\": [\n");
    json.push_str(&open_points.join(",\n"));
    json.push_str("\n  ],\n  \"closed_loop\": [\n");
    json.push_str(&closed_points.join(",\n"));
    json.push_str("\n  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write serving benchmark JSON");
    println!("wrote {out_path} in {:?}", started.elapsed());
}
