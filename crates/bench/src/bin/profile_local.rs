//! Large-distance profiler for the GWT-free local weight path: runs
//! memory-experiment LER estimates at d ∈ {15, 21, 31} — distances whose
//! Global Weight Table would occupy ~42 MB, ~304 MB, and ~3.1 GB — on
//! contexts that never materialize one, and records throughput plus the
//! per-point peak RSS against the quadratic GWT projection in
//! `results/BENCH_local.json`. Every (distance, p) point is measured once
//! per deep-tail backend — `ondemand` (the default staged discovery
//! engine) and `graph-pd` (the graph-native primal-dual engine) — so the
//! artifact carries the A/B comparison directly.
//!
//! Usage: `profile_local [--smoke] [--p <prob>] [trials] [output.json]` —
//! `trials` is the d = 15 trial count (defaults 20 000); larger distances
//! scale down with their per-shot cost. Each (distance, p, backend) point
//! runs in a fresh child process, so `peak_rss_bytes` is that point's own
//! VmHWM rather than the running maximum of every point before it. By
//! default every distance is measured at p = 10⁻³ *and* p = 5×10⁻³ (the
//! latter exercises real defect densities instead of a structurally-zero
//! LER column); `--p` restricts the sweep to a single probability.
//! `--smoke` runs a CI-sized d = 15 check (seconds, not minutes): it
//! asserts the context is GWT-free, that the staging engines actually
//! engaged (non-zero provider counters through the pipeline), that each
//! backend's point beat a loose throughput floor so a staging regression
//! can't land silently, that backend dispatch does not drift (a graph-pd
//! run leaves the on-demand counters idle and vice versa), and that a
//! GWT-backed d = 5 differential point agrees bit-for-bit — and skips the
//! JSON artifact so smoke numbers never overwrite full-size results.

use astrea_experiments::{
    estimate_ler_streamed_counted, sample_batch, DecoderFactory, ExperimentContext, PipelineConfig,
};
use blossom_mwpm::{DeepBackend, MwpmDecoder};
use decoding_graph::{DecodeScratch, WeightSource};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 7;
const THREADS: usize = 8;
const DEFAULT_PS: [f64; 2] = [1e-3, 5e-3];
/// Smoke throughput floor: the d = 15 point must decode its shots inside
/// this budget (per backend). The measured rates on the reference host
/// are ≥ 40× the floor, so only a catastrophic staging regression (or a
/// return of the all-pairs wall) trips it.
const SMOKE_TRIALS: u64 = 2_000;
const SMOKE_BUDGET_S: f64 = 120.0;

/// Process high-water-mark RSS from `/proc/self/status` (Linux); `None`
/// elsewhere. Monotone over the process lifetime — which is why every
/// full-run point gets a process of its own.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn backend_name(backend: DeepBackend) -> &'static str {
    match backend {
        DeepBackend::Ondemand => "ondemand",
        DeepBackend::GraphPd => "graph-pd",
        DeepBackend::Staged => "staged",
    }
}

fn parse_backend(name: &str) -> DeepBackend {
    match name {
        "ondemand" => DeepBackend::Ondemand,
        "graph-pd" => DeepBackend::GraphPd,
        "staged" => DeepBackend::Staged,
        other => panic!("unknown backend {other:?}"),
    }
}

struct Point {
    distance: usize,
    p: f64,
    backend: DeepBackend,
    trials: u64,
    failures: u64,
    wall_s: f64,
    peak_rss: Option<u64>,
    gwt_projected: usize,
    detectors: usize,
    local_stages: u64,
    ondemand_stages: u64,
    ondemand_settled: u64,
    graphpd_stages: u64,
    graphpd_grows: u64,
    graphpd_merges: u64,
}

fn measure(distance: usize, p: f64, trials: u64, backend: DeepBackend) -> Point {
    let build = Instant::now();
    let ctx = ExperimentContext::new(distance, p);
    println!(
        "d={distance} p={p} [{}]: context built in {:?} (ℓ = {}, GWT projection {:.1} MB, \
         source {:?})",
        backend_name(backend),
        build.elapsed(),
        ctx.graph().num_detectors(),
        ctx.decoding().gwt_projected_bytes() as f64 / (1024.0 * 1024.0),
        ctx.weight_source(),
    );
    assert_eq!(
        ctx.weight_source(),
        WeightSource::Local,
        "d = {distance} must resolve GWT-free under the auto budget"
    );
    assert!(ctx.decoding().try_gwt().is_none());
    let factory: Box<DecoderFactory> = Box::new(move |c| {
        Box::new(MwpmDecoder::for_context(c.decoding()).with_deep_backend(backend))
    });
    let t = Instant::now();
    let (result, counters) = estimate_ler_streamed_counted(
        &ctx,
        trials,
        SEED,
        &*factory,
        PipelineConfig::for_threads(THREADS),
    );
    let wall_s = t.elapsed().as_secs_f64();
    assert_eq!(counters.shots_screened, trials);
    println!(
        "d={distance} p={p} [{}]: {} trials in {:.1}s ({:.0} shots/s), {} failures (LER \
         {:.2e}), peak RSS {:.1} MB, staged: {} stages / {} settled, on-demand: {} stages / {} \
         regions / {} settled / {} collisions / {} pruned / {} excluded, graph-pd: {} stages / \
         {} regions / {} grows / {} merges / {} pruned / {} excluded",
        backend_name(backend),
        trials,
        wall_s,
        trials as f64 / wall_s,
        result.failures,
        result.ler(),
        peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1024.0 * 1024.0)),
        counters.local_weights.stages,
        counters.local_weights.settled,
        counters.ondemand.stages,
        counters.ondemand.regions,
        counters.ondemand.settled,
        counters.ondemand.collisions,
        counters.ondemand.deadline_pruned,
        counters.ondemand.excluded,
        counters.graphpd.stages,
        counters.graphpd.regions,
        counters.graphpd.grows,
        counters.graphpd.merges,
        counters.graphpd.deadline_pruned,
        counters.graphpd.excluded,
    );
    Point {
        distance,
        p,
        backend,
        trials,
        failures: result.failures,
        wall_s,
        peak_rss: peak_rss_bytes(),
        gwt_projected: ctx.decoding().gwt_projected_bytes(),
        detectors: ctx.graph().num_detectors(),
        local_stages: counters.local_weights.stages,
        ondemand_stages: counters.ondemand.stages,
        ondemand_settled: counters.ondemand.settled,
        graphpd_stages: counters.graphpd.stages,
        graphpd_grows: counters.graphpd.grows,
        graphpd_merges: counters.graphpd.merges,
    }
}

fn point_json(pt: &Point) -> String {
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"distance\": {}, \"p\": {:e}, \"backend\": \"{}\", \"detectors\": {}, \
         \"trials\": {}, \"failures\": {}, \"ler\": {:.6e}, \"wall_s\": {:.3}, \
         \"shots_per_s\": {:.1}, \"gwt_projected_bytes\": {}, \"local_stages\": {}, \
         \"ondemand_stages\": {}, \"ondemand_settled\": {}, \"graphpd_stages\": {}, \
         \"graphpd_grows\": {}, \"graphpd_merges\": {}",
        pt.distance,
        pt.p,
        backend_name(pt.backend),
        pt.detectors,
        pt.trials,
        pt.failures,
        pt.failures as f64 / pt.trials as f64,
        pt.wall_s,
        pt.trials as f64 / pt.wall_s,
        pt.gwt_projected,
        pt.local_stages,
        pt.ondemand_stages,
        pt.ondemand_settled,
        pt.graphpd_stages,
        pt.graphpd_grows,
        pt.graphpd_merges,
    );
    if let Some(rss) = pt.peak_rss {
        let _ = write!(
            json,
            ", \"peak_rss_bytes\": {rss}, \"rss_over_projection\": {:.4}",
            rss as f64 / pt.gwt_projected as f64
        );
    }
    json.push('}');
    json
}

/// Runs one point in a fresh child process (`--point d p trials backend`)
/// so its VmHWM belongs to that point alone, and returns the child's JSON
/// line.
fn measure_in_child(distance: usize, p: f64, trials: u64, backend: DeepBackend) -> String {
    let exe = std::env::current_exe().expect("resolve own executable");
    let out = std::process::Command::new(exe)
        .args([
            "--point",
            &distance.to_string(),
            &format!("{p:e}"),
            &trials.to_string(),
            backend_name(backend),
        ])
        .output()
        .expect("spawn point child process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines() {
        if let Some(json) = line.strip_prefix("POINT ") {
            return json.to_string();
        }
        println!("{line}");
    }
    panic!(
        "child for d = {distance}, p = {p} emitted no POINT line (status {}):\n{}{}",
        out.status,
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
}

fn smoke() {
    // Differential gate first: at d = 5 the auto budget keeps the GWT, so
    // force both weight sources and compare predictions bit-for-bit.
    let gctx = ExperimentContext::with_source(5, 2e-3, WeightSource::Gwt);
    let lctx = ExperimentContext::with_source(5, 2e-3, WeightSource::Local);
    let batch = sample_batch(&gctx, 4_000, THREADS, SEED);
    let mut g = MwpmDecoder::for_context(gctx.decoding());
    let mut l = MwpmDecoder::for_context(lctx.decoding());
    let mut sg = DecodeScratch::new();
    let mut sl = DecodeScratch::new();
    let rg = astrea_core::decode_slice(&mut g, &mut sg, &batch, 0..batch.len());
    let rl = astrea_core::decode_slice(&mut l, &mut sl, &batch, 0..batch.len());
    assert_eq!(
        rg.predictions, rl.predictions,
        "local weights diverged from the GWT at d = 5"
    );

    // Backend accuracy gate: graph-pd is not bit-identical (ties may
    // break differently), but on the same stream its failure count must
    // sit within two-proportion noise of the on-demand backend's.
    let mut gp = MwpmDecoder::for_context(lctx.decoding()).with_deep_backend(DeepBackend::GraphPd);
    let mut sgp = DecodeScratch::new();
    let rgp = astrea_core::decode_slice(&mut gp, &mut sgp, &batch, 0..batch.len());
    let (f1, f2, n) = (rgp.failures as f64, rl.failures as f64, batch.len() as f64);
    let pooled = (f1 + f2) / (2.0 * n);
    let gate = 5.0 * (2.0 * pooled * (1.0 - pooled) / n).sqrt() * n;
    assert!(
        (f1 - f2).abs() <= gate.max(1.0),
        "graph-pd failures {} vs on-demand {} in {} shots exceeds the equivalence gate",
        rgp.failures,
        rl.failures,
        batch.len()
    );
    // Drift guard at the batch level: the forced backend did all the deep
    // work, the other engine stayed idle.
    assert!(sgp.ondemand.stats.is_idle(), "graph-pd run drove on-demand");
    assert!(sl.graphpd.stats.is_idle(), "on-demand run drove graph-pd");

    // The large-distance gate, once per backend: a d = 15 decode stream
    // completes inside a loose wall-clock budget with no GWT allocated,
    // the selected engine demonstrably live through the pipeline counters
    // and the other engine idle (dispatch drift guard).
    for backend in [DeepBackend::Ondemand, DeepBackend::GraphPd] {
        let pt = measure(15, 1e-3, SMOKE_TRIALS, backend);
        match backend {
            DeepBackend::GraphPd => {
                assert!(pt.graphpd_stages > 0, "graph-pd staging idle at d = 15");
                assert_eq!(
                    pt.ondemand_stages, 0,
                    "graph-pd run drove the on-demand engine at d = 15"
                );
            }
            _ => {
                assert!(pt.ondemand_stages > 0, "on-demand staging idle at d = 15");
                assert_eq!(
                    pt.graphpd_stages, 0,
                    "on-demand run drove the graph-pd engine at d = 15"
                );
            }
        }
        assert!(pt.local_stages > 0, "staged provider idle at d = 15");
        assert!(
            pt.wall_s < SMOKE_BUDGET_S,
            "throughput regression: {} shots took {:.1}s at d = 15 under {} \
             (budget {SMOKE_BUDGET_S}s)",
            pt.trials,
            pt.wall_s,
            backend_name(backend),
        );
        if let Some(rss) = pt.peak_rss {
            assert!(
                (rss as usize) < pt.gwt_projected * 4,
                "peak RSS {rss} not credibly below a GWT-carrying footprint"
            );
        }
    }
    println!(
        "smoke OK: d = 15 decoded GWT-free under both deep backends (budget {SMOKE_BUDGET_S}s \
         each), engines engaged without dispatch drift"
    );
}

fn main() {
    let mut smoke_mode = false;
    let mut p_override: Option<f64> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--p" => {
                let v = args.next().expect("--p requires a value");
                p_override = Some(v.parse().expect("--p value must be a float"));
            }
            "--point" => {
                // Child mode: measure one (d, p, trials, backend) point
                // and emit it as a machine-readable line for the parent.
                let d: usize = args.next().unwrap().parse().expect("--point distance");
                let p: f64 = args.next().unwrap().parse().expect("--point probability");
                let trials: u64 = args.next().unwrap().parse().expect("--point trials");
                let backend = args
                    .next()
                    .map_or(DeepBackend::Ondemand, |b| parse_backend(&b));
                let pt = measure(d, p, trials, backend);
                println!("POINT {}", point_json(&pt));
                return;
            }
            _ => positional.push(arg),
        }
    }
    if smoke_mode {
        smoke();
        return;
    }
    let base: u64 = positional
        .first()
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(20_000);
    let out_path = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| "results/BENCH_local.json".to_string());

    // Per-shot decode cost grows steeply with distance (more rounds, more
    // detectors per shot, larger matchings); scale trials to keep each
    // point in the ~minute range on one host. Each point runs in its own
    // child process so the VmHWM readings are per-point, not cumulative.
    let ps: Vec<f64> = p_override.map_or_else(|| DEFAULT_PS.to_vec(), |p| vec![p]);
    let schedule = [(15usize, base), (21, base / 4), (31, base / 40)];
    let mut point_lines: Vec<String> = Vec::new();
    for (d, trials) in schedule {
        for &p in &ps {
            for backend in [DeepBackend::Ondemand, DeepBackend::GraphPd] {
                point_lines.push(measure_in_child(d, p, trials.max(100), backend));
            }
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"note\": \"GWT-free local weight path; each point ran in its own process, so \
         peak_rss_bytes is that point's VmHWM alone; gwt_projected_bytes = 13 * detectors^2 \
         is what the table would have cost; backend is the deep-tail engine (ondemand = \
         staged discovery, graph-pd = graph-native primal-dual)\","
    );
    json.push_str("  \"points\": [\n");
    for (i, line) in point_lines.iter().enumerate() {
        let _ = write!(json, "    {line}");
        json.push_str(if i + 1 < point_lines.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
