//! Large-distance profiler for the GWT-free local weight path: runs
//! memory-experiment LER estimates at d ∈ {15, 21, 31} — distances whose
//! Global Weight Table would occupy ~42 MB, ~304 MB, and ~3.1 GB — on
//! contexts that never materialize one, and records throughput plus the
//! process peak RSS against the quadratic GWT projection in
//! `results/BENCH_local.json`.
//!
//! Usage: `profile_local [--smoke] [trials] [output.json]` — `trials` is
//! the d = 15 trial count (defaults 20 000); larger distances scale down
//! with their per-shot cost. `--smoke` runs a CI-sized d = 15 check
//! (seconds, not minutes): it asserts the context is GWT-free, that the
//! staged provider actually engaged (non-zero stage/expansion counters),
//! and that a GWT-backed d = 5 differential point agrees bit-for-bit —
//! and skips the JSON artifact so smoke numbers never overwrite full-size
//! results.

use astrea_experiments::{
    estimate_ler_streamed_counted, sample_batch, DecoderFactory, ExperimentContext, PipelineConfig,
};
use blossom_mwpm::MwpmDecoder;
use decoding_graph::{DecodeScratch, WeightSource};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 7;
const THREADS: usize = 8;
const P: f64 = 1e-3;

/// Process high-water-mark RSS from `/proc/self/status` (Linux); `None`
/// elsewhere. Monotone over the process lifetime, so points must be
/// measured smallest-distance-first for per-point attribution.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

struct Point {
    distance: usize,
    trials: u64,
    failures: u64,
    wall_s: f64,
    peak_rss: Option<u64>,
    gwt_projected: usize,
    detectors: usize,
    local_stages: u64,
}

fn measure(distance: usize, trials: u64) -> Point {
    let build = Instant::now();
    let ctx = ExperimentContext::new(distance, P);
    println!(
        "d={distance}: context built in {:?} (ℓ = {}, GWT projection {:.1} MB, source {:?})",
        build.elapsed(),
        ctx.graph().num_detectors(),
        ctx.decoding().gwt_projected_bytes() as f64 / (1024.0 * 1024.0),
        ctx.weight_source(),
    );
    assert_eq!(
        ctx.weight_source(),
        WeightSource::Local,
        "d = {distance} must resolve GWT-free under the auto budget"
    );
    assert!(ctx.decoding().try_gwt().is_none());
    let factory: Box<DecoderFactory> =
        Box::new(|c| Box::new(MwpmDecoder::for_context(c.decoding())));
    let t = Instant::now();
    let (result, counters) = estimate_ler_streamed_counted(
        &ctx,
        trials,
        SEED,
        &*factory,
        PipelineConfig::for_threads(THREADS),
    );
    let wall_s = t.elapsed().as_secs_f64();
    assert_eq!(counters.shots_screened, trials);
    // The streamed pipeline hides per-worker decoders behind `dyn
    // Decoder`; re-run a small slice with a concrete decoder to read the
    // provider counters and prove the local stage is live at this
    // distance.
    let probe = sample_batch(&ctx, 512, THREADS, SEED);
    let mut dec = MwpmDecoder::for_context(ctx.decoding());
    let mut scratch = DecodeScratch::new();
    let _ = astrea_core::decode_slice(&mut dec, &mut scratch, &probe, 0..probe.len());
    let stats = dec.local_stats().expect("local decoder must expose stats");
    println!(
        "d={distance}: {} trials in {:.1}s ({:.0} shots/s), {} failures (LER {:.2e}), \
         peak RSS {:.1} MB, provider: {} stages / {} expansions / {} settled",
        trials,
        wall_s,
        trials as f64 / wall_s,
        result.failures,
        result.ler(),
        peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1024.0 * 1024.0)),
        stats.stages,
        stats.expansions,
        stats.settled,
    );
    Point {
        distance,
        trials,
        failures: result.failures,
        wall_s,
        peak_rss: peak_rss_bytes(),
        gwt_projected: ctx.decoding().gwt_projected_bytes(),
        detectors: ctx.graph().num_detectors(),
        local_stages: stats.stages,
    }
}

fn smoke() {
    // Differential gate first: at d = 5 the auto budget keeps the GWT, so
    // force both backends and compare predictions bit-for-bit.
    let gctx = ExperimentContext::with_source(5, 2e-3, WeightSource::Gwt);
    let lctx = ExperimentContext::with_source(5, 2e-3, WeightSource::Local);
    let batch = sample_batch(&gctx, 4_000, THREADS, SEED);
    let mut g = MwpmDecoder::for_context(gctx.decoding());
    let mut l = MwpmDecoder::for_context(lctx.decoding());
    let mut sg = DecodeScratch::new();
    let mut sl = DecodeScratch::new();
    let rg = astrea_core::decode_slice(&mut g, &mut sg, &batch, 0..batch.len());
    let rl = astrea_core::decode_slice(&mut l, &mut sl, &batch, 0..batch.len());
    assert_eq!(
        rg.predictions, rl.predictions,
        "local weights diverged from the GWT at d = 5"
    );

    // The large-distance gate: a d = 15 decode stream completes in
    // seconds with no GWT allocated and the provider demonstrably live.
    let pt = measure(15, 2_000);
    assert!(pt.local_stages > 0, "local provider idle at d = 15");
    if let Some(rss) = pt.peak_rss {
        assert!(
            (rss as usize) < pt.gwt_projected * 4,
            "peak RSS {rss} not credibly below a GWT-carrying footprint"
        );
    }
    println!("smoke OK: d = 15 decoded GWT-free, local provider engaged");
}

fn main() {
    let mut smoke_mode = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke_mode = true;
        } else {
            positional.push(arg);
        }
    }
    if smoke_mode {
        smoke();
        return;
    }
    let base: u64 = positional
        .first()
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(20_000);
    let out_path = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| "results/BENCH_local.json".to_string());

    // Per-shot decode cost grows steeply with distance (more rounds, more
    // detectors per shot, larger matchings); scale trials to keep each
    // point in the ~minute range on one host. Smallest distance first so
    // the monotone VmHWM readings attribute per point.
    let schedule = [(15usize, base), (21, base / 4), (31, base / 40)];
    let points: Vec<Point> = schedule
        .into_iter()
        .map(|(d, trials)| measure(d, trials.max(100)))
        .collect();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"p\": {P},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"note\": \"GWT-free local weight path; peak_rss_bytes is the process VmHWM \
         after the point ran (cumulative, measured smallest distance first); \
         gwt_projected_bytes = 13 * detectors^2 is what the table would have cost\","
    );
    json.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"detectors\": {}, \"trials\": {}, \"failures\": {}, \
             \"ler\": {:.6e}, \"wall_s\": {:.3}, \"shots_per_s\": {:.1}, \
             \"gwt_projected_bytes\": {}",
            pt.distance,
            pt.detectors,
            pt.trials,
            pt.failures,
            pt.failures as f64 / pt.trials as f64,
            pt.wall_s,
            pt.trials as f64 / pt.wall_s,
            pt.gwt_projected,
        );
        if let Some(rss) = pt.peak_rss {
            let _ = write!(
                json,
                ", \"peak_rss_bytes\": {rss}, \"rss_over_projection\": {:.4}",
                rss as f64 / pt.gwt_projected as f64
            );
        }
        json.push('}');
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
