//! Wall-clock profiler for the packed easy-tier decode: times each tier
//! (trivial / HW-1 / HW-2 / k ∈ {3, 4} closed forms) on synthetic
//! single-tier tiles — packed path vs the retained per-lane reference —
//! and measures the headline ROADMAP ratio: d ∈ {3, 5} streamed
//! `estimate_ler` throughput against raw packed sampling throughput on
//! the same host. Writes `results/BENCH_easytier.json`.
//!
//! Usage: `profile_easytier [--smoke] [output.json]` — defaults to
//! `results/BENCH_easytier.json`. `--smoke` shrinks the workload for CI
//! and skips the JSON artifact (smoke timings must never overwrite
//! full-size results). Reports min-of-N wall times to shrug off
//! scheduler noise.

use astrea_bench::synthetic_tier_tile;
use astrea_core::pipeline::{decode_tile, decode_tile_reference, StreamOutcome, TileScratch};
use astrea_experiments::{
    estimate_ler_streamed, sample_batch, DecoderFactory, ExperimentContext, PipelineConfig,
};
use blossom_mwpm::MwpmDecoder;
use decoding_graph::DecodeScratch;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const THREADS: usize = 8;

fn min_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

struct TierPoint {
    tier: &'static str,
    packed: Duration,
    per_lane: Duration,
    shots: u64,
}

impl TierPoint {
    fn shots_per_s(&self, t: Duration) -> f64 {
        self.shots as f64 / t.as_secs_f64()
    }

    fn speedup(&self) -> f64 {
        self.per_lane.as_secs_f64() / self.packed.as_secs_f64()
    }
}

/// Times one synthetic single-tier tile through both decode paths,
/// repeated `tiles_per_rep` times per measured rep so short tiers don't
/// vanish under timer noise.
fn measure_tier(
    ctx: &ExperimentContext,
    tier: &'static str,
    hw: usize,
    tile_shots: usize,
    tiles_per_rep: usize,
    reps: usize,
) -> TierPoint {
    let tile = synthetic_tier_tile(ctx, hw, tile_shots, 11 + hw as u64);
    let mut decoder = MwpmDecoder::new(ctx.gwt());
    let mut scratch = DecodeScratch::new();
    let mut ts = TileScratch::new();
    // Warm the screen caches once so both paths price steady state.
    let mut out = StreamOutcome::default();
    decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);

    let packed = min_of(reps, || {
        let mut out = StreamOutcome::default();
        for _ in 0..tiles_per_rep {
            decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
        }
        std::hint::black_box(out);
    });
    let per_lane = min_of(reps, || {
        let mut out = StreamOutcome::default();
        for _ in 0..tiles_per_rep {
            decode_tile_reference(&mut decoder, &mut scratch, &mut ts, &tile, &mut out, None);
        }
        std::hint::black_box(out);
    });
    TierPoint {
        tier,
        packed,
        per_lane,
        shots: (tile_shots * tiles_per_rep) as u64,
    }
}

struct RatioPoint {
    distance: usize,
    p: f64,
    sampling: Duration,
    streamed: Duration,
    trials: u64,
}

impl RatioPoint {
    fn sampling_shots_per_s(&self) -> f64 {
        self.trials as f64 / self.sampling.as_secs_f64()
    }

    fn streamed_shots_per_s(&self) -> f64 {
        self.trials as f64 / self.streamed.as_secs_f64()
    }

    /// Streamed decode throughput as a fraction of raw packed sampling
    /// throughput — the ROADMAP target is ≥ 0.5 (within 2×).
    fn ratio(&self) -> f64 {
        self.streamed_shots_per_s() / self.sampling_shots_per_s()
    }
}

/// Times raw packed sampling vs the full streamed `estimate_ler` at one
/// (d, p) point — the "decode keeps up with the sampler" headline.
fn measure_ratio(distance: usize, p: f64, trials: u64, reps: usize) -> RatioPoint {
    let ctx = ExperimentContext::new(distance, p);
    let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
    let config = PipelineConfig::for_threads(THREADS);
    let sampling = min_of(reps, || {
        std::hint::black_box(sample_batch(&ctx, trials, THREADS, SEED));
    });
    let streamed = min_of(reps, || {
        std::hint::black_box(estimate_ler_streamed(&ctx, trials, SEED, &*factory, config));
    });
    RatioPoint {
        distance,
        p,
        sampling,
        streamed,
        trials,
    }
}

fn main() {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let out_path = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "results/BENCH_easytier.json".to_string());
    let (tile_shots, tiles_per_rep, reps, trials) = if smoke {
        (1024, 2, 1, 5_000u64)
    } else {
        (8192, 8, 5, 200_000u64)
    };

    let ctx = ExperimentContext::new(5, 1e-3);
    let tiers: Vec<TierPoint> = [
        ("trivial", 0usize),
        ("hw1", 1),
        ("hw2", 2),
        ("closed_form_3", 3),
        ("closed_form_4", 4),
    ]
    .into_iter()
    .map(|(tier, hw)| {
        let pt = measure_tier(&ctx, tier, hw, tile_shots, tiles_per_rep, reps);
        println!(
            "{tier:>14}: packed {:.1} Mshots/s, per-lane {:.1} Mshots/s ({:.2}x)",
            pt.shots_per_s(pt.packed) / 1e6,
            pt.shots_per_s(pt.per_lane) / 1e6,
            pt.speedup(),
        );
        pt
    })
    .collect();

    let ratios: Vec<RatioPoint> = [(3usize, 1e-3), (5, 1e-3)]
        .into_iter()
        .map(|(d, p)| {
            let pt = measure_ratio(d, p, trials, reps);
            println!(
                "d={d} p={p:.0e}: sampling {:.1} Mshots/s, streamed decode {:.1} Mshots/s, ratio {:.3}",
                pt.sampling_shots_per_s() / 1e6,
                pt.streamed_shots_per_s() / 1e6,
                pt.ratio(),
            );
            pt
        })
        .collect();

    if smoke {
        // CI gate: the packed path must not lose to the per-lane path on
        // the tiers it packs (generous slack — smoke boxes are noisy).
        for pt in &tiers {
            assert!(
                pt.speedup() > 0.5,
                "packed {} tier regressed past noise: {:.2}x",
                pt.tier,
                pt.speedup()
            );
        }
        println!("smoke OK: packed tiers within expected range");
        return;
    }

    // Hand-rolled JSON: the workspace has no serde and the shape is flat.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"tile_shots\": {tile_shots},");
    let _ = writeln!(json, "  \"ratio_trials\": {trials},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"tiers\": [\n");
    for (i, pt) in tiers.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"tier\": \"{}\", \"packed_shots_per_s\": {:.0}, \
             \"per_lane_shots_per_s\": {:.0}, \"packed_speedup\": {:.3}}}",
            pt.tier,
            pt.shots_per_s(pt.packed),
            pt.shots_per_s(pt.per_lane),
            pt.speedup(),
        );
        json.push_str(if i + 1 < tiers.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sampling_vs_streamed\": [\n");
    for (i, pt) in ratios.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"p\": {}, \"sampling_shots_per_s\": {:.0}, \
             \"streamed_shots_per_s\": {:.0}, \"streamed_over_sampling\": {:.3}}}",
            pt.distance,
            pt.p,
            pt.sampling_shots_per_s(),
            pt.streamed_shots_per_s(),
            pt.ratio(),
        );
        json.push_str(if i + 1 < ratios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
