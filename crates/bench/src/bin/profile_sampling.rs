//! Quick wall-clock profiler behind the `EXPERIMENTS.md` sampling
//! numbers: splits the packed path into raw sampling vs batch
//! conversion, compares against the scalar sampler, and times
//! `estimate_ler` end to end (sample + decode) on both sampling
//! front-ends. Reports min-of-N to shrug off scheduler noise;
//! `cargo bench -p astrea-bench --bench sampling_throughput` has the
//! statistically careful version of the sampling half.

use astrea_experiments::{
    decode_batch_ler, sample_batch, sample_batch_scalar, DecoderFactory, ExperimentContext,
};
use blossom_mwpm::MwpmDecoder;
use qec_circuit::BatchDemSampler;
use std::time::{Duration, Instant};

fn min_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

fn main() {
    let trials: usize = 50_000;
    let ctx = ExperimentContext::new(7, 1e-3);
    let sampler = BatchDemSampler::new(ctx.dem());

    let raw = min_of(7, || {
        std::hint::black_box(sampler.sample(7, trials));
    });
    println!("raw packed sample:   {raw:?}");

    let (det, obs) = sampler.sample(7, trials);
    let conv = min_of(7, || {
        std::hint::black_box(astrea_core::SyndromeBatch::from_packed(&det, &obs));
    });
    println!("from_packed only:    {conv:?}");

    let packed = min_of(7, || {
        std::hint::black_box(sample_batch(&ctx, trials as u64, 1, 7));
    });
    println!("sample_batch (t1):   {packed:?}");

    let scalar = min_of(5, || {
        std::hint::black_box(sample_batch_scalar(&ctx, trials as u64, 1, 7));
    });
    println!("scalar (t1):         {scalar:?}");
    println!(
        "packed/scalar ratio: {:.2}x",
        scalar.as_secs_f64() / packed.as_secs_f64()
    );

    // End-to-end LER estimation: PR 1's batched baseline (scalar
    // sampling feeding the batched decode path) vs the packed front-end.
    let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
    for threads in [1usize, 8] {
        let e2e_scalar = min_of(3, || {
            let batch = sample_batch_scalar(&ctx, trials as u64, threads, 7);
            std::hint::black_box(decode_batch_ler(&ctx, &batch, threads, &*factory));
        });
        let e2e_packed = min_of(3, || {
            std::hint::black_box(astrea_experiments::estimate_ler(
                &ctx,
                trials as u64,
                threads,
                7,
                &*factory,
            ));
        });
        println!(
            "estimate_ler t{threads}: scalar-sampled {e2e_scalar:?}, packed {e2e_packed:?}, {:.2}x",
            e2e_scalar.as_secs_f64() / e2e_packed.as_secs_f64()
        );
    }
}
