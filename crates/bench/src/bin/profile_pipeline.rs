//! Wall-clock profiler for the streaming sampler→decoder pipeline: times
//! the barrier path (`estimate_ler_barrier`: sample everything, then
//! decode everything) against the streamed path (`estimate_ler`: packed
//! tiles over a bounded channel into screening consumers) per `(d, p)`
//! point, asserts the two are bit-identical, and writes the numbers to
//! `results/BENCH_pipeline.json` plus the per-stage hard-path breakdown
//! (screen / closed form / cache / DP / sparse-blossom shot counters and
//! the speedup over the pre-hard-path baseline) to
//! `results/BENCH_hardpath.json`, and the deep-tail before/after table
//! (streamed wall time vs the PR 4 tip, which still staged a dense
//! blossom matrix per deep shot) to `results/BENCH_deeptail.json` for
//! `EXPERIMENTS.md`.
//!
//! Usage: `profile_pipeline [--smoke] [trials] [output.json]` — defaults
//! to 50 000 trials and `results/BENCH_pipeline.json`. `--smoke` runs a
//! small CI check (2 000 trials, single rep) that asserts every
//! hard-path stage actually absorbed shots and skips the JSON artifacts
//! (smoke timings must never overwrite full-size results). Reports
//! min-of-N wall times to shrug off scheduler noise.

use astrea_experiments::{
    estimate_ler_barrier, estimate_ler_streamed, estimate_ler_streamed_counted, DecoderFactory,
    ExperimentContext, PipelineConfig, PipelineCounters,
};
use blossom_mwpm::MwpmDecoder;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const THREADS: usize = 8;

/// Streamed/barrier wall times measured at the PR 3 tip (commit
/// `030eeed`, 50 000 trials, this benchmark, same host class) — the
/// "before" column for the hard-path tail reduction. Only attached to
/// full-size runs; a smoke run's times are not comparable.
const BASELINE_MS: [(usize, f64, f64, f64); 4] = [
    (3, 1e-3, 0.718, 1.917),
    (5, 1e-3, 3.125, 4.403),
    (7, 1e-3, 13.657, 14.492),
    (7, 5e-3, 612.476, 646.311),
];
const BASELINE_TRIALS: u64 = 50_000;

/// Streamed wall times measured at the PR 4 tip (commit `29f22f4`,
/// 50 000 trials, this benchmark, same host class) — the "before" column
/// for the sparse-blossom deep-tail rewrite. At that tip every shot with
/// hard weight above the DP crossover still allocated and filled a dense
/// `(2n+1)²` blossom matrix; the sparse scratch solver removes that
/// per-shot staging.
const BASELINE_PR4_MS: [(usize, f64, f64); 4] = [
    (3, 1e-3, 0.760),
    (5, 1e-3, 2.940),
    (7, 1e-3, 10.224),
    (7, 5e-3, 502.446),
];

fn min_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

struct Point {
    distance: usize,
    p: f64,
    barrier: Duration,
    streamed: Duration,
    trials: u64,
    counters: PipelineCounters,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.barrier.as_secs_f64() / self.streamed.as_secs_f64()
    }

    fn shots_per_s(&self, t: Duration) -> f64 {
        self.trials as f64 / t.as_secs_f64()
    }

    /// Baseline streamed wall time for this point, when comparable.
    fn baseline_streamed_ms(&self) -> Option<f64> {
        if self.trials != BASELINE_TRIALS {
            return None;
        }
        BASELINE_MS
            .iter()
            .find(|(d, p, ..)| *d == self.distance && *p == self.p)
            .map(|(_, _, streamed, _)| *streamed)
    }

    /// PR 4 (dense deep-tail) streamed wall time for this point, when
    /// comparable.
    fn baseline_pr4_ms(&self) -> Option<f64> {
        if self.trials != BASELINE_TRIALS {
            return None;
        }
        BASELINE_PR4_MS
            .iter()
            .find(|(d, p, _)| *d == self.distance && *p == self.p)
            .map(|(_, _, streamed)| *streamed)
    }
}

fn measure(distance: usize, p: f64, trials: u64, reps: usize) -> Point {
    let ctx = ExperimentContext::new(distance, p);
    let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
    let config = PipelineConfig::for_threads(THREADS);

    // Exactness first: the streamed run must reproduce the barrier run
    // bit-for-bit before its timing means anything. The same run yields
    // the per-stage counters (they are deterministic in the shot stream,
    // so any rep would report the same values).
    let reference = estimate_ler_barrier(&ctx, trials, THREADS, SEED, &*factory);
    let (streamed_result, counters) =
        estimate_ler_streamed_counted(&ctx, trials, SEED, &*factory, config);
    assert_eq!(
        streamed_result, reference,
        "streamed result diverged from barrier at d={distance} p={p}"
    );

    let barrier = min_of(reps, || {
        std::hint::black_box(estimate_ler_barrier(&ctx, trials, THREADS, SEED, &*factory));
    });
    let streamed = min_of(reps, || {
        std::hint::black_box(estimate_ler_streamed(&ctx, trials, SEED, &*factory, config));
    });
    Point {
        distance,
        p,
        barrier,
        streamed,
        trials,
        counters,
    }
}

fn counters_json(c: &PipelineCounters) -> String {
    format!(
        "{{\"shots_screened\": {}, \"trivial\": {}, \"hw1\": {}, \"hw2\": {}, \
         \"closed_form\": {}, \"hard_cache_hits\": {}, \"hard_cache_misses\": {}, \
         \"dp\": {}, \"sparse_blossom\": {}, \"hw1_key_lookups\": {}, \
         \"hw2_key_lookups\": {}}}",
        c.shots_screened,
        c.trivial_shots,
        c.hw1_shots,
        c.hw2_shots,
        c.closed_form_shots,
        c.hard_cache_hits,
        c.hard_cache_misses,
        c.dp_shots,
        c.sparse_blossom_shots,
        c.hw1_key_lookups,
        c.hw2_key_lookups,
    )
}

fn write_json(path: &str, json: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(path, json).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let mut smoke = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            positional.push(arg);
        }
    }
    let trials: u64 = positional
        .first()
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(if smoke { 2_000 } else { 50_000 });
    let out_path = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let hardpath_out = std::path::Path::new(&out_path)
        .with_file_name("BENCH_hardpath.json")
        .to_string_lossy()
        .into_owned();
    let deeptail_out = std::path::Path::new(&out_path)
        .with_file_name("BENCH_deeptail.json")
        .to_string_lossy()
        .into_owned();
    let reps = if smoke {
        1
    } else if trials >= 20_000 {
        5
    } else {
        3
    };

    let points: Vec<Point> = [(3usize, 1e-3), (5, 1e-3), (7, 1e-3), (7, 5e-3)]
        .into_iter()
        .map(|(d, p)| {
            let pt = measure(d, p, trials, reps);
            println!(
                "d={d} p={p:.0e}: barrier {:?}, streamed {:?}, {:.2}x ({:.0} shots/s streamed)",
                pt.barrier,
                pt.streamed,
                pt.speedup(),
                pt.shots_per_s(pt.streamed),
            );
            let c = &pt.counters;
            println!(
                "  stages: trivial {} | hw1 {} | hw2 {} | closed-form {} | cache {}/{} | dp {} | sparse-blossom {}",
                c.trivial_shots,
                c.hw1_shots,
                c.hw2_shots,
                c.closed_form_shots,
                c.hard_cache_hits,
                c.hard_cache_hits + c.hard_cache_misses,
                c.dp_shots,
                c.sparse_blossom_shots,
            );
            pt
        })
        .collect();

    if smoke {
        // CI gate: every hard-path stage must have absorbed shots, the
        // screen must have accounted for every trial at every point, and
        // the per-tier counters must still partition the stream with the
        // packed easy tier live.
        let mut total = PipelineCounters::default();
        for pt in &points {
            assert_eq!(
                pt.counters.shots_screened, pt.trials,
                "screen missed shots at d={} p={}",
                pt.distance, pt.p
            );
            assert_eq!(
                pt.counters.tier_sum(),
                pt.counters.shots_screened,
                "tier counters do not sum to shots_screened at d={} p={}: {:?}",
                pt.distance,
                pt.p,
                pt.counters
            );
            total.merge(&pt.counters);
        }
        assert!(total.trivial_shots > 0, "no trivial shots screened");
        assert!(total.hw1_shots > 0, "HW-1 lookup stage idle");
        assert!(total.hw2_shots > 0, "HW-2 lookup stage idle");
        assert!(total.closed_form_shots > 0, "closed-form stage idle");
        assert!(
            total.hard_cache_hits + total.hard_cache_misses > 0,
            "hard-syndrome cache never consulted"
        );
        assert!(total.dp_shots > 0, "subset-DP stage idle");
        assert!(
            total.sparse_blossom_shots > 0,
            "sparse-blossom deep-tail stage idle"
        );
        // Packed easy tier: keys must resolve (the bit-sliced path is
        // live) and dedupe at most one probe per easy shot.
        assert!(
            total.hw1_key_lookups > 0 && total.hw1_key_lookups <= total.hw1_shots,
            "packed HW-1 key resolution inconsistent: {total:?}"
        );
        assert!(
            total.hw2_key_lookups > 0 && total.hw2_key_lookups <= total.hw2_shots,
            "packed HW-2 key resolution inconsistent: {total:?}"
        );
        // Local weight path: a forced GWT-free context must engage the
        // staged provider (non-idle stage/expansion counters) and
        // reproduce the table-backed predictions bit-for-bit.
        {
            use astrea_core::decode_slice;
            use decoding_graph::{DecodeScratch, WeightSource};
            let gctx = ExperimentContext::new(5, 2e-3);
            let lctx = ExperimentContext::with_source(5, 2e-3, WeightSource::Local);
            assert!(
                lctx.decoding().try_gwt().is_none(),
                "forced-local context built a GWT"
            );
            let batch = astrea_experiments::sample_batch(&gctx, 4_000, THREADS, SEED);
            let mut g = MwpmDecoder::for_context(gctx.decoding());
            let mut l = MwpmDecoder::for_context(lctx.decoding());
            let mut sg = DecodeScratch::new();
            let mut sl = DecodeScratch::new();
            let rg = decode_slice(&mut g, &mut sg, &batch, 0..batch.len());
            let rl = decode_slice(&mut l, &mut sl, &batch, 0..batch.len());
            assert_eq!(
                rg.predictions, rl.predictions,
                "local path diverged from GWT path"
            );
            let stats = l
                .local_stats()
                .expect("local decoder on a GWT-free context");
            assert!(
                stats.stages > 0 && stats.expansions > 0,
                "local weight stage idle: {stats:?}"
            );
            println!(
                "smoke OK: local weight path engaged ({} stages, {} expansions, {} memo hits)",
                stats.stages, stats.expansions, stats.memo_hits
            );

            // On-demand deep tail: a hot GWT-free stream must reach the
            // deep tier and stage it on-demand, and the engine's work
            // must be visible through the pipeline counters (not just
            // the provider) — landmark/deadline exclusions included.
            let hot = ExperimentContext::with_source(5, 2e-2, WeightSource::Local);
            let local_factory: Box<DecoderFactory> =
                Box::new(|c| Box::new(MwpmDecoder::for_context(c.decoding())));
            let (_, lc) = estimate_ler_streamed_counted(
                &hot,
                2_000,
                SEED,
                &*local_factory,
                PipelineConfig::for_threads(THREADS),
            );
            assert!(
                !lc.ondemand.is_idle(),
                "on-demand staging idle on a hot GWT-free stream: {:?}",
                lc.ondemand
            );
            assert!(
                lc.ondemand.collisions > 0 && lc.ondemand.settled > 0,
                "on-demand staging did no graph work: {:?}",
                lc.ondemand
            );
            assert!(
                lc.ondemand.deadline_pruned + lc.ondemand.excluded > 0,
                "on-demand staging never certified a pair dominated: {:?}",
                lc.ondemand
            );
            assert!(
                !lc.local_weights.is_idle() || !lc.ondemand.is_idle(),
                "local provider invisible to the pipeline counters"
            );
            println!(
                "smoke OK: on-demand deep tail engaged through the pipeline ({} stages, \
                 {} regions, {} settled, {} collisions, {} pruned, {} excluded)",
                lc.ondemand.stages,
                lc.ondemand.regions,
                lc.ondemand.settled,
                lc.ondemand.collisions,
                lc.ondemand.deadline_pruned,
                lc.ondemand.excluded,
            );
        }
        println!("smoke OK: all hard-path stages absorbed shots");
        // Don't clobber the published full-size artifacts with
        // smoke-sized timings.
        return;
    }

    // Hand-rolled JSON: the workspace has no serde and the shape is flat.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"p\": {}, \"barrier_ms\": {:.3}, \"streamed_ms\": {:.3}, \
             \"speedup\": {:.3}, \"barrier_shots_per_s\": {:.0}, \"streamed_shots_per_s\": {:.0}}}",
            pt.distance,
            pt.p,
            pt.barrier.as_secs_f64() * 1e3,
            pt.streamed.as_secs_f64() * 1e3,
            pt.speedup(),
            pt.shots_per_s(pt.barrier),
            pt.shots_per_s(pt.streamed),
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json(&out_path, &json);

    // Hard-path breakdown: per-stage shot counters plus the tail
    // reduction against the pre-hard-path baseline (when comparable).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"baseline\": \"PR 3 tip (030eeed), {BASELINE_TRIALS} trials, same benchmark\","
    );
    json.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"p\": {}, \"streamed_ms\": {:.3}",
            pt.distance,
            pt.p,
            pt.streamed.as_secs_f64() * 1e3,
        );
        if let Some(base) = pt.baseline_streamed_ms() {
            let _ = write!(
                json,
                ", \"baseline_streamed_ms\": {:.3}, \"speedup_vs_baseline\": {:.3}",
                base,
                base / (pt.streamed.as_secs_f64() * 1e3),
            );
        }
        let _ = write!(json, ", \"counters\": {}}}", counters_json(&pt.counters));
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json(&hardpath_out, &json);

    // Deep-tail before/after: streamed wall time against the PR 4 tip,
    // whose deep band (k above the DP crossover) still staged a dense
    // blossom matrix per shot.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(
        json,
        "  \"baseline\": \"PR 4 tip (29f22f4), {BASELINE_TRIALS} trials, dense deep-tail blossom\","
    );
    json.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"p\": {}, \"streamed_ms\": {:.3}",
            pt.distance,
            pt.p,
            pt.streamed.as_secs_f64() * 1e3,
        );
        if let Some(base) = pt.baseline_pr4_ms() {
            let _ = write!(
                json,
                ", \"baseline_pr4_streamed_ms\": {:.3}, \"speedup_vs_pr4\": {:.3}",
                base,
                base / (pt.streamed.as_secs_f64() * 1e3),
            );
        }
        let _ = write!(json, ", \"counters\": {}}}", counters_json(&pt.counters));
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    write_json(&deeptail_out, &json);
}
