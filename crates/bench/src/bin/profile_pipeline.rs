//! Wall-clock profiler for the streaming sampler→decoder pipeline: times
//! the barrier path (`estimate_ler_barrier`: sample everything, then
//! decode everything) against the streamed path (`estimate_ler`: packed
//! tiles over a bounded channel into screening consumers) per `(d, p)`
//! point, asserts the two are bit-identical, and writes the numbers to
//! `results/BENCH_pipeline.json` for `EXPERIMENTS.md`.
//!
//! Usage: `profile_pipeline [trials] [output.json]` — pass a small trial
//! count (e.g. `2000`) for a CI smoke run; defaults to 50 000 trials and
//! `results/BENCH_pipeline.json`. Reports min-of-N wall times to shrug
//! off scheduler noise.

use astrea_experiments::{
    estimate_ler_barrier, estimate_ler_streamed, DecoderFactory, ExperimentContext, PipelineConfig,
};
use blossom_mwpm::MwpmDecoder;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const THREADS: usize = 8;

fn min_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

struct Point {
    distance: usize,
    p: f64,
    barrier: Duration,
    streamed: Duration,
    trials: u64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.barrier.as_secs_f64() / self.streamed.as_secs_f64()
    }

    fn shots_per_s(&self, t: Duration) -> f64 {
        self.trials as f64 / t.as_secs_f64()
    }
}

fn measure(distance: usize, p: f64, trials: u64, reps: usize) -> Point {
    let ctx = ExperimentContext::new(distance, p);
    let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
    let config = PipelineConfig::for_threads(THREADS);

    // Exactness first: the streamed run must reproduce the barrier run
    // bit-for-bit before its timing means anything.
    let reference = estimate_ler_barrier(&ctx, trials, THREADS, SEED, &*factory);
    let streamed_result = estimate_ler_streamed(&ctx, trials, SEED, &*factory, config);
    assert_eq!(
        streamed_result, reference,
        "streamed result diverged from barrier at d={distance} p={p}"
    );

    let barrier = min_of(reps, || {
        std::hint::black_box(estimate_ler_barrier(&ctx, trials, THREADS, SEED, &*factory));
    });
    let streamed = min_of(reps, || {
        std::hint::black_box(estimate_ler_streamed(&ctx, trials, SEED, &*factory, config));
    });
    Point {
        distance,
        p,
        barrier,
        streamed,
        trials,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: u64 = args
        .next()
        .map(|a| a.parse().expect("trials must be an integer"))
        .unwrap_or(50_000);
    let out_path = args
        .next()
        .unwrap_or_else(|| "results/BENCH_pipeline.json".to_string());
    let reps = if trials >= 20_000 { 5 } else { 3 };

    let points: Vec<Point> = [(3usize, 1e-3), (5, 1e-3), (7, 1e-3), (7, 5e-3)]
        .into_iter()
        .map(|(d, p)| {
            let pt = measure(d, p, trials, reps);
            println!(
                "d={d} p={p:.0e}: barrier {:?}, streamed {:?}, {:.2}x ({:.0} shots/s streamed)",
                pt.barrier,
                pt.streamed,
                pt.speedup(),
                pt.shots_per_s(pt.streamed),
            );
            pt
        })
        .collect();

    // Hand-rolled JSON: the workspace has no serde and the shape is flat.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"distance\": {}, \"p\": {}, \"barrier_ms\": {:.3}, \"streamed_ms\": {:.3}, \
             \"speedup\": {:.3}, \"barrier_shots_per_s\": {:.0}, \"streamed_shots_per_s\": {:.0}}}",
            pt.distance,
            pt.p,
            pt.barrier.as_secs_f64() * 1e3,
            pt.streamed.as_secs_f64() * 1e3,
            pt.speedup(),
            pt.shots_per_s(pt.barrier),
            pt.shots_per_s(pt.streamed),
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
