//! Astrea-G design-space ablation (paper §7.1's `F`/`E` discussion and
//! §7.3's weight-threshold sweep): how fetch width, queue capacity, and
//! the filter threshold move the greedy pipeline's software cost.
//!
//! The accuracy side of the same ablation is produced by
//! `astrea-exp fig13`.

use astrea_bench::SyndromeCorpus;
use astrea_core::{AstreaGConfig, AstreaGDecoder};
use astrea_experiments::ExperimentContext;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoding_graph::Decoder;
use std::hint::black_box;

fn high_weight_set(ctx: &ExperimentContext) -> Vec<Vec<u32>> {
    SyndromeCorpus::sample(ctx, 4000, 11)
        .with_weight(11, 24)
        .into_iter()
        .take(32)
        .cloned()
        .collect()
}

fn bench_fetch_width(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let set = high_weight_set(&ctx);
    assert!(!set.is_empty(), "need high-Hamming-weight syndromes");
    let mut group = c.benchmark_group("astrea_g_fetch_width");
    group.sample_size(30);
    for f in [1usize, 2, 4] {
        let config = AstreaGConfig {
            fetch_width: f,
            ..AstreaGConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(f), &set, |b, set| {
            let mut dec = AstreaGDecoder::with_config(ctx.gwt(), config);
            b.iter(|| {
                for s in set {
                    black_box(dec.decode(black_box(s)));
                }
            })
        });
    }
    group.finish();
}

fn bench_queue_capacity(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let set = high_weight_set(&ctx);
    let mut group = c.benchmark_group("astrea_g_queue_capacity");
    group.sample_size(30);
    for e in [4usize, 8, 16] {
        let config = AstreaGConfig {
            queue_capacity: e,
            ..AstreaGConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(e), &set, |b, set| {
            let mut dec = AstreaGDecoder::with_config(ctx.gwt(), config);
            b.iter(|| {
                for s in set {
                    black_box(dec.decode(black_box(s)));
                }
            })
        });
    }
    group.finish();
}

fn bench_weight_threshold(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let set = high_weight_set(&ctx);
    let mut group = c.benchmark_group("astrea_g_weight_threshold");
    group.sample_size(30);
    for wth in [4.0f64, 6.0, 7.0, 8.0] {
        let config = AstreaGConfig {
            weight_threshold: wth,
            ..AstreaGConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(wth), &set, |b, set| {
            let mut dec = AstreaGDecoder::with_config(ctx.gwt(), config);
            b.iter(|| {
                for s in set {
                    black_box(dec.decode(black_box(s)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fetch_width,
    bench_queue_capacity,
    bench_weight_threshold
);
criterion_main!(benches);
