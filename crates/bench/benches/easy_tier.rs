//! Easy-tier decode throughput: the packed bit-sliced path against the
//! retained per-lane reference, one tier at a time.
//!
//! Each workload is a synthetic tile whose every shot sits in exactly
//! one tier — trivial (HW 0), HW-1, HW-2, or the k ∈ {3, 4} closed
//! forms — so the ratio between the `packed` and `per_lane` series is
//! the isolated win of keeping that tier in the packed domain: per-key
//! cache resolution + plane-XOR failure accounting for HW ≤ 2, and
//! same-weight batched GWT gathers for the closed forms. Both paths are
//! bit-identical (enforced by `tests/easy_tier_equivalence.rs`); this
//! bench only prices them.

use astrea_bench::synthetic_tier_tile;
use astrea_core::pipeline::{decode_tile, decode_tile_reference, StreamOutcome, TileScratch};
use astrea_experiments::ExperimentContext;
use blossom_mwpm::MwpmDecoder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoding_graph::DecodeScratch;
use std::hint::black_box;

const TILE_SHOTS: usize = 8192;

fn bench_easy_tiers(c: &mut Criterion) {
    let ctx = ExperimentContext::new(5, 1e-3);
    let mut group = c.benchmark_group("easy_tier");
    group.sample_size(30);
    group.throughput(Throughput::Elements(TILE_SHOTS as u64));
    for (tier, hw) in [
        ("trivial", 0usize),
        ("hw1", 1),
        ("hw2", 2),
        ("cf3", 3),
        ("cf4", 4),
    ] {
        let tile = synthetic_tier_tile(&ctx, hw, TILE_SHOTS, 11 + hw as u64);
        group.bench_with_input(BenchmarkId::new("packed", tier), &tile, |b, tile| {
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            b.iter(|| {
                let mut out = StreamOutcome::default();
                decode_tile(&mut decoder, &mut scratch, &mut ts, tile, &mut out);
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("per_lane", tier), &tile, |b, tile| {
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            b.iter(|| {
                let mut out = StreamOutcome::default();
                decode_tile_reference(&mut decoder, &mut scratch, &mut ts, tile, &mut out, None);
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_easy_tiers);
criterion_main!(benches);
