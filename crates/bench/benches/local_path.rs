//! GWT-free local weight path throughput: the staged per-shot Dijkstra
//! provider against the precomputed Global Weight Table, on identical
//! shot streams.
//!
//! At d ≤ 13 both backends exist, so the `gwt`/`local` ratio prices what
//! the table's O(ℓ²) memory actually buys per shot; the `d15` series has
//! no GWT comparison — at that distance the table would be ~40 MB and the
//! local path is the only one that runs. Both backends are bit-identical
//! (enforced by `tests/local_vs_gwt.rs`); this bench only prices them.

use astrea_core::decode_slice;
use astrea_experiments::{sample_batch, ExperimentContext};
use blossom_mwpm::MwpmDecoder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoding_graph::{DecodeScratch, WeightSource};
use std::hint::black_box;

const SHOTS: u64 = 4096;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_path");
    group.sample_size(20);
    group.throughput(Throughput::Elements(SHOTS));
    for (d, p) in [(5usize, 1e-3), (7, 5e-3)] {
        let gctx = ExperimentContext::with_source(d, p, WeightSource::Gwt);
        let lctx = ExperimentContext::with_source(d, p, WeightSource::Local);
        let batch = sample_batch(&gctx, SHOTS, 4, 11);
        let label = format!("d{d}_p{p:.0e}");
        group.bench_with_input(BenchmarkId::new("gwt", &label), &batch, |b, batch| {
            let mut decoder = MwpmDecoder::for_context(gctx.decoding());
            let mut scratch = DecodeScratch::new();
            b.iter(|| {
                black_box(decode_slice(
                    &mut decoder,
                    &mut scratch,
                    batch,
                    0..batch.len(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("local", &label), &batch, |b, batch| {
            let mut decoder = MwpmDecoder::for_context(lctx.decoding());
            let mut scratch = DecodeScratch::new();
            b.iter(|| {
                black_box(decode_slice(
                    &mut decoder,
                    &mut scratch,
                    batch,
                    0..batch.len(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_large_distance(c: &mut Criterion) {
    // The distance the GWT cannot reach under the auto budget: only the
    // local series exists. Fewer shots — each carries ~25 fired
    // detectors through staged expansions.
    const D15_SHOTS: u64 = 256;
    let ctx = ExperimentContext::new(15, 1e-3);
    assert_eq!(ctx.weight_source(), WeightSource::Local);
    let batch = sample_batch(&ctx, D15_SHOTS, 4, 11);
    let mut group = c.benchmark_group("local_path");
    group.sample_size(10);
    group.throughput(Throughput::Elements(D15_SHOTS));
    group.bench_with_input(
        BenchmarkId::new("local", "d15_p1e-3"),
        &batch,
        |b, batch| {
            let mut decoder = MwpmDecoder::for_context(ctx.decoding());
            let mut scratch = DecodeScratch::new();
            b.iter(|| {
                black_box(decode_slice(
                    &mut decoder,
                    &mut scratch,
                    batch,
                    0..batch.len(),
                ))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_backends, bench_large_distance);
criterion_main!(benches);
