//! Decoder latency by Hamming-weight class (paper Figure 9 and the
//! Astrea §5.4 latency bands), measured as wall-clock software time and
//! cross-checked against the hardware cycle model.
//!
//! The hardware claims (1 ns mean, 456 ns worst case) come from the cycle
//! model — asserted in `tests/latency_contracts.rs`; this bench shows the
//! *software* cost of each decoder on identical syndromes, which is what
//! a simulator user experiences. Each class decodes through the shared
//! [`decode_slice`] batch loop with a reused scratch arena, i.e. exactly
//! the hot path `BatchDecoder` workers run.

use astrea_bench::SyndromeCorpus;
use astrea_core::{decode_slice, AstreaDecoder, AstreaGDecoder, SyndromeBatch};
use astrea_experiments::ExperimentContext;
use blossom_mwpm::MwpmDecoder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoding_graph::{DecodeScratch, Decoder};
use std::hint::black_box;
use union_find_decoder::UnionFindDecoder;

/// Packs a weight-class slice of the corpus into a batch.
fn class_batch(corpus: &SyndromeCorpus, lo: usize, hi: usize, cap: usize) -> SyndromeBatch {
    let mut builder = SyndromeBatch::builder();
    for s in corpus.with_weight(lo, hi).into_iter().take(cap) {
        builder.push(s, 0);
    }
    builder.finish()
}

fn bench_by_weight_class(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let corpus = SyndromeCorpus::sample(&ctx, 3000, 7);

    let mut group = c.benchmark_group("decode_by_hw_class");
    group.sample_size(30);
    for (label, lo, hi) in [
        ("hw_1_2", 1, 2),
        ("hw_3_6", 3, 6),
        ("hw_7_10", 7, 10),
        ("hw_11_20", 11, 20),
    ] {
        let batch = class_batch(&corpus, lo, hi, 64);
        if batch.is_empty() {
            continue;
        }
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(BenchmarkId::new("astrea", label), &batch, |b, batch| {
            let mut dec = AstreaDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            b.iter(|| black_box(decode_slice(&mut dec, &mut scratch, batch, 0..batch.len())))
        });
        group.bench_with_input(BenchmarkId::new("astrea_g", label), &batch, |b, batch| {
            let mut dec = AstreaGDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            b.iter(|| black_box(decode_slice(&mut dec, &mut scratch, batch, 0..batch.len())))
        });
        group.bench_with_input(BenchmarkId::new("mwpm", label), &batch, |b, batch| {
            let mut dec = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            b.iter(|| black_box(decode_slice(&mut dec, &mut scratch, batch, 0..batch.len())))
        });
        group.bench_with_input(BenchmarkId::new("union_find", label), &batch, |b, batch| {
            let mut dec = UnionFindDecoder::new(ctx.graph());
            let mut scratch = DecodeScratch::new();
            b.iter(|| black_box(decode_slice(&mut dec, &mut scratch, batch, 0..batch.len())))
        });
    }
    group.finish();
}

fn bench_modeled_cycles(c: &mut Criterion) {
    // The cycle model itself (used millions of times per LER run) must be
    // fast; also prints the paper's cycle counts for visibility.
    let ctx = ExperimentContext::new(7, 1e-4);
    let mut group = c.benchmark_group("astrea_cycle_bands");
    group.sample_size(30);
    for hw in [4usize, 8, 10] {
        let dets = SyndromeCorpus::synthetic(&ctx, hw);
        group.bench_with_input(BenchmarkId::from_parameter(hw), &dets, |b, dets| {
            let mut dec = AstreaDecoder::new(ctx.gwt());
            b.iter(|| black_box(dec.decode(black_box(dets))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_weight_class, bench_modeled_cycles);
criterion_main!(benches);
