//! Software MWPM latency versus syndrome weight (paper Figure 3).
//!
//! The paper's argument: software MWPM (BlossomV) has an unbounded,
//! workload-dependent latency tail — 96% of nonzero d = 7 syndromes took
//! longer than the 1 µs budget on their setup. This bench measures the
//! two exact algorithms in this workspace (subset DP and dense blossom)
//! across Hamming weights, exposing the same super-linear growth that
//! makes a fixed-latency hardware design attractive.

use astrea_bench::SyndromeCorpus;
use astrea_experiments::ExperimentContext;
use blossom_mwpm::{dense_blossom, subset_dp, LocalMwpmDecoder, MwpmDecoder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exact_solvers_by_weight(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let mut group = c.benchmark_group("exact_mwpm_by_weight");
    group.sample_size(20);
    for hw in [4usize, 8, 12, 16, 20, 24] {
        let dets = SyndromeCorpus::synthetic(&ctx, hw);
        let gwt = ctx.gwt();
        if hw <= 16 {
            group.bench_with_input(BenchmarkId::new("subset_dp", hw), &dets, |b, dets| {
                b.iter(|| {
                    black_box(subset_dp::solve(
                        dets.len(),
                        |i, j| gwt.pair_weight(dets[i], dets[j]).min(1e4),
                        |i| gwt.boundary_weight(dets[i]),
                    ))
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("blossom", hw), &dets, |b, dets| {
            let n = dets.len() + dets.len() % 2;
            b.iter(|| {
                black_box(dense_blossom::min_weight_perfect_matching(n, |i, j| {
                    let w = |x: usize| -> f64 {
                        if x >= dets.len() {
                            0.0
                        } else {
                            gwt.boundary_weight(dets[x]).min(1e4)
                        }
                    };
                    if i >= dets.len() || j >= dets.len() {
                        (w(i.min(j)) * 1024.0) as i64 + 1
                    } else {
                        (gwt.pair_weight(dets[i], dets[j]).min(1e4) * 1024.0) as i64 + 1
                    }
                }))
            })
        });
    }
    group.finish();
}

fn bench_full_decoder_on_sampled_stream(c: &mut Criterion) {
    // End-to-end software decode throughput over a realistic syndrome
    // stream — the quantity that would have to beat 1 µs per round for
    // real-time software decoding.
    let ctx = ExperimentContext::new(7, 1e-3);
    let corpus = SyndromeCorpus::sample(&ctx, 512, 3);
    let mut group = c.benchmark_group("software_stream");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(
        corpus.syndromes.len() as u64
    ));
    group.bench_function("mwpm_d7_p1e-3", |b| {
        let dec = MwpmDecoder::new(ctx.gwt());
        b.iter(|| {
            for s in &corpus.syndromes {
                black_box(dec.decode_full(black_box(s)));
            }
        })
    });
    group.bench_function("local_mwpm_d7_p1e-3", |b| {
        let mut dec = LocalMwpmDecoder::new(ctx.graph());
        b.iter(|| {
            for s in &corpus.syndromes {
                black_box(dec.decode_full(black_box(s)));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_solvers_by_weight,
    bench_full_decoder_on_sampled_stream
);
criterion_main!(benches);
