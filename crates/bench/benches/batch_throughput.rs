//! Per-shot vs batched decode throughput (the tentpole claim of the
//! batch engine).
//!
//! Both arms decode an identical pre-sampled stream of syndrome batches
//! with the same decoder (software MWPM) and the same parallelism:
//!
//! * `per_shot` — the pre-batch architecture: worker threads are spawned
//!   per request, each builds a fresh decoder, and every shot decodes
//!   through [`Decoder::decode`], allocating its working memory per call.
//! * `batched` — a persistent [`BatchDecoder`] pool: workers, decoder
//!   instances, and scratch arenas are created once and fed every request
//!   over channels.
//!
//! Throughput is reported in shots per second over the whole stream, so
//! the two arms are directly comparable; `EXPERIMENTS.md` records the
//! measured ratios.

use astrea_core::{BatchDecoder, BatchDecoderFactory, SyndromeBatch};
use astrea_experiments::{sample_batch, ExperimentContext};
use blossom_mwpm::MwpmDecoder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoding_graph::{Decoder, DecodingContext};
use std::hint::black_box;
use std::sync::Arc;

/// Worker threads for both arms.
const THREADS: usize = 8;
/// Requests (batches) per stream.
const REQUESTS: usize = 16;
/// Shots per request.
const BATCH_SHOTS: u64 = 512;

/// Builds the request stream for one `(d, p)` point: `REQUESTS` batches
/// of `BATCH_SHOTS` shots each, deterministically sampled.
fn request_stream(ctx: &ExperimentContext) -> Vec<SyndromeBatch> {
    (0..REQUESTS)
        .map(|r| sample_batch(ctx, BATCH_SHOTS, THREADS, r as u64))
        .collect()
}

/// The pre-batch architecture: spawn workers per request, fresh decoder
/// per worker, allocating `decode` per shot. Returns the failure count so
/// the work cannot be optimized away.
fn per_shot_decode(ctx: &ExperimentContext, batch: &SyndromeBatch) -> u64 {
    let n = batch.len();
    let chunk = n.div_ceil(THREADS).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            handles.push(scope.spawn(move || {
                let mut dec = MwpmDecoder::new(ctx.gwt());
                let mut failures = 0u64;
                for i in start..end {
                    let p = dec.decode(batch.detectors(i));
                    failures += u64::from(p.observables != batch.observables(i));
                }
                failures
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("per-shot worker panicked"))
            .sum()
    })
}

fn bench_batch_vs_per_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(15);
    group.throughput(Throughput::Elements(REQUESTS as u64 * BATCH_SHOTS));
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let stream = request_stream(&ctx);

        group.bench_with_input(
            BenchmarkId::new("per_shot", format!("d{d}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut failures = 0u64;
                    for batch in stream {
                        failures += per_shot_decode(&ctx, batch);
                    }
                    black_box(failures)
                })
            },
        );

        let pool_ctx = Arc::new(ctx.decoding().clone());
        let factory: Arc<BatchDecoderFactory> =
            Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>);
        group.bench_with_input(
            BenchmarkId::new("batched", format!("d{d}")),
            &stream,
            |b, stream| {
                let mut pool =
                    BatchDecoder::new(Arc::clone(&pool_ctx), THREADS, Arc::clone(&factory));
                b.iter(|| {
                    let mut failures = 0u64;
                    for batch in stream {
                        failures += pool.decode_batch(batch).failures;
                    }
                    black_box(failures)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_per_shot);
criterion_main!(benches);
