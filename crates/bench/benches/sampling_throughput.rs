//! Scalar vs bit-packed syndrome-sampling throughput (the tentpole claim
//! of the word-parallel sampling layer).
//!
//! Both arms produce a complete [`astrea_core::SyndromeBatch`] for the
//! same `(d, p)` point and trial count, so the numbers are end-to-end
//! sampling throughput (RNG + trigger generation + sparse-list
//! materialization), directly comparable in shots per second:
//!
//! * `scalar` — the pre-packed architecture: one fresh RNG and one
//!   `DemSampler::sample_into` call per shot.
//! * `packed` — the word-parallel `BatchDemSampler`: 64 shots per `u64`
//!   word, geometric skip-sampling over the mechanism-major trial space,
//!   word-level screening of trivial shots during batch conversion.
//!
//! Each arm runs single-threaded and with 8 threads; `EXPERIMENTS.md`
//! records the measured ratios.

use astrea_experiments::{sample_batch, sample_batch_scalar, ExperimentContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Trials per sampled batch.
const TRIALS: u64 = 50_000;

fn bench_sampling_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRIALS));
    for d in [3usize, 5, 7] {
        for p in [1e-3, 5e-3] {
            let ctx = ExperimentContext::new(d, p);
            let point = format!("d{d}_p{p:.0e}");
            for threads in [1usize, 8] {
                group.bench_function(
                    BenchmarkId::new(format!("scalar_t{threads}"), &point),
                    |b| b.iter(|| black_box(sample_batch_scalar(&ctx, TRIALS, threads, 7)).len()),
                );
                group.bench_function(
                    BenchmarkId::new(format!("packed_t{threads}"), &point),
                    |b| b.iter(|| black_box(sample_batch(&ctx, TRIALS, threads, 7)).len()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_throughput);
criterion_main!(benches);
