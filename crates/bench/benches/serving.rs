//! Serving throughput: closed-loop shots/s through the decode service
//! at several client counts, against the offline `decode_slice` floor.
//!
//! The serving arm pays batching, channel, and reorder costs per shot;
//! the offline arm decodes the same pre-sampled streams on one thread
//! with zero coordination. The gap is the price of the service
//! abstraction, which `results/BENCH_serving.json` tracks release over
//! release.

use astrea_core::{decode_slice, BatchDecoderFactory, SyndromeBatch};
use astrea_serve::{
    build_workload, run_load, ArrivalMode, DecodeService, LoadGenConfig, ServeConfig,
};
use blossom_mwpm::MwpmDecoder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoding_graph::{DecodeScratch, Decoder, DecodingContext};
use qec_circuit::NoiseModel;
use std::hint::black_box;
use std::sync::Arc;
use surface_code::SurfaceCode;

const DISTANCE: usize = 5;
const ERROR_RATE: f64 = 5e-3;
const SHOTS_PER_CLIENT: usize = 512;
const SEED: u64 = 7;

fn context() -> Arc<DecodingContext> {
    let code = SurfaceCode::new(DISTANCE).expect("valid distance");
    Arc::new(DecodingContext::for_memory_experiment(
        &code,
        NoiseModel::depolarizing(ERROR_RATE),
    ))
}

fn factory() -> Arc<BatchDecoderFactory> {
    Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn streams_for(ctx: &DecodingContext, clients: usize) -> Vec<SyndromeBatch> {
    build_workload(
        ctx,
        &LoadGenConfig {
            clients,
            shots_per_client: SHOTS_PER_CLIENT,
            mode: ArrivalMode::Closed,
            replay_fraction: 0.3,
            seed: SEED,
        },
    )
}

fn bench_serving(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("serving");

    for clients in [1usize, 4] {
        let streams = streams_for(&ctx, clients);
        let total_shots = (clients * SHOTS_PER_CLIENT) as u64;
        group.throughput(Throughput::Elements(total_shots));

        group.bench_with_input(
            BenchmarkId::new("closed_loop", clients),
            &streams,
            |b, streams| {
                // The service persists across iterations, as in
                // production: warm caches, no thread churn.
                let service =
                    DecodeService::new(Arc::clone(&ctx), ServeConfig::default(), factory());
                b.iter(|| black_box(run_load(&service, streams, ArrivalMode::Closed).shots));
                service.shutdown();
            },
        );

        group.bench_with_input(
            BenchmarkId::new("offline_floor", clients),
            &streams,
            |b, streams| {
                let mut dec = MwpmDecoder::new(ctx.gwt());
                let mut scratch = DecodeScratch::new();
                b.iter(|| {
                    let mut failures = 0u64;
                    for s in streams {
                        failures += decode_slice(&mut dec, &mut scratch, s, 0..s.len()).failures;
                    }
                    black_box(failures)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
