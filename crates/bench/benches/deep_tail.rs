//! Deep-tail matching latency: sparse scratch blossom vs the dense
//! allocating oracle at Hamming weights past the DP crossover.
//!
//! PR 5's claim is that the deep band's cost was dominated by per-shot
//! staging — the `(2n+1)²` edge matrix plus ~9 vector allocations the
//! dense solver builds for every syndrome — rather than by the
//! primal–dual search itself. The sparse solver keeps all of that state
//! in a persistent arena and reuses it across shots. Both solvers are
//! fed the exact fixed-point weight closure the production decoder
//! uses, so the ratio here is the deep-tail speedup the streamed
//! pipeline sees per blossom-band shot.

use astrea_bench::SyndromeCorpus;
use astrea_experiments::ExperimentContext;
use blossom_mwpm::{dense_blossom, sparse_blossom, MwpmDecoder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoding_graph::{DecodeScratch, Decoder, SparseBlossomScratch};
use std::hint::black_box;

/// Mirrors of the decoder's private fixed-point scale and weight clamp.
const BLOSSOM_SCALE: f64 = 65_536.0;
const WEIGHT_CLAMP: f64 = 1e4;

fn bench_sparse_vs_dense_solver(c: &mut Criterion) {
    let ctx = ExperimentContext::new(7, 1e-3);
    let gwt = ctx.gwt();
    let mut group = c.benchmark_group("deep_tail_solver");
    group.sample_size(30);
    for hw in [12usize, 16, 20, 24] {
        let dets = SyndromeCorpus::synthetic(&ctx, hw);
        let k = dets.len();
        let n = k + k % 2;
        let wi = |i: usize, j: usize| -> i64 {
            let eff = if i >= k || j >= k {
                let real = if i >= k { j } else { i };
                gwt.boundary_weight(dets[real]).min(WEIGHT_CLAMP)
            } else {
                let direct = gwt.pair_weight(dets[i], dets[j]);
                let via = gwt.boundary_weight(dets[i]) + gwt.boundary_weight(dets[j]);
                direct.min(via).min(WEIGHT_CLAMP)
            };
            (eff * BLOSSOM_SCALE).round() as i64 + 1
        };
        group.bench_with_input(BenchmarkId::new("dense", hw), &hw, |b, _| {
            b.iter(|| black_box(dense_blossom::min_weight_perfect_matching(n, wi)))
        });
        group.bench_with_input(BenchmarkId::new("sparse", hw), &hw, |b, _| {
            let mut scratch = SparseBlossomScratch::new();
            b.iter(|| {
                black_box(sparse_blossom::min_weight_perfect_matching_scratch(
                    n,
                    wi,
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_deep_decode_paths(c: &mut Criterion) {
    // Decoder-level view of the same band: the allocating `decode`
    // (dense oracle, cluster Vecs re-allocated per shot) against
    // `decode_with_scratch` (arena-resident cluster decomposition plus
    // the sparse solver).
    let ctx = ExperimentContext::new(7, 1e-3);
    let mut group = c.benchmark_group("deep_tail_decode");
    group.sample_size(30);
    for hw in [12usize, 16, 20, 24] {
        let dets = SyndromeCorpus::synthetic(&ctx, hw);
        group.bench_with_input(BenchmarkId::new("allocating", hw), &dets, |b, dets| {
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            b.iter(|| black_box(decoder.decode(black_box(dets))))
        });
        group.bench_with_input(BenchmarkId::new("scratch", hw), &dets, |b, dets| {
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            b.iter(|| black_box(decoder.decode_with_scratch(black_box(dets), &mut scratch)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_vs_dense_solver,
    bench_deep_decode_paths
);
criterion_main!(benches);
