//! Monte-Carlo sampling throughput: the substrate cost behind every LER
//! table in the paper (§3.4's "1B trials" runs are only feasible because
//! DEM sampling skips untriggered mechanisms geometrically).

use astrea_experiments::{sample_batch, ExperimentContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qec_circuit::{build_memory_z_circuit, DemSampler, FrameSimulator, NoiseModel, Shot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use surface_code::SurfaceCode;

fn bench_dem_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_sampler");
    for (d, p) in [(3usize, 1e-4), (7, 1e-4), (7, 1e-3), (9, 1e-3)] {
        let ctx = ExperimentContext::new(d, p);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_p{p:.0e}")),
            &ctx,
            |b, ctx| {
                let mut sampler = DemSampler::new(ctx.dem());
                let mut rng = StdRng::seed_from_u64(1);
                let mut shot = Shot::default();
                b.iter(|| {
                    sampler.sample_into(&mut rng, &mut shot);
                    black_box(&shot);
                })
            },
        );
    }
    group.finish();
}

fn bench_frame_simulator(c: &mut Criterion) {
    // The exact circuit-level sampler: slower than DEM sampling by
    // construction; used for validation, not bulk Monte-Carlo.
    let mut group = c.benchmark_group("frame_simulator");
    group.sample_size(30);
    for d in [3usize, 5, 7] {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(1e-3));
        group.bench_with_input(BenchmarkId::from_parameter(d), &circuit, |b, circuit| {
            let mut sim = FrameSimulator::new(circuit);
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(sim.sample(circuit, &mut rng)))
        });
    }
    group.finish();
}

fn bench_batch_sampling(c: &mut Criterion) {
    // Filling a SyndromeBatch across threads with per-shot seeding — the
    // front half of every batched LER run. Throughput is shots per second
    // for the whole batch, including the index-order concatenation.
    const SHOTS: u64 = 20_000;
    let mut group = c.benchmark_group("sample_batch");
    group.sample_size(20);
    group.throughput(Throughput::Elements(SHOTS));
    for d in [3usize, 7] {
        let ctx = ExperimentContext::new(d, 1e-3);
        for threads in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("d{d}_t{threads}")),
                &ctx,
                |b, ctx| b.iter(|| black_box(sample_batch(ctx, SHOTS, threads, 5))),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dem_sampler,
    bench_frame_simulator,
    bench_batch_sampling
);
criterion_main!(benches);
