//! One-time setup costs: detector-error-model extraction and Global
//! Weight Table construction (all-pairs Dijkstra) — the offline work the
//! paper's hardware performs before decoding begins (§5.1), scaling with
//! distance as Table 6's GWT sizes do.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoding_graph::{GlobalWeightTable, MatchingGraph};
use qec_circuit::{build_memory_z_circuit, NoiseModel};
use std::hint::black_box;
use surface_code::SurfaceCode;

fn bench_dem_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_extraction");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(1e-3));
        group.bench_with_input(BenchmarkId::from_parameter(d), &circuit, |b, circuit| {
            b.iter(|| black_box(circuit.detector_error_model()))
        });
    }
    group.finish();
}

fn bench_gwt_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("gwt_all_pairs_dijkstra");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9] {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(1e-3));
        let graph = MatchingGraph::from_circuit(&circuit);
        group.bench_with_input(BenchmarkId::from_parameter(d), &graph, |b, graph| {
            b.iter(|| black_box(GlobalWeightTable::new(graph)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dem_extraction, bench_gwt_build);
criterion_main!(benches);
