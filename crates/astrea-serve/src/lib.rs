//! Decode-as-a-service front-end for the Astrea streaming pipeline.
//!
//! Every other entry point in this workspace is a batch harness: one
//! caller, a fixed shot count, results at the end. This crate turns the
//! same machinery into a long-running service for the "heavy traffic
//! from many users" leg of the paper's real-time story:
//!
//! * [`DecodeService`] — a persistent batcher + decode-worker pool.
//!   Shots submitted by any number of concurrent client sessions are
//!   batched **across clients** into packed
//!   [`SyndromeTile`](qec_circuit::SyndromeTile)s and decoded by the
//!   fused word-parallel tile pass
//!   ([`decode_tile_with_predictions`](astrea_core::decode_tile_with_predictions)),
//!   with per-worker scratch arenas and screen/hard caches that stay
//!   warm for the life of the service.
//! * [`ClientSession`] — the in-process client API: validated
//!   submission under an explicit backpressure policy
//!   ([`SubmitPolicy::Block`] or [`SubmitPolicy::Reject`] against a
//!   bounded in-flight budget), responses strictly in submission order.
//! * [`serve_tcp`] / `serve_unix` — a framed socket front-end speaking
//!   the little-endian protocol documented in [`wire`]-module docs,
//!   with [`WireClient`] as the matching client.
//! * [`run_load`] / [`build_workload`] — open- and closed-loop load
//!   generation with correlated (replayed) streams, measuring
//!   p50/p99/p999 serving latency without coordinated omission.
//!
//! The service contract is *bit-identical serving*: for any client
//! interleaving, tile size, worker count, and flush timing, each client
//! receives exactly the predictions offline
//! [`decode_batch`](astrea_core::BatchDecoder::decode_batch) would have
//! produced for its stream, and the aggregate [`ServiceStats`] equal
//! the offline totals. The serving equivalence and fault-injection
//! suites enforce this.
//!
//! ```
//! use std::sync::Arc;
//! use astrea_core::AstreaDecoder;
//! use astrea_serve::{DecodeService, ServeConfig, SubmitPolicy};
//! use decoding_graph::{Decoder, DecodingContext};
//! use qec_circuit::NoiseModel;
//! use surface_code::SurfaceCode;
//!
//! let code = SurfaceCode::new(3)?;
//! let ctx = Arc::new(DecodingContext::for_memory_experiment(
//!     &code,
//!     NoiseModel::depolarizing(1e-3),
//! ));
//! let service = DecodeService::new(
//!     ctx,
//!     ServeConfig { workers: 1, ..ServeConfig::default() },
//!     Arc::new(|c: &DecodingContext| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>),
//! );
//! let mut session = service.session(SubmitPolicy::Block);
//! session.submit(&[0, 1], 0)?;
//! let (seq, prediction) = session.recv().expect("service answered");
//! assert_eq!(seq, 0);
//! # let _ = prediction;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loadgen;
mod service;
mod session;
pub mod wire;

pub use loadgen::{
    build_workload, run_load, ArrivalMode, ClientOutcome, LoadGenConfig, LoadReport,
};
pub use service::{DecodeService, ServeConfig, ServiceStats};
pub use session::{
    ClientSession, ReceiveHandle, RecvError, SubmitError, SubmitHandle, SubmitPolicy,
};
#[cfg(unix)]
pub use wire::serve_unix;
pub use wire::{serve_tcp, WireClient, WireServer};

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::time::Duration;

    use astrea_core::{decode_slice, AstreaDecoder, SyndromeBatch};
    use blossom_mwpm::MwpmDecoder;
    use decoding_graph::{DecodeScratch, Decoder, DecodingContext};
    use qec_circuit::{BatchDemSampler, NoiseModel};
    use surface_code::SurfaceCode;

    use crate::*;

    fn test_ctx(d: usize, p: f64) -> Arc<DecodingContext> {
        let code = SurfaceCode::new(d).expect("valid distance");
        Arc::new(DecodingContext::for_memory_experiment(
            &code,
            NoiseModel::depolarizing(p),
        ))
    }

    fn mwpm_factory() -> Arc<astrea_core::BatchDecoderFactory> {
        // Backend-aware: the same factory drives GWT-backed and GWT-free
        // (WeightSource::Local) contexts.
        Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::for_context(c)) as Box<dyn Decoder>)
    }

    fn sample_stream(ctx: &DecodingContext, seed: u64, shots: usize) -> SyndromeBatch {
        let (det, obs) = BatchDemSampler::new(ctx.dem()).sample(seed, shots);
        SyndromeBatch::from_packed(&det, &obs)
    }

    /// Offline reference: the exact predictions `decode_batch` /
    /// `decode_slice` produce for this stream.
    fn offline(ctx: &DecodingContext, stream: &SyndromeBatch) -> Vec<decoding_graph::Prediction> {
        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        decode_slice(&mut dec, &mut scratch, stream, 0..stream.len()).predictions
    }

    #[test]
    fn single_client_round_trip_matches_offline() {
        let ctx = test_ctx(3, 2e-2);
        let stream = sample_stream(&ctx, 7, 300);
        let service = DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 2,
                tile_words: 1,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        );
        let mut session = service.session(SubmitPolicy::Block);
        let mut got = Vec::with_capacity(stream.len());
        for i in 0..stream.len() {
            session
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        for i in 0..stream.len() {
            let (seq, pred) = session.recv().expect("recv");
            assert_eq!(seq, i as u64, "responses must arrive in submission order");
            got.push(pred);
        }
        assert_eq!(got, offline(&ctx, &stream));
    }

    #[test]
    fn astrea_decoder_serves_identically() {
        let ctx = test_ctx(3, 1e-2);
        let stream = sample_stream(&ctx, 11, 200);
        let factory: Arc<astrea_core::BatchDecoderFactory> = Arc::new(|c: &DecodingContext| {
            Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>
        });
        let service = DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 1,
                tile_words: 2,
                ..ServeConfig::default()
            },
            factory,
        );
        let mut session = service.session(SubmitPolicy::Block);
        for i in 0..stream.len() {
            session
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        let mut dec = AstreaDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let want = decode_slice(&mut dec, &mut scratch, &stream, 0..stream.len()).predictions;
        for (i, w) in want.iter().enumerate() {
            let (seq, pred) = session.recv().expect("recv");
            assert_eq!(seq, i as u64);
            assert_eq!(&pred, w);
        }
    }

    #[test]
    fn invalid_shots_are_rejected_without_consuming_credits() {
        let ctx = test_ctx(3, 1e-3);
        let service = DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 1,
                max_inflight: 1,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        );
        let nd = service.num_detectors() as u32;
        let mut session = service.session(SubmitPolicy::Reject);
        assert!(matches!(
            session.submit(&[nd], 0),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            session.submit(&[1, 1], 0),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            session.submit(&[2, 1], 0),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            session.submit(&[0], u32::MAX),
            Err(SubmitError::Invalid(_))
        ));
        // The budget of 1 is still intact after the rejections.
        session.submit(&[0, 1], 0).expect("valid submit");
        let (_, p) = session.recv().expect("recv");
        assert!(!p.deferred);
    }

    #[test]
    fn reject_policy_reports_full_then_recovers() {
        let ctx = test_ctx(3, 1e-3);
        let service = DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 1,
                max_inflight: 2,
                // A long window keeps shots staged so credits stay
                // pinned until we flush.
                batch_window: Duration::from_secs(30),
                tile_words: 4,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        );
        let mut session = service.session(SubmitPolicy::Reject);
        session.submit(&[0], 0).expect("first");
        session.submit(&[1], 0).expect("second");
        // recv() would block (nothing flushed); submit must not.
        assert_eq!(session.submit(&[2], 0), Err(SubmitError::Full));
        session.flush().expect("flush");
        let (seq, _) = session.recv().expect("recv");
        assert_eq!(seq, 0);
        // A credit came back with the response.
        session.submit(&[2], 0).expect("third");
        service.flush();
        assert_eq!(session.recv().expect("recv").0, 1);
        assert_eq!(session.recv().expect("recv").0, 2);
    }

    #[test]
    fn stats_match_offline_totals() {
        let ctx = test_ctx(3, 2e-2);
        let stream = sample_stream(&ctx, 21, 500);
        let service = DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 2,
                tile_words: 2,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        );
        let mut session = service.session(SubmitPolicy::Block);
        for i in 0..stream.len() {
            session
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        for _ in 0..stream.len() {
            session.recv().expect("recv");
        }
        let stats = service.stats();

        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let want = decode_slice(&mut dec, &mut scratch, &stream, 0..stream.len());
        assert_eq!(stats.outcome.stats, want.stats);
        assert_eq!(stats.outcome.failures, want.failures);
        assert_eq!(stats.outcome.deferred, want.deferred);
        assert_eq!(stats.counters.shots_screened, stream.len() as u64);
    }

    #[test]
    fn service_shuts_down_cleanly_with_idle_sessions() {
        let ctx = test_ctx(3, 1e-3);
        let service = DecodeService::new(Arc::clone(&ctx), ServeConfig::default(), mwpm_factory());
        let mut session = service.session(SubmitPolicy::Block);
        session.submit(&[0, 1], 0).expect("submit");
        let _ = session.recv().expect("recv");
        service.shutdown();
        // After shutdown every path reports Closed rather than hanging.
        assert_eq!(session.submit(&[0], 0), Err(SubmitError::Closed));
        assert_eq!(session.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn wire_round_trip_over_tcp() {
        let ctx = test_ctx(3, 2e-2);
        let stream = sample_stream(&ctx, 3, 64);
        let service = Arc::new(DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 1,
                tile_words: 1,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        ));
        let server = serve_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("tcp addr");
        let mut client = WireClient::connect_tcp(addr).expect("connect");
        let want = offline(&ctx, &stream);
        // Ping-pong a prefix, then batch the rest and drain.
        for (i, w) in want.iter().enumerate().take(16) {
            client
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
            let (seq, pred) = client.recv().expect("recv");
            assert_eq!(seq, i as u64);
            assert_eq!(&pred, w);
        }
        for i in 16..stream.len() {
            client
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
        }
        client.flush().expect("flush");
        for (i, w) in want.iter().enumerate().skip(16) {
            let (seq, pred) = client.recv().expect("recv");
            assert_eq!(seq, i as u64);
            assert_eq!(&pred, w);
        }
        drop(client);
        server.shutdown();
        service.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn wire_round_trip_over_unix_socket() {
        let ctx = test_ctx(3, 2e-2);
        let stream = sample_stream(&ctx, 5, 32);
        let service = Arc::new(DecodeService::new(
            Arc::clone(&ctx),
            ServeConfig {
                workers: 1,
                tile_words: 1,
                ..ServeConfig::default()
            },
            mwpm_factory(),
        ));
        let path =
            std::env::temp_dir().join(format!("astrea-serve-test-{}.sock", std::process::id()));
        let server = serve_unix(Arc::clone(&service), &path).expect("bind unix");
        let mut client = WireClient::connect_unix(&path).expect("connect unix");
        let want = offline(&ctx, &stream);
        for (i, w) in want.iter().enumerate() {
            client
                .submit(stream.detectors(i), stream.observables(i))
                .expect("submit");
            let (seq, pred) = client.recv().expect("recv");
            assert_eq!(seq, i as u64);
            assert_eq!(&pred, w);
        }
        drop(client);
        server.shutdown();
        assert!(!path.exists(), "socket file removed at shutdown");
    }

    #[test]
    fn closed_loop_load_gen_is_replay_exact() {
        let ctx = test_ctx(3, 2e-2);
        let cfg = LoadGenConfig {
            clients: 2,
            shots_per_client: 120,
            mode: ArrivalMode::Closed,
            replay_fraction: 0.5,
            seed: 99,
        };
        let streams = build_workload(&ctx, &cfg);
        assert_eq!(streams.len(), 2);
        let service = DecodeService::new(Arc::clone(&ctx), ServeConfig::default(), mwpm_factory());
        let report = run_load(&service, &streams, cfg.mode);
        assert_eq!(report.shots, 240);
        assert!(report.shots_per_sec > 0.0);
        for (stream, outcome) in streams.iter().zip(&report.outcomes) {
            assert_eq!(outcome.predictions, offline(&ctx, stream));
        }
        // The replayed halves revisit earlier shots, so identical
        // syndromes must predict identically (spot-check the workload
        // builder actually produced repeats).
        let s = &streams[0];
        let repeats = (1..s.len())
            .filter(|&i| (0..i).any(|j| s.detectors(i) == s.detectors(j)))
            .count();
        assert!(repeats > 20, "replay fraction produced {repeats} repeats");
    }

    #[test]
    fn open_loop_load_gen_measures_from_intended_arrival() {
        let ctx = test_ctx(3, 1e-2);
        let cfg = LoadGenConfig {
            clients: 2,
            shots_per_client: 60,
            mode: ArrivalMode::Open {
                shots_per_sec: 20_000.0,
            },
            replay_fraction: 0.0,
            seed: 5,
        };
        let streams = build_workload(&ctx, &cfg);
        let service = DecodeService::new(Arc::clone(&ctx), ServeConfig::default(), mwpm_factory());
        let report = run_load(&service, &streams, cfg.mode);
        assert_eq!(report.shots, 120);
        assert!(report.p50_ns <= report.p99_ns && report.p99_ns <= report.p999_ns);
        assert!(report.p999_ns <= report.max_ns);
        for (stream, outcome) in streams.iter().zip(&report.outcomes) {
            assert_eq!(outcome.predictions, offline(&ctx, stream));
            assert_eq!(outcome.modeled_ns.len(), stream.len());
        }
    }
}
