//! Load generation against an in-process [`DecodeService`].
//!
//! Two arrival disciplines:
//!
//! * **Open loop** — shots arrive on a fixed schedule at a configured
//!   aggregate rate whether or not earlier responses have returned, and
//!   per-shot latency is measured from the *intended* arrival time, so
//!   queueing delay is charged to the service (no coordinated
//!   omission). This is the serving-latency measurement.
//! * **Closed loop** — each client submits its next shot only after the
//!   previous response arrives; the per-shot number is round-trip time
//!   and the aggregate rate is whatever the service sustains.
//!
//! Workloads are pre-sampled from the context's detector error model,
//! one independent stream per client, with a configurable *replay
//! fraction*: that share of shots repeats an earlier shot of the same
//! stream, modeling the correlated syndrome streams real traffic shows
//! (and giving the [`HardSyndromeCache`](astrea_core::HardSyndromeCache)
//! its intended workload).

use std::time::{Duration, Instant};

use astrea_core::SyndromeBatch;
use decoding_graph::{DecodingContext, Prediction};
use qec_circuit::BatchDemSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::service::{DecodeService, ServiceStats};
use crate::session::SubmitPolicy;

/// Arrival discipline of a load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// Fixed-schedule arrivals at `shots_per_sec` aggregate across all
    /// clients; latency is measured from the intended arrival time.
    Open {
        /// Aggregate offered rate over all clients, in shots per second.
        shots_per_sec: f64,
    },
    /// Submit-after-response per client; measures round-trip time and
    /// saturation throughput.
    Closed,
}

/// Shape of a load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Shots each client submits.
    pub shots_per_client: usize,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// Fraction of each client's shots that replay an earlier shot of
    /// the same stream (0.0 = i.i.d., 1.0 = all repeats after the first).
    pub replay_fraction: f64,
    /// Workload sampling seed; same seed, same workload.
    pub seed: u64,
}

/// Everything one client observed: predictions and latencies in
/// submission order, plus the cycle-model latency of each shot.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Per-shot predictions, in submission order.
    pub predictions: Vec<Prediction>,
    /// Measured per-shot latency in nanoseconds (open loop: intended
    /// arrival → response; closed loop: submit → response).
    pub latencies_ns: Vec<u64>,
    /// Cycle-model decode latency of each shot in nanoseconds — the
    /// per-window service times backlog simulators (e.g.
    /// `astrea_experiments::realtime::simulate_backlog`) expect.
    pub modeled_ns: Vec<f64>,
}

/// Aggregate result of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Total shots decoded.
    pub shots: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Measured aggregate throughput.
    pub shots_per_sec: f64,
    /// Median measured latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile measured latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile measured latency in nanoseconds.
    pub p999_ns: u64,
    /// Worst measured latency in nanoseconds.
    pub max_ns: u64,
    /// Shots whose predicted observables differed from the sampled
    /// truth (logical errors, not service defects).
    pub failures: u64,
    /// Service accounting after the run ([`DecodeService::stats`];
    /// run each configuration against a fresh service to keep this a
    /// per-run delta).
    pub stats: ServiceStats,
    /// Per-client detail, index-aligned with the workload streams.
    pub outcomes: Vec<ClientOutcome>,
}

/// Samples one syndrome stream per client from the context's detector
/// error model, then rewrites a `replay_fraction` share of each stream's
/// shots as repeats of earlier shots.
pub fn build_workload(ctx: &DecodingContext, cfg: &LoadGenConfig) -> Vec<SyndromeBatch> {
    let sampler = BatchDemSampler::new(ctx.dem());
    let mut streams = Vec::with_capacity(cfg.clients);
    for client in 0..cfg.clients {
        let (det, obs) = sampler.sample(
            cfg.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            cfg.shots_per_client,
        );
        let base = SyndromeBatch::from_packed(&det, &obs);
        let replay = cfg.replay_fraction.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(client as u64));
        let mut builder = SyndromeBatch::builder();
        for i in 0..base.len() {
            let src = if i > 0 && rng.gen_bool(replay) {
                rng.gen_range(0..i)
            } else {
                i
            };
            builder.push(base.detectors(src), base.observables(src));
        }
        streams.push(builder.finish());
    }
    streams
}

/// Sleeps until `target`. Plain sleeps only: spinning down to the exact
/// nanosecond would starve the decode workers on small hosts and charge
/// the generator's own CPU burn to the service. OS wake-up jitter lands
/// in the measured latency instead, which is the conservative direction
/// for an open-loop measurement.
fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        std::thread::sleep(target - now);
    }
}

/// Runs the given per-client streams against the service and collects
/// latency, correctness, and accounting. Blocking submission is used
/// throughout, so the session credit budget is the only admission
/// control in play.
pub fn run_load(
    service: &DecodeService,
    streams: &[SyndromeBatch],
    mode: ArrivalMode,
) -> LoadReport {
    let clients = streams.len();
    let started = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::with_capacity(clients);

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(clients);
        for (client, stream) in streams.iter().enumerate() {
            let session = service.session(SubmitPolicy::Block);
            workers.push(scope.spawn(move || match mode {
                ArrivalMode::Closed => run_closed(session, stream),
                ArrivalMode::Open { shots_per_sec } => {
                    // The aggregate rate is split evenly; client start
                    // phases are staggered across one inter-arrival gap
                    // so arrivals interleave instead of bunching.
                    let interval_ns = 1e9 * clients as f64 / shots_per_sec.max(1e-9);
                    let phase =
                        Duration::from_nanos((interval_ns * client as f64 / clients as f64) as u64);
                    run_open(session, stream, started + phase, interval_ns)
                }
            }));
        }
        for w in workers {
            outcomes.push(w.join().expect("load-gen client panicked"));
        }
    });

    let wall = started.elapsed();
    let mut failures = 0u64;
    let mut all_lat: Vec<u64> = Vec::new();
    for (stream, outcome) in streams.iter().zip(&outcomes) {
        for (i, pred) in outcome.predictions.iter().enumerate() {
            if pred.observables != stream.observables(i) {
                failures += 1;
            }
        }
        all_lat.extend_from_slice(&outcome.latencies_ns);
    }
    all_lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if all_lat.is_empty() {
            return 0;
        }
        all_lat[((all_lat.len() as f64 * q) as usize).min(all_lat.len() - 1)]
    };
    let shots = all_lat.len() as u64;

    LoadReport {
        clients,
        shots,
        wall,
        shots_per_sec: shots as f64 / wall.as_secs_f64().max(1e-12),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        p999_ns: pct(0.999),
        max_ns: all_lat.last().copied().unwrap_or(0),
        failures,
        stats: service.stats(),
        outcomes,
    }
}

fn finish_outcome(
    predictions: Vec<Prediction>,
    latencies_ns: Vec<u64>,
    freq_mhz: f64,
) -> ClientOutcome {
    let ns_per_cycle = 1e3 / freq_mhz;
    let modeled_ns = predictions
        .iter()
        .map(|p| p.cycles as f64 * ns_per_cycle)
        .collect();
    ClientOutcome {
        predictions,
        latencies_ns,
        modeled_ns,
    }
}

fn run_closed(mut session: crate::session::ClientSession, stream: &SyndromeBatch) -> ClientOutcome {
    let n = stream.len();
    let mut predictions = Vec::with_capacity(n);
    let mut latencies = Vec::with_capacity(n);
    for i in 0..n {
        let t0 = Instant::now();
        session
            .submit(stream.detectors(i), stream.observables(i))
            .expect("closed-loop submit failed");
        let (_, pred) = session.recv().expect("closed-loop recv failed");
        latencies.push(t0.elapsed().as_nanos() as u64);
        predictions.push(pred);
    }
    finish_outcome(predictions, latencies, astrea_core::DEFAULT_FREQ_MHZ)
}

fn run_open(
    session: crate::session::ClientSession,
    stream: &SyndromeBatch,
    t0: Instant,
    interval_ns: f64,
) -> ClientOutcome {
    let n = stream.len();
    let (mut submit, mut recv) = session.into_split();
    let intended =
        |i: u64| -> Instant { t0 + Duration::from_nanos((i as f64 * interval_ns) as u64) };

    std::thread::scope(|scope| {
        let submitter = scope.spawn(move || {
            for i in 0..n {
                sleep_until(intended(i as u64));
                submit
                    .submit(stream.detectors(i), stream.observables(i))
                    .expect("open-loop submit failed");
            }
            let _ = submit.flush();
            submit
        });

        let mut predictions = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for _ in 0..n {
            let (seq, pred) = recv.recv().expect("open-loop recv failed");
            let done = Instant::now();
            latencies.push(done.saturating_duration_since(intended(seq)).as_nanos() as u64);
            predictions.push(pred);
        }
        drop(submitter.join().expect("open-loop submitter panicked"));
        finish_outcome(predictions, latencies, astrea_core::DEFAULT_FREQ_MHZ)
    })
}
