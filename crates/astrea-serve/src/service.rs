//! The decode service: cross-client batching into packed tiles over a
//! persistent decode-worker pool.
//!
//! One *batcher* thread collects shots submitted by any number of client
//! sessions and packs them — across clients — into [`SyndromeTile`]s of
//! at most `tile_words × 64` lanes. Full tiles (or partial ones, once
//! the batch window expires or a flush arrives) flow over a bounded
//! channel into persistent decode workers, each owning one decoder
//! instance, one [`DecodeScratch`] arena, and one
//! [`TileScratch`](astrea_core::TileScratch) (whose HW ≤ 2 screen cache
//! and [`HardSyndromeCache`](astrea_core::HardSyndromeCache) warm across
//! the whole service lifetime — the correlated, long-running streams the
//! hard cache was built for). Workers decode tiles with the fused
//! classify+extract pass ([`decode_tile_with_predictions`]) and route
//! each lane's [`Prediction`] back to the session that submitted it.
//!
//! # Exactness
//!
//! Every shot is decoded independently by a deterministic decoder (the
//! screen and hard caches only replay it), so a shot's prediction is a
//! pure function of its fired-detector list — independent of which
//! clients share a tile, how tiles are cut, and which worker decodes
//! them. Per-client responses are re-ordered by submission sequence
//! number, so each client observes exactly the stream
//! [`BatchDecoder::decode_batch`](astrea_core::BatchDecoder) would have
//! produced for its shots alone; the aggregate [`ServiceStats`] are sums
//! and maxima and equal the offline totals. The serving equivalence
//! suite enforces both bit-for-bit.
//!
//! # Backpressure
//!
//! Admission control is per client: a session holds `max_inflight`
//! credits, one per shot submitted and not yet consumed, and its
//! [`SubmitPolicy`](crate::SubmitPolicy) decides whether an exhausted
//! budget blocks or rejects. Because workers deliver responses into
//! per-client queues whose occupancy the credit budget bounds, a slow or
//! stalled client can never block a worker — other clients' responses
//! keep flowing. The tile channel between batcher and workers is bounded
//! too ([`ServeConfig::tile_queue_depth`]), so a saturated pool pushes
//! back on the batcher rather than buffering unboundedly.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use astrea_core::batch::BatchDecoderFactory;
use astrea_core::pipeline::{decode_tile_with_predictions, StreamOutcome, TileScratch};
use astrea_core::{PipelineCounters, DEFAULT_CHANNEL_DEPTH, DEFAULT_HARD_CACHE_ENTRIES};
use decoding_graph::{DecodeScratch, DecodingContext, Prediction};
use qec_circuit::{BitTable, SyndromeTile};

use crate::session::{ClientSession, Credits, ReceiveHandle, SubmitHandle, SubmitPolicy};

/// A response routed back to a session: the shot's submission sequence
/// number and its prediction.
pub(crate) type Reply = (u64, Prediction);

/// One shot staged for cross-client batching.
pub(crate) struct ShotRequest {
    /// The submitting session's response channel.
    pub reply: mpsc::Sender<Reply>,
    /// Per-session submission sequence number.
    pub seq: u64,
    /// Sorted fired-detector indices.
    pub dets: Vec<u32>,
    /// Actual observable-flip mask (0 when unknown; only used for the
    /// service's aggregate failure accounting).
    pub actual: u32,
}

/// Messages from sessions (and the service handle) to the batcher.
pub(crate) enum BatchMsg {
    /// Stage one shot.
    Shot(ShotRequest),
    /// Emit the staged partial tile immediately.
    Flush,
    /// Emit the staged partial tile and stop accepting work.
    Shutdown,
}

/// One packed tile plus the route of every lane back to its client.
struct ServeTileMsg {
    tile: SyndromeTile,
    /// `routes[lane]` is the reply channel and sequence number of the
    /// shot in that lane.
    routes: Vec<(mpsc::Sender<Reply>, u64)>,
}

/// Shape of a [`DecodeService`]. Every field is a performance or
/// batching knob: results are bit-identical for any configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Persistent decode workers (at least one).
    pub workers: usize,
    /// Packed words per serving tile (≤ 64·`tile_words` shots batched
    /// per decode call). Serving tiles default smaller than the bulk
    /// pipeline's so partial flushes stay cheap at low offered rates.
    pub tile_words: usize,
    /// Bound on tiles buffered between the batcher and the workers.
    pub tile_queue_depth: usize,
    /// How long the first staged shot of a tile may wait for co-batched
    /// traffic before a partial tile is emitted. `Duration::ZERO` means
    /// eager: emit as soon as the request queue is momentarily empty.
    pub batch_window: Duration,
    /// Per-session credit budget: shots submitted but not yet consumed
    /// by the client. Bounds per-client memory end to end and is the
    /// lever the [`SubmitPolicy`](crate::SubmitPolicy) acts on.
    pub max_inflight: usize,
    /// Per-worker capacity of the hard-syndrome prediction cache
    /// (0 disables it).
    pub hard_cache_entries: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            tile_words: 4,
            tile_queue_depth: DEFAULT_CHANNEL_DEPTH,
            batch_window: Duration::ZERO,
            max_inflight: 4096,
            hard_cache_entries: DEFAULT_HARD_CACHE_ENTRIES,
        }
    }
}

/// Aggregate accounting across every worker of a service: the same
/// totals the offline paths produce ([`StreamOutcome`]) plus the
/// per-stage [`PipelineCounters`] and the number of tiles decoded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Latency statistics, failures, and deferrals over every decoded
    /// shot — bit-identical to offline
    /// [`decode_batch`](astrea_core::BatchDecoder::decode_batch) totals
    /// for the same shots.
    pub outcome: StreamOutcome,
    /// Per-stage shot counters (screen, closed form, hard cache, DP,
    /// sparse blossom), summed across workers.
    pub counters: PipelineCounters,
    /// Tiles decoded by the pool.
    pub tiles: u64,
}

/// Per-worker accounting slot, republished after every tile.
#[derive(Debug, Clone, Default)]
struct WorkerSlot {
    outcome: StreamOutcome,
    counters: PipelineCounters,
    tiles: u64,
}

/// A long-running decode service (see the [module docs](self)).
///
/// Construction spawns the batcher and the worker pool; sessions are
/// handed out with [`DecodeService::session`] and the in-process API on
/// [`ClientSession`]. [`DecodeService::shutdown`] (also run on drop)
/// flushes staged work, drains the tile queue, and joins every thread —
/// no worker outlives the service.
pub struct DecodeService {
    req: mpsc::Sender<BatchMsg>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<Mutex<Vec<WorkerSlot>>>,
    num_detectors: usize,
    obs_mask: u32,
    max_inflight: usize,
}

impl DecodeService {
    /// Spawns the batcher and `config.workers` decode workers, each
    /// building its own decoder from `factory` against `ctx` (the same
    /// factory contract as [`astrea_core::BatchDecoder`]).
    pub fn new(
        ctx: Arc<DecodingContext>,
        config: ServeConfig,
        factory: Arc<BatchDecoderFactory>,
    ) -> DecodeService {
        let num_detectors = ctx.dem().num_detectors();
        let num_observables = ctx.dem().num_observables().min(32);
        let obs_mask = if num_observables == 32 {
            u32::MAX
        } else {
            (1u32 << num_observables) - 1
        };
        let workers = config.workers.max(1);
        let (req_tx, req_rx) = mpsc::channel::<BatchMsg>();
        let (tile_tx, tile_rx) = mpsc::sync_channel::<ServeTileMsg>(config.tile_queue_depth.max(1));
        let tile_rx = Arc::new(Mutex::new(tile_rx));
        let stats = Arc::new(Mutex::new(vec![WorkerSlot::default(); workers]));
        let mut handles = Vec::with_capacity(workers + 1);

        let batch_window = config.batch_window;
        let capacity = config.tile_words.max(1) * 64;
        handles.push(
            std::thread::Builder::new()
                .name("astrea-serve-batcher".into())
                .spawn(move || {
                    run_batcher(
                        req_rx,
                        tile_tx,
                        capacity,
                        batch_window,
                        num_detectors,
                        num_observables,
                    )
                })
                .expect("failed to spawn serve batcher"),
        );

        for w in 0..workers {
            let ctx = Arc::clone(&ctx);
            let factory = Arc::clone(&factory);
            let tile_rx = Arc::clone(&tile_rx);
            let stats = Arc::clone(&stats);
            let hard_cache_entries = config.hard_cache_entries;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("astrea-serve-{w}"))
                    .spawn(move || {
                        let mut decoder = factory(&ctx);
                        let mut scratch = DecodeScratch::new();
                        let mut tiles = TileScratch::with_hard_cache(hard_cache_entries);
                        let mut out = StreamOutcome::default();
                        let mut preds: Vec<Prediction> = Vec::new();
                        let mut decoded = 0u64;
                        loop {
                            // Take the lock only to pull the next tile;
                            // decoding runs unlocked so workers overlap.
                            let msg = tile_rx.lock().expect("serve tile queue poisoned").recv();
                            let Ok(ServeTileMsg { tile, routes }) = msg else {
                                break;
                            };
                            preds.clear();
                            preds.resize(tile.num_shots(), Prediction::identity());
                            decode_tile_with_predictions(
                                decoder.as_mut(),
                                &mut scratch,
                                &mut tiles,
                                &tile,
                                &mut out,
                                &mut preds,
                            );
                            decoded += 1;
                            // Publish accounting before routing replies:
                            // once a client holds this tile's response,
                            // stats() must already include the tile.
                            {
                                let mut slots = stats.lock().expect("serve stats poisoned");
                                slots[w] = WorkerSlot {
                                    outcome: out.clone(),
                                    counters: *tiles.counters(),
                                    tiles: decoded,
                                };
                            }
                            for (lane, (reply, seq)) in routes.into_iter().enumerate() {
                                // A send error means the client hung up
                                // mid-stream; its prediction is dropped
                                // and everyone else's keeps flowing.
                                let _ = reply.send((seq, preds[lane]));
                            }
                        }
                    })
                    .expect("failed to spawn serve worker"),
            );
        }

        DecodeService {
            req: req_tx,
            handles: Mutex::new(handles),
            stats,
            num_detectors,
            obs_mask,
            max_inflight: config.max_inflight.max(1),
        }
    }

    /// Opens a new client session with the given backpressure policy.
    ///
    /// Sessions are independent: each gets its own response channel,
    /// credit budget, and sequence numbering, and observes its shots'
    /// predictions in submission order whatever the cross-client
    /// batching does.
    pub fn session(&self, policy: SubmitPolicy) -> ClientSession {
        let credits = Arc::new(Credits::new(self.max_inflight));
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        ClientSession::new(
            SubmitHandle::new(
                self.req.clone(),
                reply_tx,
                Arc::clone(&credits),
                policy,
                self.num_detectors,
                self.obs_mask,
            ),
            ReceiveHandle::new(reply_rx, credits),
        )
    }

    /// Number of detectors per syndrome the service decodes.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Asks the batcher to emit the staged partial tile immediately —
    /// the service-wide version of [`ClientSession::flush`].
    pub fn flush(&self) {
        let _ = self.req.send(BatchMsg::Flush);
    }

    /// Aggregate accounting across every worker, as of the last tile
    /// each one finished.
    pub fn stats(&self) -> ServiceStats {
        let slots = self.stats.lock().expect("serve stats poisoned");
        let mut total = ServiceStats::default();
        for s in slots.iter() {
            total.outcome.merge(&s.outcome);
            total.counters.merge(&s.counters);
            total.tiles += s.tiles;
        }
        total
    }

    /// Stops the service: staged shots are flushed, queued tiles are
    /// decoded and their responses delivered, and every thread is
    /// joined. Safe to call more than once; also runs on drop.
    ///
    /// Shots already accepted by the batcher are never lost, but a
    /// submission racing this call can be rejected with
    /// [`SubmitError::Closed`](crate::SubmitError::Closed).
    pub fn shutdown(&self) {
        let _ = self.req.send(BatchMsg::Shutdown);
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock().expect("serve handles poisoned");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for DecodeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Packs staged shots into one tile and ships it; `staged` is left empty
/// and reusable. A send error (every worker gone) drops the shots.
fn emit(
    staged: &mut Vec<ShotRequest>,
    tile_tx: &mpsc::SyncSender<ServeTileMsg>,
    num_detectors: usize,
    num_observables: usize,
) {
    if staged.is_empty() {
        return;
    }
    let n = staged.len();
    let mut det = BitTable::new(num_detectors, n);
    let mut obs = BitTable::new(num_observables, n);
    let mut routes = Vec::with_capacity(n);
    for (lane, shot) in staged.drain(..).enumerate() {
        for &d in &shot.dets {
            det.set(d as usize, lane, true);
        }
        for b in 0..num_observables {
            if shot.actual >> b & 1 == 1 {
                obs.set(b, lane, true);
            }
        }
        routes.push((shot.reply, shot.seq));
    }
    let _ = tile_tx.send(ServeTileMsg {
        tile: SyndromeTile::new(0, det, obs),
        routes,
    });
}

/// The batcher loop: stage shots, emit on full tile / window expiry /
/// flush / shutdown. Exits when told to shut down or when every request
/// sender (the service handle and all sessions) is gone.
fn run_batcher(
    req_rx: mpsc::Receiver<BatchMsg>,
    tile_tx: mpsc::SyncSender<ServeTileMsg>,
    capacity: usize,
    batch_window: Duration,
    num_detectors: usize,
    num_observables: usize,
) {
    let mut staged: Vec<ShotRequest> = Vec::with_capacity(capacity);
    let mut deadline = Instant::now();
    loop {
        let msg = if staged.is_empty() {
            match req_rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            }
        } else {
            let left = deadline.saturating_duration_since(Instant::now());
            match req_rx.recv_timeout(left) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    emit(&mut staged, &tile_tx, num_detectors, num_observables);
                    break;
                }
            }
        };
        match msg {
            Some(BatchMsg::Shot(shot)) => {
                if staged.is_empty() {
                    deadline = Instant::now() + batch_window;
                }
                staged.push(shot);
                if staged.len() >= capacity {
                    emit(&mut staged, &tile_tx, num_detectors, num_observables);
                }
            }
            Some(BatchMsg::Flush) | None => {
                emit(&mut staged, &tile_tx, num_detectors, num_observables);
            }
            Some(BatchMsg::Shutdown) => {
                // Drain already-queued submissions so every accepted
                // shot still gets decoded and answered.
                while let Ok(m) = req_rx.try_recv() {
                    if let BatchMsg::Shot(shot) = m {
                        staged.push(shot);
                        if staged.len() >= capacity {
                            emit(&mut staged, &tile_tx, num_detectors, num_observables);
                        }
                    }
                }
                emit(&mut staged, &tile_tx, num_detectors, num_observables);
                break;
            }
        }
    }
    // Dropping tile_tx here lets the workers drain the queue and exit.
}
