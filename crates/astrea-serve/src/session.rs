//! Per-client sessions: validated submission with credit-based
//! backpressure on one side, submission-ordered delivery on the other.
//!
//! A [`ClientSession`] is a pair of halves. The [`SubmitHandle`]
//! validates each shot (sorted, in-range detector indices), spends one
//! *credit* per shot, and hands it to the service's batcher; the
//! [`ReceiveHandle`] pulls responses — which arrive in whatever order
//! the cross-client tiles complete — through a reorder buffer and
//! releases the credit, so the caller always sees predictions in
//! submission order. The credit budget ([`ServeConfig::max_inflight`])
//! is the backpressure contract: when it is exhausted, submission
//! either blocks or rejects per [`SubmitPolicy`], and because responses
//! park in the session's own bounded queue, a slow client never stalls
//! the decode workers or other clients.
//!
//! [`ServeConfig::max_inflight`]: crate::ServeConfig

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use decoding_graph::Prediction;

use crate::service::{BatchMsg, Reply, ShotRequest};

/// What [`SubmitHandle::submit`] does when the session's in-flight
/// credit budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitPolicy {
    /// Wait until the client consumes responses and a credit frees up.
    Block,
    /// Fail fast with [`SubmitError::Full`]; the caller retries later.
    Reject,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The in-flight budget is exhausted (only under
    /// [`SubmitPolicy::Reject`]).
    Full,
    /// The service has shut down.
    Closed,
    /// The shot was malformed: detector indices must be strictly
    /// ascending and in range, and the observable mask in range.
    Invalid(&'static str),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "in-flight budget exhausted"),
            SubmitError::Closed => write!(f, "decode service closed"),
            SubmitError::Invalid(why) => write!(f, "invalid shot: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a receive returned no prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Every outstanding response has been delivered and the submit
    /// side is gone — no further response can arrive.
    Closed,
    /// The deadline passed (only from [`ReceiveHandle::recv_timeout`]).
    Timeout,
}

/// The session's in-flight budget: a counting semaphore shared by the
/// two halves, closed for good when the receiving half is dropped.
///
/// Closure is what makes a blocking acquire cancellable: only the
/// [`ReceiveHandle`] releases credits, so once it is gone a submitter
/// parked on the condvar could never be woken by a release. Its `Drop`
/// therefore flips `closed` and wakes every waiter, turning would-be
/// deadlocks into [`SubmitError::Closed`].
pub(crate) struct Credits {
    state: Mutex<CreditState>,
    freed: Condvar,
}

struct CreditState {
    available: usize,
    closed: bool,
}

impl Credits {
    pub(crate) fn new(budget: usize) -> Credits {
        Credits {
            state: Mutex::new(CreditState {
                available: budget,
                closed: false,
            }),
            freed: Condvar::new(),
        }
    }

    /// Takes one credit if any is available and the gate is open.
    fn try_acquire(&self) -> bool {
        let mut s = self.state.lock().expect("credits poisoned");
        if !s.closed && s.available > 0 {
            s.available -= 1;
            true
        } else {
            false
        }
    }

    /// Waits until a credit is available, then takes it. Fails with
    /// [`SubmitError::Closed`] once the receiving half is gone — no
    /// release could ever arrive, so waiting on would be a deadlock.
    fn acquire(&self) -> Result<(), SubmitError> {
        let mut s = self.state.lock().expect("credits poisoned");
        loop {
            if s.closed {
                return Err(SubmitError::Closed);
            }
            if s.available > 0 {
                s.available -= 1;
                return Ok(());
            }
            s = self.freed.wait(s).expect("credits poisoned");
        }
    }

    /// Whether the receiving half is gone.
    fn is_closed(&self) -> bool {
        self.state.lock().expect("credits poisoned").closed
    }

    /// Returns one credit and wakes a blocked submitter.
    pub(crate) fn release(&self) {
        let mut s = self.state.lock().expect("credits poisoned");
        s.available += 1;
        self.freed.notify_one();
    }

    /// Closes the gate and wakes every parked submitter.
    fn close(&self) {
        let mut s = self.state.lock().expect("credits poisoned");
        s.closed = true;
        self.freed.notify_all();
    }
}

/// The submitting half of a session.
pub struct SubmitHandle {
    req: mpsc::Sender<BatchMsg>,
    reply_tx: mpsc::Sender<Reply>,
    credits: Arc<Credits>,
    policy: SubmitPolicy,
    next_seq: u64,
    num_detectors: usize,
    obs_mask: u32,
}

impl SubmitHandle {
    pub(crate) fn new(
        req: mpsc::Sender<BatchMsg>,
        reply_tx: mpsc::Sender<Reply>,
        credits: Arc<Credits>,
        policy: SubmitPolicy,
        num_detectors: usize,
        obs_mask: u32,
    ) -> SubmitHandle {
        SubmitHandle {
            req,
            reply_tx,
            credits,
            policy,
            next_seq: 0,
            num_detectors,
            obs_mask,
        }
    }

    fn validate(&self, dets: &[u32], actual: u32) -> Result<(), SubmitError> {
        let mut prev = None;
        for &d in dets {
            if (d as usize) >= self.num_detectors {
                return Err(SubmitError::Invalid("detector index out of range"));
            }
            if prev.is_some_and(|p| p >= d) {
                return Err(SubmitError::Invalid(
                    "detector indices must be strictly ascending",
                ));
            }
            prev = Some(d);
        }
        if actual & !self.obs_mask != 0 {
            return Err(SubmitError::Invalid("observable mask out of range"));
        }
        Ok(())
    }

    /// Sends a validated shot whose credit has already been acquired.
    /// Returns the credit on failure.
    fn send_acquired(&mut self, dets: &[u32], actual: u32) -> Result<u64, SubmitError> {
        let seq = self.next_seq;
        let msg = BatchMsg::Shot(ShotRequest {
            reply: self.reply_tx.clone(),
            seq,
            dets: dets.to_vec(),
            actual,
        });
        if self.req.send(msg).is_err() {
            self.credits.release();
            return Err(SubmitError::Closed);
        }
        self.next_seq += 1;
        Ok(seq)
    }

    /// Submits one shot — `dets` is the strictly ascending list of fired
    /// detector indices, `actual` the true observable-flip mask (pass 0
    /// when unknown; it only feeds the service's aggregate failure
    /// accounting). Returns the shot's sequence number, which the
    /// receiving half's deliveries carry in order.
    pub fn submit(&mut self, dets: &[u32], actual: u32) -> Result<u64, SubmitError> {
        self.validate(dets, actual)?;
        match self.policy {
            SubmitPolicy::Block => {
                if !self.credits.try_acquire() {
                    // Budget exhausted: some of this session's shots may
                    // still be *staged* behind an unexpired batch window.
                    // Flush them through before blocking so the wait is
                    // bounded by decode time, never by the window. The
                    // wait itself is cancellable: if the receiving half
                    // is dropped mid-park, acquire fails with Closed
                    // instead of waiting for a release that cannot come.
                    let _ = self.req.send(BatchMsg::Flush);
                    self.credits.acquire()?;
                }
            }
            SubmitPolicy::Reject => {
                if !self.credits.try_acquire() {
                    return Err(if self.credits.is_closed() {
                        SubmitError::Closed
                    } else {
                        SubmitError::Full
                    });
                }
            }
        }
        self.send_acquired(dets, actual)
    }

    /// Asks the service to emit the staged partial tile now instead of
    /// waiting for it to fill or for the batch window to expire.
    pub fn flush(&self) -> Result<(), SubmitError> {
        self.req
            .send(BatchMsg::Flush)
            .map_err(|_| SubmitError::Closed)
    }

    /// Shots submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }
}

/// Reorder-buffer entry ordered by sequence number alone.
struct Pending(u64, Prediction);

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.0 == other.0
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// The receiving half of a session: delivers `(seq, prediction)` pairs
/// strictly in submission order, whatever order the service completes
/// them in.
///
/// Dropping this handle closes the session's credit gate: a
/// [`SubmitHandle`] blocked on the in-flight budget wakes with
/// [`SubmitError::Closed`] rather than parking forever, since only the
/// receiving half returns credits.
pub struct ReceiveHandle {
    reply_rx: mpsc::Receiver<Reply>,
    credits: Arc<Credits>,
    pending: BinaryHeap<Reverse<Pending>>,
    next_deliver: u64,
}

impl ReceiveHandle {
    pub(crate) fn new(reply_rx: mpsc::Receiver<Reply>, credits: Arc<Credits>) -> ReceiveHandle {
        ReceiveHandle {
            reply_rx,
            credits,
            pending: BinaryHeap::new(),
            next_deliver: 0,
        }
    }

    /// Buffers one raw reply and releases its credit.
    fn absorb(&mut self, reply: Reply) {
        self.credits.release();
        self.pending.push(Reverse(Pending(reply.0, reply.1)));
    }

    /// Pops the next in-order delivery if it is already buffered.
    fn pop_ready(&mut self) -> Option<(u64, Prediction)> {
        if self
            .pending
            .peek()
            .is_some_and(|Reverse(p)| p.0 == self.next_deliver)
        {
            let Reverse(Pending(seq, pred)) = self.pending.pop().expect("peeked entry vanished");
            self.next_deliver += 1;
            Some((seq, pred))
        } else {
            None
        }
    }

    /// Waits for the next in-order response.
    pub fn recv(&mut self) -> Result<(u64, Prediction), RecvError> {
        loop {
            if let Some(r) = self.pop_ready() {
                return Ok(r);
            }
            match self.reply_rx.recv() {
                Ok(reply) => self.absorb(reply),
                Err(_) => return Err(RecvError::Closed),
            }
        }
    }

    /// Waits for the next in-order response with a deadline.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(u64, Prediction), RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(r) = self.pop_ready() {
                return Ok(r);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            match self.reply_rx.recv_timeout(left) {
                Ok(reply) => self.absorb(reply),
                Err(RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Closed),
            }
        }
    }

    /// Returns the next in-order response if it is already available,
    /// without blocking.
    pub fn try_recv(&mut self) -> Option<(u64, Prediction)> {
        while let Ok(reply) = self.reply_rx.try_recv() {
            self.absorb(reply);
        }
        self.pop_ready()
    }
}

impl Drop for ReceiveHandle {
    fn drop(&mut self) {
        self.credits.close();
    }
}

/// A full duplex session: both halves in one handle for single-threaded
/// clients, or [`ClientSession::into_split`] for a submit thread and a
/// receive thread.
///
/// The combined handle's [`submit`](ClientSession::submit) is
/// deadlock-free under [`SubmitPolicy::Block`]: when the budget is
/// exhausted it pulls completed responses into the reorder buffer
/// (freeing credits) instead of waiting for a receive call that could
/// never come.
pub struct ClientSession {
    submit: SubmitHandle,
    recv: ReceiveHandle,
}

impl ClientSession {
    pub(crate) fn new(submit: SubmitHandle, recv: ReceiveHandle) -> ClientSession {
        ClientSession { submit, recv }
    }

    /// Submits one shot; see [`SubmitHandle::submit`].
    pub fn submit(&mut self, dets: &[u32], actual: u32) -> Result<u64, SubmitError> {
        self.submit.validate(dets, actual)?;
        if !self.submit.credits.try_acquire() {
            match self.submit.policy {
                SubmitPolicy::Reject => {
                    // Absorb any responses that already completed —
                    // their credits are rightfully free.
                    while let Ok(reply) = self.recv.reply_rx.try_recv() {
                        self.recv.absorb(reply);
                    }
                    if !self.submit.credits.try_acquire() {
                        return Err(SubmitError::Full);
                    }
                }
                SubmitPolicy::Block => {
                    // As in SubmitHandle::submit: staged shots behind an
                    // unexpired window hold our credits, so flush before
                    // waiting on the responses that will return them.
                    let _ = self.submit.req.send(BatchMsg::Flush);
                    loop {
                        match self.recv.reply_rx.recv() {
                            Ok(reply) => self.recv.absorb(reply),
                            Err(_) => return Err(SubmitError::Closed),
                        }
                        if self.submit.credits.try_acquire() {
                            break;
                        }
                    }
                }
            }
        }
        self.submit.send_acquired(dets, actual)
    }

    /// Responses submitted but not yet delivered by `recv`.
    pub fn outstanding(&self) -> u64 {
        self.submit.next_seq - self.recv.next_deliver
    }

    /// Waits for the next in-order response; see [`ReceiveHandle::recv`].
    ///
    /// Returns [`RecvError::Closed`] immediately when nothing is
    /// outstanding: the combined handle owns the only submit half, so
    /// no response can arrive while this call blocks. (Split halves
    /// signal closure by dropping the [`SubmitHandle`] instead.)
    pub fn recv(&mut self) -> Result<(u64, Prediction), RecvError> {
        if self.outstanding() == 0 {
            return Err(RecvError::Closed);
        }
        self.recv.recv()
    }

    /// Waits with a deadline; see [`ReceiveHandle::recv_timeout`] and
    /// the no-outstanding behavior of [`ClientSession::recv`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(u64, Prediction), RecvError> {
        if self.outstanding() == 0 {
            return Err(RecvError::Closed);
        }
        self.recv.recv_timeout(timeout)
    }

    /// Flushes the staged partial tile; see [`SubmitHandle::flush`].
    pub fn flush(&self) -> Result<(), SubmitError> {
        self.submit.flush()
    }

    /// Shots submitted so far on this session.
    pub fn submitted(&self) -> u64 {
        self.submit.submitted()
    }

    /// Splits into independent submit and receive halves for two-threaded
    /// clients (e.g. the wire front-end and the open-loop load generator).
    pub fn into_split(self) -> (SubmitHandle, ReceiveHandle) {
        (self.submit, self.recv)
    }
}
