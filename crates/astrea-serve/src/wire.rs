//! Framed socket front-end (TCP and Unix-domain) over a
//! [`DecodeService`].
//!
//! # Wire format
//!
//! All integers are little-endian. A request is one opcode byte and its
//! payload:
//!
//! | op | name   | payload |
//! |----|--------|---------|
//! | 1  | DECODE | `actual: u32`, `n: u16`, then `n × u32` strictly ascending fired-detector indices |
//! | 2  | FLUSH  | (none) — emit the staged partial tile now |
//!
//! Every DECODE gets exactly one 21-byte response frame, delivered in
//! submission order: `seq: u64`, `observables: u32`, `cycles: u64`,
//! `deferred: u8` — the connection's zero-based request counter and the
//! fields of the shot's [`Prediction`]. A malformed request (unknown
//! opcode, out-of-range or unsorted detectors) closes the connection
//! after in-flight responses drain.
//!
//! Each connection runs a reader thread (parse + submit under
//! [`SubmitPolicy::Block`], so socket reads pause when the session's
//! in-flight budget fills — backpressure reaches the peer as TCP flow
//! control) and a writer thread (in-order responses). A client that
//! submits without consuming responses should bound its own in-flight
//! count below the session budget, as [`WireClient`] does not read
//! concurrently. A client that does not — flooding past the budget and
//! then disconnecting — is torn down, not wedged: the writer's failed
//! write drops the session's receive half, which closes its credit gate
//! and wakes the reader parked on the in-flight budget, so both threads
//! exit and server shutdown never hangs on the dead connection.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use decoding_graph::Prediction;

use crate::service::DecodeService;
use crate::session::{RecvError, SubmitPolicy};

/// Request opcode: decode one shot.
pub const OP_DECODE: u8 = 1;
/// Request opcode: flush the staged partial tile.
pub const OP_FLUSH: u8 = 2;
/// Fixed size of a response frame in bytes.
pub const RESPONSE_FRAME_BYTES: usize = 21;

/// Polling interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How often the per-connection writer re-checks for reader completion.
const WRITER_POLL: Duration = Duration::from_millis(20);

/// A duplex byte stream the server can clone and forcibly close.
trait Conn: Read + Write + Send + Sized + 'static {
    fn try_clone_conn(&self) -> io::Result<Self>;
    fn shutdown_conn(&self);
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<UnixStream> {
        self.try_clone()
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// One accepted connection: a closure that forces its socket closed and
/// the reader thread's handle (which joins the writer before exiting).
struct ConnEntry {
    kill: Box<dyn Fn() + Send>,
    handle: JoinHandle<()>,
}

/// A running socket front-end. Dropping (or [`WireServer::shutdown`])
/// stops accepting, closes every connection, and joins all threads.
pub struct WireServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnEntry>>>,
    addr: Option<SocketAddr>,
    #[cfg(unix)]
    path: Option<PathBuf>,
}

impl WireServer {
    /// The bound TCP address (None for Unix-socket servers). Bind to
    /// port 0 and read this back to serve on an ephemeral port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Number of connections currently tracked. The accept loop reaps
    /// closed connections as it idles, so this converges on the number
    /// of live connections rather than growing forever.
    pub fn connections(&self) -> usize {
        self.conns.lock().expect("wire conns poisoned").len()
    }

    /// Stops the front-end and joins every connection thread. The
    /// underlying [`DecodeService`] keeps running.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let entries: Vec<ConnEntry> = {
            let mut guard = self.conns.lock().expect("wire conns poisoned");
            guard.drain(..).collect()
        };
        for e in &entries {
            (e.kill)();
        }
        for e in entries {
            let _ = e.handle.join();
        }
        #[cfg(unix)]
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_file(p);
        }
    }

    fn start<S: Conn>(
        service: Arc<DecodeService>,
        mut accept: impl FnMut() -> io::Result<Option<S>> + Send + 'static,
        addr: Option<SocketAddr>,
        #[cfg(unix)] path: Option<PathBuf>,
    ) -> WireServer {
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnEntry>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("astrea-serve-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match accept() {
                            Ok(Some(stream)) => {
                                if let Ok(entry) = spawn_connection(&service, stream) {
                                    conns.lock().expect("wire conns poisoned").push(entry);
                                }
                            }
                            Ok(None) => {
                                reap_finished(&conns);
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            // A peer resetting mid-handshake or a brief
                            // file-descriptor drought must not stop the
                            // server from ever accepting again.
                            Err(ref e) if transient_accept_error(e) => {
                                reap_finished(&conns);
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("failed to spawn accept thread")
        };
        WireServer {
            stop,
            accept_thread: Some(accept_thread),
            conns,
            addr,
            #[cfg(unix)]
            path,
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Whether an accept() failure is worth retrying: connection-level
/// errors the peer caused and resource exhaustion that drains as
/// connections close. Anything else (e.g. a dead listener) is fatal.
fn transient_accept_error(e: &io::Error) -> bool {
    if matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::OutOfMemory
    ) {
        return true;
    }
    // File-table and buffer exhaustion (ENFILE 23 / EMFILE 24 /
    // ENOBUFS 105) have no stable ErrorKind mapping; match the errno.
    matches!(e.raw_os_error(), Some(23 | 24 | 105))
}

/// Joins and forgets tracked connections whose threads have exited, so
/// a long-running server does not accumulate one handle per connection
/// ever accepted. Joining happens outside the lock; `is_finished`
/// guarantees those joins return immediately.
fn reap_finished(conns: &Mutex<Vec<ConnEntry>>) {
    let finished: Vec<ConnEntry> = {
        let mut guard = conns.lock().expect("wire conns poisoned");
        let mut done = Vec::new();
        let mut i = 0;
        while i < guard.len() {
            if guard[i].handle.is_finished() {
                done.push(guard.swap_remove(i));
            } else {
                i += 1;
            }
        }
        done
    };
    for e in finished {
        let _ = e.handle.join();
    }
}

/// Serves the framed protocol on a TCP listener bound to `addr`
/// (use `"127.0.0.1:0"` for an ephemeral port).
pub fn serve_tcp(service: Arc<DecodeService>, addr: &str) -> io::Result<WireServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    Ok(WireServer::start(
        service,
        move || match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                let _ = s.set_nodelay(true);
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        },
        Some(local),
        #[cfg(unix)]
        None,
    ))
}

/// Serves the framed protocol on a Unix-domain socket at `path`
/// (unlinked again at shutdown).
#[cfg(unix)]
pub fn serve_unix(service: Arc<DecodeService>, path: &std::path::Path) -> io::Result<WireServer> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    Ok(WireServer::start(
        service,
        move || match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        },
        None,
        Some(path.to_path_buf()),
    ))
}

/// Spawns the reader/writer thread pair for one accepted connection.
fn spawn_connection<S: Conn>(service: &DecodeService, stream: S) -> io::Result<ConnEntry> {
    let writer_stream = stream.try_clone_conn()?;
    let kill_stream = stream.try_clone_conn()?;
    let (mut submit, mut recv) = service.session(SubmitPolicy::Block).into_split();
    let submitted = Arc::new(AtomicU64::new(0));
    let reader_done = Arc::new(AtomicBool::new(false));

    let writer = {
        let submitted = Arc::clone(&submitted);
        let reader_done = Arc::clone(&reader_done);
        std::thread::Builder::new()
            .name("astrea-serve-conn-w".into())
            .spawn(move || {
                let mut stream = writer_stream;
                let mut forwarded = 0u64;
                loop {
                    if reader_done.load(Ordering::Acquire)
                        && forwarded >= submitted.load(Ordering::Acquire)
                    {
                        break;
                    }
                    match recv.recv_timeout(WRITER_POLL) {
                        Ok((seq, pred)) => {
                            if write_response(&mut stream, seq, &pred).is_err() {
                                // Peer gone: exiting drops `recv`, whose
                                // Drop closes the credit gate and wakes a
                                // reader parked on the in-flight budget.
                                break;
                            }
                            forwarded += 1;
                        }
                        Err(RecvError::Timeout) => {}
                        Err(RecvError::Closed) => break,
                    }
                }
                stream.shutdown_conn();
            })
            .expect("failed to spawn connection writer")
    };

    let handle = std::thread::Builder::new()
        .name("astrea-serve-conn-r".into())
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_request(&mut stream) {
                    Ok(Some(Request::Decode { dets, actual })) => {
                        if submit.submit(&dets, actual).is_err() {
                            break;
                        }
                        submitted.fetch_add(1, Ordering::Release);
                    }
                    Ok(Some(Request::Flush)) => {
                        if submit.flush().is_err() {
                            break;
                        }
                    }
                    Ok(None) | Err(_) => break,
                }
            }
            reader_done.store(true, Ordering::Release);
            // Dropping the submit half lets the writer observe Closed
            // once every in-flight response has drained.
            drop(submit);
            let _ = writer.join();
        })
        .expect("failed to spawn connection reader");

    Ok(ConnEntry {
        kill: Box::new(move || kill_stream.shutdown_conn()),
        handle,
    })
}

enum Request {
    Decode { dets: Vec<u32>, actual: u32 },
    Flush,
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads one request frame; `Ok(None)` on clean EOF before an opcode.
fn read_request<R: Read>(r: &mut R) -> io::Result<Option<Request>> {
    let mut op = [0u8; 1];
    match r.read_exact(&mut op) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    match op[0] {
        OP_DECODE => {
            let actual = read_u32(r)?;
            let n = read_u16(r)? as usize;
            let mut dets = Vec::with_capacity(n);
            for _ in 0..n {
                dets.push(read_u32(r)?);
            }
            Ok(Some(Request::Decode { dets, actual }))
        }
        OP_FLUSH => Ok(Some(Request::Flush)),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "unknown opcode")),
    }
}

fn write_response<W: Write>(w: &mut W, seq: u64, pred: &Prediction) -> io::Result<()> {
    let mut frame = [0u8; RESPONSE_FRAME_BYTES];
    frame[0..8].copy_from_slice(&seq.to_le_bytes());
    frame[8..12].copy_from_slice(&pred.observables.to_le_bytes());
    frame[12..20].copy_from_slice(&pred.cycles.to_le_bytes());
    frame[20] = pred.deferred as u8;
    w.write_all(&frame)
}

/// A simple synchronous client for the framed protocol.
///
/// Submission-order delivery means `recv` after `k` submissions yields
/// the responses for sequence numbers `0..k` in order. The client does
/// not read concurrently with writes, so keep the number of submitted
/// but unread shots below the server's session budget.
pub struct WireClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    submitted: u64,
}

impl WireClient {
    /// Connects over TCP.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        Ok(WireClient {
            reader: Box::new(reader),
            writer: Box::new(stream),
            submitted: 0,
        })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> io::Result<WireClient> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(WireClient {
            reader: Box::new(reader),
            writer: Box::new(stream),
            submitted: 0,
        })
    }

    /// Sends one DECODE request; returns its sequence number.
    pub fn submit(&mut self, dets: &[u32], actual: u32) -> io::Result<u64> {
        if dets.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "too many detectors for one frame",
            ));
        }
        let mut buf = Vec::with_capacity(7 + 4 * dets.len());
        buf.push(OP_DECODE);
        buf.extend_from_slice(&actual.to_le_bytes());
        buf.extend_from_slice(&(dets.len() as u16).to_le_bytes());
        for &d in dets {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        let seq = self.submitted;
        self.submitted += 1;
        Ok(seq)
    }

    /// Sends a FLUSH request.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.write_all(&[OP_FLUSH])?;
        self.writer.flush()
    }

    /// Reads the next response frame.
    pub fn recv(&mut self) -> io::Result<(u64, Prediction)> {
        let seq = read_u64(&mut self.reader)?;
        let observables = read_u32(&mut self.reader)?;
        let cycles = read_u64(&mut self.reader)?;
        let mut deferred = [0u8; 1];
        self.reader.read_exact(&mut deferred)?;
        Ok((
            seq,
            Prediction {
                observables,
                cycles,
                deferred: deferred[0] != 0,
            },
        ))
    }

    /// Shots submitted so far on this connection.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }
}
