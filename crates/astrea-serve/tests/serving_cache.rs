//! The `HardSyndromeCache` meets its intended workload: a correlated,
//! replayed serving stream.
//!
//! The cache memoizes full predictions for Hamming-weight 5–10
//! syndromes. On the cold i.i.d. streams of the profiling harness it
//! mostly misses; serving traffic is different — clients replay
//! correlated syndromes, so the same hard shot recurs. This regression
//! test drives a load-gen workload with a high replay fraction through
//! a single-worker service and asserts, via `PipelineCounters`, the
//! hit/miss split implied by the stream: every hard shot consults the
//! cache exactly once, every distinct hard syndrome misses at least
//! once (the 2-way sets may evict under conflict, so repeats beyond
//! that are hits-or-misses but never phantom hits), and the replayed
//! stream hits. Predictions stay replay-exact: bit-identical to the
//! offline decode, equal across repeats and across runs.

use std::collections::HashSet;
use std::sync::Arc;

use astrea_core::{decode_slice, BatchDecoderFactory, SyndromeBatch};
use astrea_serve::{
    build_workload, run_load, ArrivalMode, DecodeService, LoadGenConfig, ServeConfig,
};
use blossom_mwpm::MwpmDecoder;
use decoding_graph::{DecodeScratch, Decoder, DecodingContext, Prediction};
use qec_circuit::NoiseModel;
use surface_code::SurfaceCode;

const HARD_MIN: usize = astrea_core::HARD_CACHE_MIN_HW;
const HARD_MAX: usize = astrea_core::HARD_CACHE_MAX_HW;

fn context() -> Arc<DecodingContext> {
    let code = SurfaceCode::new(5).expect("valid distance");
    Arc::new(DecodingContext::for_memory_experiment(
        &code,
        NoiseModel::depolarizing(5e-3),
    ))
}

fn factory() -> Arc<BatchDecoderFactory> {
    Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn offline(ctx: &DecodingContext, stream: &SyndromeBatch) -> Vec<Prediction> {
    let mut dec = MwpmDecoder::new(ctx.gwt());
    let mut scratch = DecodeScratch::new();
    decode_slice(&mut dec, &mut scratch, stream, 0..stream.len()).predictions
}

fn run(ctx: &Arc<DecodingContext>, streams: &[SyndromeBatch]) -> astrea_serve::LoadReport {
    // One worker: one cache, so the hit/miss split is exactly the
    // stream's repeat structure (no cross-worker partitioning).
    let service = DecodeService::new(
        Arc::clone(ctx),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        factory(),
    );
    let report = run_load(&service, streams, ArrivalMode::Closed);
    service.shutdown();
    report
}

#[test]
fn replayed_serving_stream_hits_the_hard_cache_exactly() {
    let ctx = context();
    let cfg = LoadGenConfig {
        clients: 2,
        shots_per_client: 1_500,
        mode: ArrivalMode::Closed,
        replay_fraction: 0.5,
        seed: 2024,
    };
    let streams = build_workload(&ctx, &cfg);

    // The repeat structure of the workload, counted over every client
    // (one worker serves them all): every hard shot consults the cache
    // once, and a distinct syndrome cannot hit before it has missed.
    let mut hard_total = 0u64;
    let mut distinct: HashSet<Vec<u32>> = HashSet::new();
    for s in &streams {
        for i in 0..s.len() {
            let hw = s.hamming_weight(i);
            if (HARD_MIN..=HARD_MAX).contains(&hw) {
                hard_total += 1;
                distinct.insert(s.detectors(i).to_vec());
            }
        }
    }
    assert!(
        hard_total > 100,
        "workload produced only {hard_total} hard shots — not a cache test"
    );
    assert!(
        hard_total > distinct.len() as u64,
        "replay fraction produced no repeated hard syndromes"
    );

    let report = run(&ctx, &streams);
    let c = &report.stats.counters;
    assert_eq!(
        c.hard_cache_hits + c.hard_cache_misses,
        hard_total,
        "every hard shot must consult the cache exactly once"
    );
    assert!(
        c.hard_cache_misses >= distinct.len() as u64,
        "a distinct hard syndrome hit before it ever missed"
    );
    assert!(c.hard_cache_hits > 0, "the replayed stream never hit");

    // Replay-exact: serving predictions equal the offline decode, and
    // repeats of a syndrome (cache hits included) predict identically.
    for (stream, outcome) in streams.iter().zip(&report.outcomes) {
        assert_eq!(outcome.predictions, offline(&ctx, stream));
        let mut by_syndrome: std::collections::HashMap<Vec<u32>, Prediction> =
            std::collections::HashMap::new();
        for i in 0..stream.len() {
            let p = outcome.predictions[i];
            let prev = by_syndrome.insert(stream.detectors(i).to_vec(), p);
            if let Some(prev) = prev {
                assert_eq!(prev, p, "a replayed syndrome changed its prediction");
            }
        }
    }

    // And across services: a cold second run reproduces the first
    // bit-for-bit (the cache only replays the decoder).
    let second = run(&ctx, &streams);
    for (a, b) in report.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(
            a.predictions, b.predictions,
            "serving is not run-reproducible"
        );
    }
    assert_eq!(second.stats.counters.hard_cache_hits, c.hard_cache_hits);
}

#[test]
fn disabling_the_cache_changes_counters_but_not_predictions() {
    let ctx = context();
    let cfg = LoadGenConfig {
        clients: 1,
        shots_per_client: 600,
        mode: ArrivalMode::Closed,
        replay_fraction: 0.6,
        seed: 77,
    };
    let streams = build_workload(&ctx, &cfg);

    let with_cache = run(&ctx, &streams);
    let service = DecodeService::new(
        Arc::clone(&ctx),
        ServeConfig {
            workers: 1,
            hard_cache_entries: 0,
            ..ServeConfig::default()
        },
        factory(),
    );
    let without_cache = run_load(&service, &streams, ArrivalMode::Closed);
    service.shutdown();

    assert!(with_cache.stats.counters.hard_cache_hits > 0);
    assert_eq!(without_cache.stats.counters.hard_cache_hits, 0);
    assert_eq!(without_cache.stats.counters.hard_cache_misses, 0);
    assert_eq!(
        with_cache.outcomes[0].predictions, without_cache.outcomes[0].predictions,
        "the cache must be invisible in the predictions"
    );
}
