//! Property tests: the blossom algorithm against the independent subset-DP
//! solver, and structural invariants of the MWPM decoder.

use blossom_mwpm::{dense_blossom, subset_dp, MwpmDecoder};
use decoding_graph::DecodingContext;
use proptest::prelude::*;
use qec_circuit::NoiseModel;
use surface_code::SurfaceCode;

/// Random even-sized complete graphs with positive integer weights.
fn weight_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(1i64..1000, n), n).prop_map(move |mut m| {
        // Mirror the upper triangle onto the lower one and zero the
        // diagonal (symmetric indexing keeps the range loop readable).
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..i {
                m[i][j] = m[j][i];
            }
            m[i][i] = 0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn blossom_equals_dp_on_random_graphs(
        n in prop::sample::select(vec![2usize, 4, 6, 8, 10, 12]),
        seed in any::<u32>(),
    ) {
        let w = move |u: usize, v: usize| {
            let (u, v) = (u.min(v) as u64, u.max(v) as u64);
            ((u * 2654435761 + v * 40503 + seed as u64)
                .wrapping_mul(2246822519) >> 33) as i64 % 997 + 1
        };
        let (mate, blossom_cost) = dense_blossom::min_weight_perfect_matching(n, w);
        let (_, dp_cost) = subset_dp::solve(n, |i, j| w(i, j) as f64, |_| 1e15);
        prop_assert_eq!(blossom_cost as f64, dp_cost);
        // The matching must be a perfect involution.
        for (u, &v) in mate.iter().enumerate() {
            prop_assert_ne!(u, v);
            prop_assert_eq!(mate[v], u);
        }
    }

    #[test]
    fn blossom_equals_dp_on_explicit_matrices(m in weight_matrix(8)) {
        let (_, blossom_cost) =
            dense_blossom::min_weight_perfect_matching(8, |u, v| m[u][v]);
        let (_, dp_cost) = subset_dp::solve(8, |i, j| m[i][j] as f64, |_| 1e15);
        prop_assert_eq!(blossom_cost as f64, dp_cost);
    }

    #[test]
    fn dp_with_boundary_never_beats_or_loses_to_exhaustive_small(
        n in 1usize..6,
        seed in any::<u32>(),
    ) {
        // For tiny n compare against brute-force enumeration including
        // boundary choices.
        let w = move |u: usize, v: usize| {
            let (u, v) = (u.min(v) as u64, u.max(v) as u64);
            ((u * 31 + v * 17 + seed as u64) % 50 + 1) as f64
        };
        let b = move |u: usize| ((u as u64 * 13 + seed as u64) % 50 + 1) as f64;
        let (mate, cost) = subset_dp::solve(n, w, b);

        fn brute(nodes: &[usize], w: &dyn Fn(usize, usize) -> f64, b: &dyn Fn(usize) -> f64) -> f64 {
            match nodes {
                [] => 0.0,
                [first, rest @ ..] => {
                    let mut best = b(*first) + brute(rest, w, b);
                    for (idx, &j) in rest.iter().enumerate() {
                        let mut rem = rest.to_vec();
                        rem.remove(idx);
                        best = best.min(w(*first, j) + brute(&rem, w, b));
                    }
                    best
                }
            }
        }
        let nodes: Vec<usize> = (0..n).collect();
        prop_assert!((cost - brute(&nodes, &w, &b)).abs() < 1e-9);
        // Mate must be an involution with boundary slots.
        for (u, m) in mate.iter().enumerate() {
            if let Some(v) = m {
                prop_assert_eq!(mate[*v], Some(u));
            }
        }
    }
}

#[test]
fn mwpm_solution_weight_is_minimal_over_random_alternatives() {
    // On real sampled syndromes, no random valid alternative assignment may
    // have lower weight than the decoder's solution.
    use qec_circuit::DemSampler;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let code = SurfaceCode::new(5).unwrap();
    let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(5e-3));
    let decoder = MwpmDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(2024);

    let mut checked = 0;
    for _ in 0..300 {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() || shot.detectors.len() > 12 {
            continue;
        }
        let sol = decoder.decode_full(&shot.detectors);
        assert!(sol.is_perfect_over(&shot.detectors));

        // Generate random alternatives: shuffle, pair greedily, send a
        // random subset to the boundary.
        for _ in 0..20 {
            let mut order = shot.detectors.clone();
            order.shuffle(&mut rng);
            let mut alt_weight = 0.0;
            let mut i = 0;
            while i < order.len() {
                if i + 1 < order.len() && rng.gen_bool(0.7) {
                    alt_weight += ctx.gwt().pair_weight(order[i], order[i + 1]);
                    i += 2;
                } else {
                    alt_weight += ctx.gwt().boundary_weight(order[i]);
                    i += 1;
                }
            }
            assert!(
                sol.weight <= alt_weight + 1e-6,
                "random alternative ({alt_weight}) beat MWPM ({}) on {:?}",
                sol.weight,
                shot.detectors
            );
        }
        checked += 1;
    }
    assert!(checked > 30, "too few syndromes checked: {checked}");
}
