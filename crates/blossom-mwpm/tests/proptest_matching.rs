//! Property tests: the blossom algorithm against the independent subset-DP
//! solver, the sparse scratch solver against the dense oracle on real
//! decoding-graph syndromes, and structural invariants of the MWPM decoder.

use blossom_mwpm::{dense_blossom, sparse_blossom, subset_dp, MwpmDecoder};
use decoding_graph::{DecodingContext, MatchingGraph, SparseBlossomScratch};
use proptest::prelude::*;
use qec_circuit::NoiseModel;
use std::cell::RefCell;
use std::sync::OnceLock;
use surface_code::SurfaceCode;

/// Mirrors of the decoder's private fixed-point scale and weight clamp
/// (`blossom_mwpm::decoder`): the sparse-vs-dense tests below feed both
/// solvers the exact integer weights the production deep-tail path uses.
const BLOSSOM_SCALE: f64 = 65_536.0;
const WEIGHT_CLAMP: f64 = 1e4;

/// Decoding contexts for d ∈ {3, 5, 7, 9} at p = 10⁻³, built once (the
/// d = 9 all-pairs Dijkstra is the expensive part).
fn grid() -> &'static [DecodingContext] {
    static GRID: OnceLock<Vec<DecodingContext>> = OnceLock::new();
    GRID.get_or_init(|| {
        [3usize, 5, 7, 9]
            .into_iter()
            .map(|d| {
                let code = SurfaceCode::new(d).unwrap();
                DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3))
            })
            .collect()
    })
}

/// Random error-chain syndrome: short walks along matching-graph edges
/// XOR-flip their endpoints (interior detectors cancel pairwise), which
/// reproduces the clustered detector sets real noise generates. Chains
/// are added until at least `target` detectors are hot, so the result
/// has Hamming weight in `target..target + 2`.
fn chain_syndrome(g: &MatchingGraph, target: usize, seed: u64) -> Vec<u32> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_detectors() as u32;
    let mut hot = vec![false; n as usize];
    let mut count = 0usize;
    let flip = |hot: &mut Vec<bool>, count: &mut usize, d: u32| {
        let slot = &mut hot[d as usize];
        *count = if *slot { *count - 1 } else { *count + 1 };
        *slot = !*slot;
    };
    while count < target {
        let mut at = rng.gen_range(0..n);
        flip(&mut hot, &mut count, at);
        for _ in 0..rng.gen_range(1usize..=4) {
            let neighbors: Vec<u32> = g.neighbors(at).map(|(v, _)| v).collect();
            let Some(&next) = neighbors.get(rng.gen_range(0..neighbors.len().max(1))) else {
                break;
            };
            flip(&mut hot, &mut count, at);
            flip(&mut hot, &mut count, next);
            at = next;
        }
    }
    (0..n).filter(|&d| hot[d as usize]).collect()
}

/// Random even-sized complete graphs with positive integer weights.
fn weight_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(1i64..1000, n), n).prop_map(move |mut m| {
        // Mirror the upper triangle onto the lower one and zero the
        // diagonal (symmetric indexing keeps the range loop readable).
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..i {
                m[i][j] = m[j][i];
            }
            m[i][i] = 0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn blossom_equals_dp_on_random_graphs(
        n in prop::sample::select(vec![2usize, 4, 6, 8, 10, 12]),
        seed in any::<u32>(),
    ) {
        let w = move |u: usize, v: usize| {
            let (u, v) = (u.min(v) as u64, u.max(v) as u64);
            ((u * 2654435761 + v * 40503 + seed as u64)
                .wrapping_mul(2246822519) >> 33) as i64 % 997 + 1
        };
        let (mate, blossom_cost) = dense_blossom::min_weight_perfect_matching(n, w);
        let (_, dp_cost) = subset_dp::solve(n, |i, j| w(i, j) as f64, |_| 1e15);
        prop_assert_eq!(blossom_cost as f64, dp_cost);
        // The matching must be a perfect involution.
        for (u, &v) in mate.iter().enumerate() {
            prop_assert_ne!(u, v);
            prop_assert_eq!(mate[v], u);
        }
    }

    #[test]
    fn blossom_equals_dp_on_explicit_matrices(m in weight_matrix(8)) {
        let (_, blossom_cost) =
            dense_blossom::min_weight_perfect_matching(8, |u, v| m[u][v]);
        let (_, dp_cost) = subset_dp::solve(8, |i, j| m[i][j] as f64, |_| 1e15);
        prop_assert_eq!(blossom_cost as f64, dp_cost);
    }

    #[test]
    fn dp_with_boundary_never_beats_or_loses_to_exhaustive_small(
        n in 1usize..6,
        seed in any::<u32>(),
    ) {
        // For tiny n compare against brute-force enumeration including
        // boundary choices.
        let w = move |u: usize, v: usize| {
            let (u, v) = (u.min(v) as u64, u.max(v) as u64);
            ((u * 31 + v * 17 + seed as u64) % 50 + 1) as f64
        };
        let b = move |u: usize| ((u as u64 * 13 + seed as u64) % 50 + 1) as f64;
        let (mate, cost) = subset_dp::solve(n, w, b);

        fn brute(nodes: &[usize], w: &dyn Fn(usize, usize) -> f64, b: &dyn Fn(usize) -> f64) -> f64 {
            match nodes {
                [] => 0.0,
                [first, rest @ ..] => {
                    let mut best = b(*first) + brute(rest, w, b);
                    for (idx, &j) in rest.iter().enumerate() {
                        let mut rem = rest.to_vec();
                        rem.remove(idx);
                        best = best.min(w(*first, j) + brute(&rem, w, b));
                    }
                    best
                }
            }
        }
        let nodes: Vec<usize> = (0..n).collect();
        prop_assert!((cost - brute(&nodes, &w, &b)).abs() < 1e-9);
        // Mate must be an involution with boundary slots.
        for (u, m) in mate.iter().enumerate() {
            if let Some(v) = m {
                prop_assert_eq!(mate[*v], Some(u));
            }
        }
    }
}

thread_local! {
    /// One scratch arena reused across every proptest case below —
    /// exactly the per-worker reuse pattern of the streamed pipeline, so
    /// the equality checks also cover cross-solve state carried in the
    /// arena (stale blossom rows, vis epochs, grown allocations).
    static SCRATCH: RefCell<SparseBlossomScratch> = RefCell::new(SparseBlossomScratch::new());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sparse scratch solver reproduces the dense oracle's matching
    /// — identical total weight *and* identical mate assignment — on
    /// random decoding-graph syndromes across d ∈ {3, 5, 7, 9}, Hamming
    /// weights up to 24, for exact and quantized weights, through one
    /// reused scratch arena.
    #[test]
    fn sparse_matches_dense_on_decoding_graph_syndromes(
        ctx_idx in 0usize..4,
        target_hw in 5usize..=22,
        seed in any::<u64>(),
        quantized in any::<bool>(),
    ) {
        let ctx = &grid()[ctx_idx];
        let gwt = ctx.gwt();
        let target = target_hw.min(ctx.graph().num_detectors().saturating_sub(2));
        let dets = chain_syndrome(ctx.graph(), target, seed);
        prop_assert!(!dets.is_empty());
        prop_assert!(dets.len() <= 24);

        // The production deep-tail weight closure: clamped effective
        // weights in fixed point, with a virtual boundary node when the
        // syndrome weight is odd (mirrors `MwpmDecoder::decode_blossom`).
        let k = dets.len();
        let n = if k.is_multiple_of(2) { k } else { k + 1 };
        let pair_w = |i: u32, j: u32| -> f64 {
            if quantized {
                gwt.pair_weight_q(i, j) as f64 / gwt.scale()
            } else {
                gwt.pair_weight(i, j)
            }
        };
        let boundary_w = |i: u32| -> f64 {
            if quantized {
                gwt.boundary_weight_q(i) as f64 / gwt.scale()
            } else {
                gwt.boundary_weight(i)
            }
        };
        let wi = |i: usize, j: usize| -> i64 {
            let eff = if i >= k || j >= k {
                let real = if i >= k { j } else { i };
                boundary_w(dets[real]).min(WEIGHT_CLAMP)
            } else {
                let direct = pair_w(dets[i], dets[j]);
                let via_boundary = boundary_w(dets[i]) + boundary_w(dets[j]);
                direct.min(via_boundary).min(WEIGHT_CLAMP)
            };
            (eff * BLOSSOM_SCALE).round() as i64 + 1
        };

        let (dense_mate, dense_total) = dense_blossom::min_weight_perfect_matching(n, wi);
        let (sparse_total, sparse_mate) = SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let total = sparse_blossom::min_weight_perfect_matching_scratch(n, wi, &mut scratch);
            // 1-based in the arena; shift to the dense convention.
            let mate: Vec<usize> = (1..=n).map(|u| scratch.mate[u] - 1).collect();
            (total, mate)
        });
        prop_assert_eq!(dense_total, sparse_total,
            "total weight diverged on {:?} (quantized: {})", &dets, quantized);
        prop_assert_eq!(&dense_mate, &sparse_mate,
            "mate assignment diverged on {:?} (quantized: {})", &dets, quantized);
    }
}

#[test]
fn mwpm_solution_weight_is_minimal_over_random_alternatives() {
    // On real sampled syndromes, no random valid alternative assignment may
    // have lower weight than the decoder's solution.
    use qec_circuit::DemSampler;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let code = SurfaceCode::new(5).unwrap();
    let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(5e-3));
    let decoder = MwpmDecoder::new(ctx.gwt());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(2024);

    let mut checked = 0;
    for _ in 0..300 {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() || shot.detectors.len() > 12 {
            continue;
        }
        let sol = decoder.decode_full(&shot.detectors);
        assert!(sol.is_perfect_over(&shot.detectors));

        // Generate random alternatives: shuffle, pair greedily, send a
        // random subset to the boundary.
        for _ in 0..20 {
            let mut order = shot.detectors.clone();
            order.shuffle(&mut rng);
            let mut alt_weight = 0.0;
            let mut i = 0;
            while i < order.len() {
                if i + 1 < order.len() && rng.gen_bool(0.7) {
                    alt_weight += ctx.gwt().pair_weight(order[i], order[i + 1]);
                    i += 2;
                } else {
                    alt_weight += ctx.gwt().boundary_weight(order[i]);
                    i += 1;
                }
            }
            assert!(
                sol.weight <= alt_weight + 1e-6,
                "random alternative ({alt_weight}) beat MWPM ({}) on {:?}",
                sol.weight,
                shot.detectors
            );
        }
        checked += 1;
    }
    assert!(checked > 30, "too few syndromes checked: {checked}");
}
