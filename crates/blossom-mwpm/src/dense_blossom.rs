//! A dense `O(n³)` primal–dual blossom algorithm for maximum-weight
//! matching on general graphs.
//!
//! This is the classical Edmonds blossom-shrinking algorithm in its dense
//! formulation (the same algorithmic family as Kolmogorov's BlossomV, which
//! the Astrea paper uses as its software baseline). Vertices are 1-based
//! internally; contracted blossoms occupy ids `n+1..=2n`. Duals (`lab`) are
//! maintained so that every tight edge (`e_delta == 0`) can join the
//! alternating forest; each phase either augments the matching, grows the
//! forest, shrinks a blossom, expands a zero-dual blossom, or adjusts duals.
//!
//! On a complete graph with strictly positive weights, the maximum-weight
//! matching is perfect, which [`min_weight_perfect_matching`] exploits via
//! the standard weight reflection `w' = W − w`.
//!
//! Correctness is established by exhaustive cross-validation against the
//! independent subset-DP solver in this crate's property tests.

use std::collections::VecDeque;

const INF: i64 = i64::MAX / 4;

#[derive(Debug, Clone, Copy, Default)]
struct EdgeT {
    u: usize,
    v: usize,
    w: i64,
}

/// Scratch state for one maximum-weight matching computation.
#[derive(Debug)]
struct Solver {
    n: usize,
    n_x: usize,
    g: Vec<EdgeT>,
    stride: usize,
    lab: Vec<i64>,
    mate: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower_from: Vec<usize>,
    ff_stride: usize,
    s: Vec<i8>,
    vis: Vec<usize>,
    vis_t: usize,
    flower: Vec<Vec<usize>>,
    q: VecDeque<usize>,
}

impl Solver {
    fn new(n: usize, weights: impl Fn(usize, usize) -> i64) -> Solver {
        let stride = 2 * n + 1;
        let mut g = vec![EdgeT::default(); stride * stride];
        for u in 1..=n {
            for v in 1..=n {
                g[u * stride + v] = EdgeT {
                    u,
                    v,
                    w: if u == v { 0 } else { weights(u - 1, v - 1) },
                };
            }
        }
        let ff_stride = n + 1;
        let mut flower_from = vec![0usize; stride * ff_stride];
        for u in 1..=n {
            flower_from[u * ff_stride + u] = u;
        }
        let mut st = vec![0usize; stride];
        for (u, slot) in st.iter_mut().enumerate().take(n + 1) {
            *slot = u;
        }
        let w_max = (1..=n)
            .flat_map(|u| (1..=n).map(move |v| (u, v)))
            .map(|(u, v)| g[u * stride + v].w)
            .max()
            .unwrap_or(0);
        let mut lab = vec![0i64; stride];
        for l in lab.iter_mut().take(n + 1).skip(1) {
            *l = w_max;
        }
        Solver {
            n,
            n_x: n,
            g,
            stride,
            lab,
            mate: vec![0; stride],
            slack: vec![0; stride],
            st,
            pa: vec![0; stride],
            flower_from,
            ff_stride,
            s: vec![-1; stride],
            vis: vec![0; stride],
            vis_t: 0,
            flower: vec![Vec::new(); stride],
            q: VecDeque::new(),
        }
    }

    #[inline]
    fn e(&self, u: usize, v: usize) -> EdgeT {
        self.g[u * self.stride + v]
    }

    #[inline]
    fn e_delta(&self, e: EdgeT) -> i64 {
        self.lab[e.u] + self.lab[e.v] - self.e(e.u, e.v).w * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0 || self.e_delta(self.e(u, x)) < self.e_delta(self.e(self.slack[x], x))
        {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.e(u, x).w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            let members = self.flower[x].clone();
            for t in members {
                self.q_push(t);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let members = self.flower[x].clone();
            for t in members {
                self.set_st(t, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b]
            .iter()
            .position(|&x| x == xr)
            .expect("xr must be a member of blossom b");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        let e = self.e(u, v);
        self.mate[u] = e.v;
        if u > self.n {
            let xr = self.flower_from[u * self.ff_stride + e.u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let (a, b) = (self.flower[u][i], self.flower[u][i ^ 1]);
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.pa[xnv];
            self.set_match(xnv, self.st[pa_xnv]);
            let (nu, nv) = (self.st[pa_xnv], xnv);
            u = nu;
            v = nv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        self.flower[b].clear();
        self.flower[b].push(lca);
        // Walk u's side of the cycle up to the LCA.
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        // Walk v's side.
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.g[b * self.stride + x].w = 0;
            self.g[x * self.stride + b].w = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b * self.ff_stride + x] = 0;
        }
        let members = self.flower[b].clone();
        for &xs in &members {
            for x in 1..=self.n_x {
                if self.g[b * self.stride + x].w == 0
                    || self.e_delta(self.e(xs, x)) < self.e_delta(self.e(b, x))
                {
                    self.g[b * self.stride + x] = self.e(xs, x);
                    self.g[x * self.stride + b] = self.e(x, xs);
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs * self.ff_stride + x] != 0 {
                    self.flower_from[b * self.ff_stride + x] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let members = self.flower[b].clone();
        for &xs in &members {
            self.set_st(xs, xs);
        }
        let xr = self.flower_from[b * self.ff_stride + self.e(b, self.pa[b]).u];
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.e(xns, xs).u;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for i in (pr + 1)..self.flower[b].len() {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    /// Returns `true` if an augmenting path was found and applied.
    fn on_found_edge(&mut self, e: EdgeT) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.s[v] == -1 {
            self.pa[v] = e.u;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: returns `true` if the matching grew by one pair.
    fn matching_phase(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.e(u, v).w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(self.e(u, v)) == 0 {
                            if self.on_found_edge(self.e(u, v)) {
                                return true;
                            }
                        } else {
                            let stv = self.st[v];
                            self.update_slack(u, stv);
                        }
                    }
                }
            }
            // Dual adjustment.
            let mut d = INF;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(self.e(self.slack[x], x));
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false; // Duals exhausted: no augmenting path.
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += 2 * d,
                        1 => self.lab[b] -= 2 * d,
                        _ => {}
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(self.e(self.slack[x], x)) == 0
                    && self.on_found_edge(self.e(self.slack[x], x))
                {
                    return true;
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    fn run(&mut self) -> Vec<usize> {
        while self.matching_phase() {}
        self.mate[1..=self.n].to_vec()
    }
}

/// Computes a maximum-weight matching on the complete graph over `n`
/// vertices with the given strictly-positive edge weights.
///
/// Returns `mate`, where `mate[i] = Some(j)` means vertices `i` and `j`
/// (0-based) are matched; unmatched vertices map to `None`.
///
/// # Panics
///
/// Panics if any weight is non-positive or if `n == 0`.
pub fn max_weight_matching(n: usize, weights: impl Fn(usize, usize) -> i64) -> Vec<Option<usize>> {
    assert!(n > 0, "empty graph");
    let w = |u: usize, v: usize| {
        let x = weights(u, v);
        assert!(
            x > 0,
            "weights must be strictly positive, got {x} for ({u}, {v})"
        );
        x
    };
    let mut solver = Solver::new(n, w);
    let mate = solver.run();
    mate.iter().map(|&m| (m != 0).then(|| m - 1)).collect()
}

/// Computes a **minimum-weight perfect matching** on the complete graph
/// over an even number of vertices.
///
/// Uses the weight reflection `w' = W − w` with `W > max(w)`, under which
/// the maximum-weight matching of the reflected graph is the minimum-weight
/// perfect matching of the original (a maximum-weight matching on a
/// complete graph with positive weights is always perfect).
///
/// Returns `(mate, total_weight)` with `mate[i] = j`.
///
/// ```
/// use blossom_mwpm::dense_blossom::min_weight_perfect_matching;
///
/// // (0,1) and (2,3) cheap, everything else expensive.
/// let cheap = [(0usize, 1usize), (2, 3)];
/// let (mate, total) = min_weight_perfect_matching(4, |u, v| {
///     let e = (u.min(v), u.max(v));
///     if cheap.contains(&e) { 1 } else { 10 }
/// });
/// assert_eq!(total, 2);
/// assert_eq!(mate[0], 1);
/// assert_eq!(mate[2], 3);
/// ```
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn min_weight_perfect_matching(
    n: usize,
    weights: impl Fn(usize, usize) -> i64,
) -> (Vec<usize>, i64) {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "need an even, positive vertex count, got {n}"
    );
    let weights = &weights;
    let w_max = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .map(|(u, v)| weights(u, v))
        .max()
        .expect("at least one edge");
    let reflect = move |u: usize, v: usize| w_max - weights(u, v) + 1;
    let mate = max_weight_matching(n, reflect);
    let mut out = vec![usize::MAX; n];
    let mut total = 0i64;
    for (u, m) in mate.iter().enumerate() {
        let v = m.unwrap_or_else(|| panic!("vertex {u} left unmatched — not a perfect matching"));
        out[u] = v;
        if u < v {
            total += weights(u, v);
        }
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vertices() {
        let (mate, w) = min_weight_perfect_matching(2, |_, _| 7);
        assert_eq!(mate, vec![1, 0]);
        assert_eq!(w, 7);
    }

    #[test]
    fn four_vertices_prefers_cheap_pairs() {
        // (0,1) and (2,3) cheap; everything else expensive.
        let w = |u: usize, v: usize| {
            let (u, v) = (u.min(v), u.max(v));
            match (u, v) {
                (0, 1) | (2, 3) => 1,
                _ => 10,
            }
        };
        let (mate, total) = min_weight_perfect_matching(4, w);
        assert_eq!(total, 2);
        assert_eq!(mate[0], 1);
        assert_eq!(mate[2], 3);
    }

    #[test]
    fn forced_blossom_case() {
        // A 6-vertex instance engineered so the greedy pairing is suboptimal
        // and an odd cycle (blossom) forms during the search: a 5-cycle
        // 0-1-2-3-4 of cheap edges plus vertex 5 attached to 0.
        let w = |u: usize, v: usize| {
            let (u, v) = (u.min(v), u.max(v));
            match (u, v) {
                (0, 1) | (1, 2) | (2, 3) | (3, 4) => 2,
                (0, 4) => 2,
                (0, 5) => 3,
                _ => 50,
            }
        };
        let (mate, total) = min_weight_perfect_matching(6, w);
        // Optimal: (0,5)=3, (1,2)=2, (3,4)=2 → 7.
        assert_eq!(total, 7);
        assert_eq!(mate[5], 0);
    }

    #[test]
    fn matches_subset_dp_on_fixed_instances() {
        // Deterministic pseudo-random complete graphs, compared against the
        // independent subset-DP solver (boundary disabled via huge cost).
        for n in [2usize, 4, 6, 8, 10, 12] {
            for seed in 0..8u64 {
                let w = move |u: usize, v: usize| {
                    let (u, v) = (u.min(v), u.max(v));
                    ((u as u64 * 2654435761 + v as u64 * 40503 + seed * 9176)
                        .wrapping_mul(2246822519)
                        >> 33) as i64
                        % 97
                        + 1
                };
                let (_, blossom_cost) = min_weight_perfect_matching(n, w);
                let (_, dp_cost) = crate::subset_dp::solve(n, |i, j| w(i, j) as f64, |_| 1e15);
                assert_eq!(
                    blossom_cost as f64, dp_cost,
                    "n={n} seed={seed}: blossom {blossom_cost} vs dp {dp_cost}"
                );
            }
        }
    }

    #[test]
    fn matching_is_a_permutation() {
        let w = |u: usize, v: usize| ((u * 31 + v * 17) % 23 + 1) as i64;
        let (mate, _) = min_weight_perfect_matching(14, |u, v| w(u.min(v), u.max(v)));
        for (u, &v) in mate.iter().enumerate() {
            assert_ne!(u, v);
            assert_eq!(mate[v], u, "mate is not an involution at {u}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_vertex_count() {
        min_weight_perfect_matching(3, |_, _| 1);
    }

    #[test]
    fn max_weight_matching_leaves_negative_value_edges_out() {
        // With only some edges attractive, max-weight matching need not be
        // perfect; here only (0,1) has meaningful weight on 4 vertices.
        // (All weights must be positive, so "unattractive" means weight 1
        // that still gets picked on a complete graph — instead verify the
        // high-weight pair is chosen.)
        let w = |u: usize, v: usize| {
            let (u, v) = (u.min(v), u.max(v));
            if (u, v) == (0, 1) {
                100
            } else {
                1
            }
        };
        let mate = max_weight_matching(4, w);
        assert_eq!(mate[0], Some(1));
        assert_eq!(mate[1], Some(0));
    }
}
