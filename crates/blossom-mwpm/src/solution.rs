//! The result type shared by the exact matching algorithms.

use decoding_graph::PathReconstructor;

/// A minimum-weight matching of a set of active detectors, with boundary
/// assignments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchingSolution {
    /// Detector pairs matched to each other (each pair sorted, global
    /// detector indices).
    pub pairs: Vec<(u32, u32)>,
    /// Detectors matched individually to the lattice boundary.
    pub to_boundary: Vec<u32>,
    /// Total matching weight in `−log₁₀ P` units.
    pub weight: f64,
    /// XOR of the observable parities along every matched path: the
    /// decoder's logical-correction prediction.
    pub observables: u32,
}

impl MatchingSolution {
    /// Number of detectors covered by the matching.
    pub fn covered(&self) -> usize {
        2 * self.pairs.len() + self.to_boundary.len()
    }

    /// Expands the matching into a physical correction: the
    /// matching-graph edge ids of every shortest chain implied by the
    /// matched pairs and boundary assignments (paper §2.2: "errors are
    /// corrected using the shortest path between the parity qubits").
    ///
    /// Edges appearing in an even number of chains cancel and are removed.
    /// Returns `None` if some matched pair is disconnected in the graph
    /// (cannot happen for solutions produced against the same graph).
    pub fn correction_edges(&self, paths: &PathReconstructor<'_>) -> Option<Vec<u32>> {
        let mut edges: Vec<u32> = Vec::new();
        for &(a, b) in &self.pairs {
            edges.extend(paths.pair_path(a, b)?);
        }
        for &a in &self.to_boundary {
            edges.extend(paths.boundary_path(a)?);
        }
        edges.sort_unstable();
        // Cancel duplicates pairwise (mod-2 chain arithmetic).
        let mut out = Vec::with_capacity(edges.len());
        let mut i = 0;
        while i < edges.len() {
            let mut j = i + 1;
            while j < edges.len() && edges[j] == edges[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                out.push(edges[i]);
            }
            i = j;
        }
        Some(out)
    }

    /// Checks the solution covers exactly the given detectors, each once.
    pub fn is_perfect_over(&self, detectors: &[u32]) -> bool {
        let mut seen: Vec<u32> = self
            .pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(self.to_boundary.iter().copied())
            .collect();
        seen.sort_unstable();
        let mut expect = detectors.to_vec();
        expect.sort_unstable();
        seen == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_edges_annihilate_the_syndrome() {
        use crate::MwpmDecoder;
        use decoding_graph::DecodingContext;
        use qec_circuit::{DemSampler, NoiseModel};
        use rand::{rngs::StdRng, SeedableRng};
        use surface_code::SurfaceCode;

        let code = SurfaceCode::new(5).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(5e-3));
        let decoder = MwpmDecoder::new(ctx.gwt());
        let paths = PathReconstructor::new(ctx.graph());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(77);
        let mut checked = 0;
        let mut obs_agree = 0u32;
        for _ in 0..200 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.is_empty() {
                continue;
            }
            let solution = decoder.decode_full(&shot.detectors);
            let correction = solution
                .correction_edges(&paths)
                .expect("solutions over the same graph are connected");
            // XOR of the correction edges' endpoints == the syndrome.
            let mut parity = vec![false; ctx.graph().num_detectors()];
            let mut obs = 0;
            for &ei in &correction {
                let e = &ctx.graph().edges()[ei as usize];
                parity[e.u as usize] = !parity[e.u as usize];
                if let Some(v) = e.v {
                    parity[v as usize] = !parity[v as usize];
                }
                obs ^= e.observables;
            }
            let flipped: Vec<u32> = parity
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as u32))
                .collect();
            assert_eq!(flipped, shot.detectors, "correction does not annihilate");
            // Observable parity agrees except when distinct equal-weight
            // shortest paths exist (tie-breaking may differ between the
            // GWT's Dijkstra and the reconstructor's).
            obs_agree += (obs == solution.observables) as u32;
            checked += 1;
        }
        assert!(checked > 30);
        assert!(
            obs_agree as f64 / checked as f64 > 0.95,
            "edge-level obs agreed on only {obs_agree}/{checked}"
        );
    }

    #[test]
    fn coverage_accounting() {
        let s = MatchingSolution {
            pairs: vec![(0, 3), (1, 2)],
            to_boundary: vec![7],
            weight: 1.0,
            observables: 0,
        };
        assert_eq!(s.covered(), 5);
        assert!(s.is_perfect_over(&[0, 1, 2, 3, 7]));
        assert!(!s.is_perfect_over(&[0, 1, 2, 3]));
        assert!(!s.is_perfect_over(&[0, 1, 2, 3, 7, 9]));
    }
}
