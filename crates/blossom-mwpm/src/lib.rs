//! Exact minimum-weight perfect matching, and the idealized software MWPM
//! decoder the Astrea paper uses as its gold-standard baseline (§3.3).
//!
//! Two independent exact algorithms are provided:
//!
//! * [`subset_dp`] — an `O(2^k · k)` dynamic program over subsets of the
//!   active detectors that *natively* supports matching to the lattice
//!   boundary. Provably optimal; practical for `k ≤ 22`.
//! * [`dense_blossom`] — a from-scratch `O(n³)` primal–dual blossom
//!   algorithm for maximum-weight matching on dense graphs (the same
//!   algorithmic family as BlossomV). Minimum-weight *perfect* matching is
//!   obtained by the standard weight reflection, and boundary matching by
//!   the reduction `w'ᵢⱼ = min(wᵢⱼ, bᵢ + bⱼ)` plus one virtual boundary
//!   node when the syndrome weight is odd.
//!
//! A third solver, [`sparse_blossom`], is the production deep-tail path:
//! the same primal–dual algorithm with all per-shot staging removed
//! (virtual adjacency + persistent scratch arena). Its mate assignment is
//! bit-identical to [`dense_blossom`]'s, which stays in place as the
//! differential oracle.
//!
//! The two are cross-validated against each other by property tests, which
//! is the crate's correctness argument. [`MwpmDecoder`] wraps them behind
//! the [`Decoder`](decoding_graph::Decoder) trait, using the unquantized
//! weights of the [`GlobalWeightTable`](decoding_graph::GlobalWeightTable)
//! — this is the paper's "idealized MWPM" reference decoder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoder;
pub mod dense_blossom;
mod local;
pub mod ondemand;
mod solution;
pub mod sparse_blossom;
pub mod subset_dp;

pub use decoder::{MwpmDecoder, DP_NODE_LIMIT};
pub use local::{LocalMwpmDecoder, DEFAULT_K_NEIGHBORS};
pub use ondemand::DeepBackend;
pub use solution::MatchingSolution;
