//! The idealized software MWPM decoder (the paper's baseline).

use crate::solution::MatchingSolution;
use crate::{dense_blossom, subset_dp};
use decoding_graph::{DecodeScratch, Decoder, GlobalWeightTable, Prediction, QuantizedBlock};

/// Above this many active detectors in one matching cluster the decoder
/// switches from the subset DP to the blossom algorithm: the DP's time
/// and memory are `O(2^k)`, and measured on real d = 7 syndromes the
/// `O(k³)` blossom solver overtakes it near k = 12.
pub const DP_NODE_LIMIT: usize = 11;

/// Fixed-point sub-units per weight unit when converting `f64` weights to
/// the blossom solver's `i64` domain.
const BLOSSOM_SCALE: f64 = 65_536.0;

/// Weights above this (in `−log₁₀ P` units) are clamped before integer
/// conversion; far beyond any realistic matching weight.
const WEIGHT_CLAMP: f64 = 1e4;

/// Index of pair `(i, j)` (`i < j < k`) in the triangular pair order
/// `(0,1), (0,2), …` used by the small-gather helpers.
#[inline]
fn tri_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

/// The idealized software MWPM decoder.
///
/// Decodes with the **unquantized** weights of the
/// [`GlobalWeightTable`], exactly as the paper's "idealized MWPM"
/// baseline: every pair weight is the true shortest-path `−log₁₀ P`. Small
/// syndromes are solved with the exact subset DP; larger ones with the
/// blossom algorithm after the boundary reduction
/// `w'ᵢⱼ = min(wᵢⱼ, bᵢ + bⱼ)` (+ one virtual node for odd weights).
///
/// ```
/// use blossom_mwpm::MwpmDecoder;
/// use decoding_graph::{Decoder, DecodingContext};
/// use qec_circuit::NoiseModel;
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
/// let mut decoder = MwpmDecoder::new(ctx.gwt());
/// let prediction = decoder.decode(&[]);
/// assert_eq!(prediction.observables, 0);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct MwpmDecoder<'a> {
    gwt: &'a GlobalWeightTable,
    use_quantized: bool,
    /// Destination for batched quantized gathers on the scratch path.
    qblock: QuantizedBlock,
}

impl<'a> MwpmDecoder<'a> {
    /// Creates the idealized (full-precision) MWPM decoder.
    pub fn new(gwt: &'a GlobalWeightTable) -> MwpmDecoder<'a> {
        MwpmDecoder {
            gwt,
            use_quantized: false,
            qblock: QuantizedBlock::new(),
        }
    }

    /// Creates an MWPM decoder that reads the 8-bit quantized weights
    /// instead — useful for isolating the accuracy cost of quantization.
    pub fn with_quantized_weights(gwt: &'a GlobalWeightTable) -> MwpmDecoder<'a> {
        MwpmDecoder {
            gwt,
            use_quantized: true,
            qblock: QuantizedBlock::new(),
        }
    }

    #[inline]
    fn pair_w(&self, i: u32, j: u32) -> f64 {
        if self.use_quantized {
            self.gwt.pair_weight_q(i, j) as f64 / self.gwt.scale()
        } else {
            self.gwt.pair_weight(i, j)
        }
    }

    #[inline]
    fn boundary_w(&self, i: u32) -> f64 {
        if self.use_quantized {
            self.gwt.boundary_weight_q(i) as f64 / self.gwt.scale()
        } else {
            self.gwt.boundary_weight(i)
        }
    }

    /// True when pairing `a` and `b` directly is strictly cheaper than
    /// matching both to the boundary — the edge relation of the cluster
    /// decomposition. Uses the same clamped weights the subset DP sees.
    #[inline]
    fn linked(&self, a: u32, b: u32) -> bool {
        self.pair_w(a, b).min(2.0 * WEIGHT_CLAMP) < self.boundary_w(a) + self.boundary_w(b)
    }

    /// Partitions `detectors` into independent matching clusters: the
    /// connected components of the [`linked`](Self::linked) graph.
    ///
    /// An optimal matching never pairs detectors across clusters (a
    /// cross-cluster pair costs at least both boundary weights, so two
    /// boundary matches do no worse), hence the global optimum is the
    /// union of per-cluster optima. At realistic error rates even a
    /// Hamming-weight-12 syndrome is a handful of 2–3-detector clusters,
    /// which turns the DP's `O(2^k)` into a sum of tiny solves.
    ///
    /// Writes the detectors grouped cluster-by-cluster into `grouped`
    /// (clusters ordered by their first member, members in input order)
    /// and each cluster's end offset into `ends`.
    fn cluster_spans(
        &self,
        detectors: &[u32],
        parent: &mut Vec<u32>,
        grouped: &mut Vec<u32>,
        ends: &mut Vec<u32>,
    ) {
        let k = detectors.len();
        parent.clear();
        parent.extend(0..k as u32);
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if self.linked(detectors[i], detectors[j]) {
                    let (ri, rj) = (find(parent, i as u32), find(parent, j as u32));
                    if ri != rj {
                        parent[rj as usize] = ri;
                    }
                }
            }
        }
        grouped.clear();
        ends.clear();
        for r in 0..k as u32 {
            if find(parent, r) != r {
                continue;
            }
            for i in 0..k as u32 {
                if find(parent, i) == r {
                    grouped.push(detectors[i as usize]);
                }
            }
            ends.push(grouped.len() as u32);
        }
    }

    /// Solves one matching cluster exactly: subset DP up to
    /// [`DP_NODE_LIMIT`] nodes, blossom beyond.
    fn solve_cluster(&self, dets: &[u32]) -> MatchingSolution {
        if dets.len() <= DP_NODE_LIMIT {
            self.decode_dp(dets)
        } else {
            self.decode_blossom(dets)
        }
    }

    /// Decodes a syndrome and returns the full matching (pairs, boundary
    /// assignments, weight, and predicted observable flips).
    pub fn decode_full(&self, detectors: &[u32]) -> MatchingSolution {
        let k = detectors.len();
        if k == 0 {
            return MatchingSolution::default();
        }
        if k <= DP_NODE_LIMIT {
            // The subset DP prunes and decomposes into clusters
            // internally; no need to split here.
            return self.decode_dp(detectors);
        }
        let (mut parent, mut grouped, mut ends) = (Vec::new(), Vec::new(), Vec::new());
        self.cluster_spans(detectors, &mut parent, &mut grouped, &mut ends);
        if ends.len() == 1 {
            return self.decode_blossom(detectors);
        }
        let mut solution = MatchingSolution::default();
        let mut start = 0usize;
        for &end in &ends {
            let s = self.solve_cluster(&grouped[start..end as usize]);
            solution.weight += s.weight;
            solution.observables ^= s.observables;
            solution.pairs.extend_from_slice(&s.pairs);
            solution.to_boundary.extend_from_slice(&s.to_boundary);
            start = end as usize;
        }
        solution
    }

    fn decode_dp(&self, dets: &[u32]) -> MatchingSolution {
        let k = dets.len();
        let (mate, weight) = subset_dp::solve(
            k,
            |i, j| self.pair_w(dets[i], dets[j]).min(2.0 * WEIGHT_CLAMP),
            |i| self.boundary_w(dets[i]),
        );
        let mut solution = MatchingSolution {
            weight,
            ..MatchingSolution::default()
        };
        for (i, m) in mate.iter().enumerate() {
            match m {
                None => {
                    solution.to_boundary.push(dets[i]);
                    solution.observables ^= self.gwt.boundary_obs(dets[i]);
                }
                Some(j) if *j > i => {
                    solution.pairs.push((dets[i], dets[*j]));
                    solution.observables ^= self.gwt.pair_obs(dets[i], dets[*j]);
                }
                Some(_) => {}
            }
        }
        solution
    }

    /// GWT-direct closed form for `1 ≤ k ≤ 4`: one batched triangular
    /// gather from the weight table, then the register-only closed form —
    /// no weight-matrix staging in the scratch arena, and for the
    /// quantized decoder no f64 dequantization at all (fixed-point
    /// comparisons order identically because the scale is a power of
    /// two). The mate assignment is bit-identical to the staged path's.
    fn decode_closed_form(&self, dets: &[u32]) -> Prediction {
        let k = dets.len();
        debug_assert!((1..=4).contains(&k));
        let mate = if self.use_quantized {
            let (w, b) = self.gwt.gather_small_quantized(dets);
            subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]).1
        } else {
            let (w, b) = self.gwt.gather_small_exact(dets, 2.0 * WEIGHT_CLAMP);
            subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]).1
        };
        let mut observables = 0u32;
        for (i, &m) in mate[..k].iter().enumerate() {
            if m == usize::MAX {
                observables ^= self.gwt.boundary_obs(dets[i]);
            } else if m > i {
                observables ^= self.gwt.pair_obs(dets[i], dets[m]);
            }
        }
        Prediction {
            observables,
            cycles: 0,
            deferred: false,
        }
    }

    /// Stages the quantized weights for the subset DP via one batched
    /// block gather, dequantizing with exactly the expressions the
    /// per-entry closure path used (so the staged values are bit-equal).
    fn stage_quantized(&mut self, dets: &[u32], scratch: &mut DecodeScratch) {
        let k = dets.len();
        let gwt = self.gwt;
        let scale = gwt.scale();
        gwt.gather_quantized(dets, &mut self.qblock);
        scratch.weights.clear();
        scratch.weights.resize(k * k, 0.0);
        scratch.boundary.clear();
        scratch.boundary.resize(k, 0.0);
        for i in 0..k {
            scratch.boundary[i] = self.qblock.at(i, i, k) as f64 / scale;
            let row = &mut scratch.weights[i * k..][..k];
            for (j, slot) in row.iter_mut().enumerate() {
                if j != i {
                    *slot = (self.qblock.at(i, j, k) as f64 / scale).min(2.0 * WEIGHT_CLAMP);
                }
            }
        }
    }

    fn decode_blossom(&self, dets: &[u32]) -> MatchingSolution {
        let k = dets.len();
        let n = if k.is_multiple_of(2) { k } else { k + 1 }; // virtual boundary node last
        let eff = |i: usize, j: usize| -> f64 {
            if i >= k || j >= k {
                // Edge to the virtual boundary node.
                let real = if i >= k { j } else { i };
                self.boundary_w(dets[real]).min(WEIGHT_CLAMP)
            } else {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                direct.min(via_boundary).min(WEIGHT_CLAMP)
            }
        };
        let (mate, _) = dense_blossom::min_weight_perfect_matching(n, |i, j| {
            (eff(i, j) * BLOSSOM_SCALE).round() as i64 + 1
        });

        let mut solution = MatchingSolution::default();
        for i in 0..k {
            let j = mate[i];
            if j >= k {
                // Matched to the virtual boundary node.
                solution.to_boundary.push(dets[i]);
                solution.observables ^= self.gwt.boundary_obs(dets[i]);
                solution.weight += self.boundary_w(dets[i]);
            } else if j > i {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                if direct <= via_boundary {
                    solution.pairs.push((dets[i], dets[j]));
                    solution.observables ^= self.gwt.pair_obs(dets[i], dets[j]);
                    solution.weight += direct;
                } else {
                    solution.to_boundary.push(dets[i]);
                    solution.to_boundary.push(dets[j]);
                    solution.observables ^=
                        self.gwt.boundary_obs(dets[i]) ^ self.gwt.boundary_obs(dets[j]);
                    solution.weight += via_boundary;
                }
            }
        }
        solution
    }
}

impl Decoder for MwpmDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        let solution = self.decode_full(detectors);
        Prediction {
            observables: solution.observables,
            cycles: 0,
            deferred: false,
        }
    }

    fn decode_with_scratch(
        &mut self,
        detectors: &[u32],
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        let k = detectors.len();
        if k == 0 {
            return Prediction::identity();
        }
        if k > DP_NODE_LIMIT {
            // Oversized syndromes are rare at realistic error rates;
            // reuse the allocating cluster/blossom path.
            return self.decode(detectors);
        }
        if k <= 4 {
            // GWT-direct closed form — no weight-matrix staging at all.
            return self.decode_closed_form(detectors);
        }
        // Subset DP with all tables drawn from the arena (the DP prunes
        // and decomposes into clusters internally) and the observable
        // mask folded straight off the mate assignment — no
        // MatchingSolution vectors on the hot path. Weights are staged
        // with one batched row-contiguous gather instead of k² random
        // single-entry reads; the staged values are bit-equal to the
        // closure path's, so the assignment is too.
        if self.use_quantized {
            self.stage_quantized(detectors, scratch);
        } else {
            self.gwt.gather_exact_clamped(
                detectors,
                2.0 * WEIGHT_CLAMP,
                &mut scratch.weights,
                &mut scratch.boundary,
            );
        }
        subset_dp::solve_staged(k, scratch);
        let mut observables = 0u32;
        for (i, &m) in scratch.mate[..k].iter().enumerate() {
            if m == usize::MAX {
                observables ^= self.gwt.boundary_obs(detectors[i]);
            } else if m > i {
                observables ^= self.gwt.pair_obs(detectors[i], detectors[m]);
            }
        }
        Prediction {
            observables,
            cycles: 0,
            deferred: false,
        }
    }

    fn name(&self) -> &'static str {
        "MWPM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::NoiseModel;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn empty_syndrome_is_identity() {
        let ctx = ctx(3, 1e-3);
        let mut dec = MwpmDecoder::new(ctx.gwt());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn two_adjacent_detectors_pair_up() {
        // Pick the cheapest pair in the table; MWPM must match them
        // together rather than to the boundary (their pair weight is a
        // single error, boundary paths are longer).
        let ctx = ctx(5, 1e-3);
        let gwt = ctx.gwt();
        let n = gwt.len() as u32;
        let (mut bi, mut bj, mut bw) = (0, 0, f64::INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                if gwt.pair_weight(i, j) < bw
                    && gwt.pair_weight(i, j) < gwt.boundary_weight(i) + gwt.boundary_weight(j)
                {
                    (bi, bj, bw) = (i, j, gwt.pair_weight(i, j));
                }
            }
        }
        let dec = MwpmDecoder::new(gwt);
        let sol = dec.decode_full(&[bi, bj]);
        assert_eq!(sol.pairs, vec![(bi, bj)]);
        assert!(sol.to_boundary.is_empty());
        assert!((sol.weight - bw).abs() < 1e-9);
    }

    #[test]
    fn dp_and_blossom_agree_on_real_syndromes() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = ctx(5, 5e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(99);
        let mut compared = 0;
        for _ in 0..400 {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len();
            if k == 0 || k > DP_NODE_LIMIT {
                continue;
            }
            let dp = dec.decode_dp(&shot.detectors);
            let bl = dec.decode_blossom(&shot.detectors);
            assert!(
                (dp.weight - bl.weight).abs() < 1e-3,
                "weights differ: dp {} vs blossom {} on {:?}",
                dp.weight,
                bl.weight,
                shot.detectors
            );
            assert!(dp.is_perfect_over(&shot.detectors));
            assert!(bl.is_perfect_over(&shot.detectors));
            compared += 1;
        }
        assert!(compared > 50, "only {compared} nonzero syndromes sampled");
    }

    #[test]
    fn odd_syndromes_use_the_boundary() {
        let ctx = ctx(3, 1e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        let sol = dec.decode_full(&[0]);
        assert_eq!(sol.to_boundary, vec![0]);
        assert!(sol.pairs.is_empty());
        // Odd coverage requires at least one boundary match.
        let sol3 = dec.decode_full(&[0, 1, 2]);
        assert!(sol3.to_boundary.len() % 2 == 1);
        assert!(sol3.is_perfect_over(&[0, 1, 2]));
    }

    #[test]
    fn cluster_decomposition_preserves_the_optimum() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Multi-cluster syndromes are the norm at this rate; the
        // decomposed solve must reproduce the monolithic DP's optimal
        // weight exactly and still cover every detector.
        let ctx = ctx(5, 1e-2);
        let dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(31);
        let mut multi_cluster = 0;
        for _ in 0..400 {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len();
            if k == 0 || k > DP_NODE_LIMIT {
                continue;
            }
            let sol = dec.decode_full(&shot.detectors);
            let (_, monolithic) = subset_dp::solve(
                k,
                |i, j| {
                    dec.pair_w(shot.detectors[i], shot.detectors[j])
                        .min(2.0 * WEIGHT_CLAMP)
                },
                |i| dec.boundary_w(shot.detectors[i]),
            );
            assert!(
                (sol.weight - monolithic).abs() < 1e-9,
                "decomposed {} vs monolithic {} on {:?}",
                sol.weight,
                monolithic,
                shot.detectors
            );
            assert!(sol.is_perfect_over(&shot.detectors));
            multi_cluster += (sol.pairs.len() + sol.to_boundary.len() > 2) as u32;
        }
        assert!(multi_cluster > 20, "only {multi_cluster} nontrivial shots");
    }

    #[test]
    fn quantized_variant_stays_close_to_exact() {
        let ctx = ctx(3, 1e-3);
        let exact = MwpmDecoder::new(ctx.gwt());
        let quant = MwpmDecoder::with_quantized_weights(ctx.gwt());
        let sol_e = exact.decode_full(&[0, 5, 9, 12]);
        let sol_q = quant.decode_full(&[0, 5, 9, 12]);
        assert!((sol_e.weight - sol_q.weight).abs() < 1.0);
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = ctx(5, 5e-3);
        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = DecodeScratch::new();
        for _ in 0..300 {
            let shot = sampler.sample(&mut rng);
            let plain = dec.decode(&shot.detectors);
            let fast = dec.decode_with_scratch(&shot.detectors, &mut scratch);
            assert_eq!(plain, fast, "diverged on {:?}", shot.detectors);
        }
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        assert_eq!(Decoder::name(&dec), "MWPM");
    }
}
