//! The idealized software MWPM decoder (the paper's baseline).

use crate::ondemand::DeepBackend;
use crate::solution::MatchingSolution;
use crate::{dense_blossom, sparse_blossom, subset_dp};
use decoding_graph::{
    BoundaryTable, DecodeScratch, Decoder, DecodingContext, GlobalWeightTable, LocalWeightProvider,
    LocalWeightStats, MatchingGraph, Prediction, QuantizedBlock, SparseBlossomScratch,
    WeightSource,
};
use std::cell::RefCell;

/// Above this many active detectors in one matching cluster the decoder
/// switches from the subset DP to the blossom algorithm: the DP's time
/// and memory are `O(2^k)`, and measured on real d = 7 syndromes the
/// `O(k³)` blossom solver overtakes it near k = 12.
pub const DP_NODE_LIMIT: usize = 11;

/// Fixed-point sub-units per weight unit when converting `f64` weights to
/// the blossom solver's `i64` domain.
const BLOSSOM_SCALE: f64 = 65_536.0;

/// Weights above this (in `−log₁₀ P` units) are clamped before integer
/// conversion; far beyond any realistic matching weight.
const WEIGHT_CLAMP: f64 = 1e4;

/// Index of pair `(i, j)` (`i < j < k`) in the triangular pair order
/// `(0,1), (0,2), …` used by the small-gather helpers.
#[inline]
fn tri_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < k);
    i * k - i * (i + 1) / 2 + (j - i - 1)
}

/// The weight backend: the precomputed Global Weight Table, or the
/// GWT-free staged local provider (truncated per-source Dijkstra over the
/// sparse graph, staged once per shot). The provider sits behind a
/// `RefCell` so the read-only decode paths keep their `&self` signatures;
/// the decoder is per-worker (`Send`, not `Sync`), so the single-threaded
/// interior mutability is free of contention by construction.
// One `Weights` lives per decoder (never in a collection), so the size
// spread between the borrowed-table variant and the inline provider
// scratch costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Weights<'a> {
    Gwt(&'a GlobalWeightTable),
    Local {
        provider: RefCell<LocalWeightProvider<'a>>,
        boundary: &'a BoundaryTable,
    },
}

/// The idealized software MWPM decoder.
///
/// Decodes with the **unquantized** weights of the
/// [`GlobalWeightTable`], exactly as the paper's "idealized MWPM"
/// baseline: every pair weight is the true shortest-path `−log₁₀ P`. Small
/// syndromes are solved with the exact subset DP; larger ones with the
/// blossom algorithm after the boundary reduction
/// `w'ᵢⱼ = min(wᵢⱼ, bᵢ + bⱼ)` (+ one virtual node for odd weights).
///
/// The weights can come from two backends: the GWT itself, or — via
/// [`MwpmDecoder::for_context`] on a GWT-free
/// [`DecodingContext`] — a [`LocalWeightProvider`] that computes each
/// shot's pair weights on demand from the sparse matching graph. Both
/// backends produce bit-identical predictions and matchings (enforced by
/// the `local_vs_gwt` differential suite); the local one is what makes
/// d ≥ 15 reachable, since it never materializes the O(ℓ²) table.
///
/// ```
/// use blossom_mwpm::MwpmDecoder;
/// use decoding_graph::{Decoder, DecodingContext};
/// use qec_circuit::NoiseModel;
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
/// let mut decoder = MwpmDecoder::for_context(&ctx);
/// let prediction = decoder.decode(&[]);
/// assert_eq!(prediction.observables, 0);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct MwpmDecoder<'a> {
    weights: Weights<'a>,
    use_quantized: bool,
    /// Staging engine for deep shots on the local backend (see
    /// [`DeepBackend`]); unread on the GWT backend.
    deep_backend: DeepBackend,
    /// Destination for batched quantized gathers on the scratch path.
    qblock: QuantizedBlock,
}

impl<'a> MwpmDecoder<'a> {
    /// Creates the idealized (full-precision) MWPM decoder on the GWT.
    pub fn new(gwt: &'a GlobalWeightTable) -> MwpmDecoder<'a> {
        MwpmDecoder {
            weights: Weights::Gwt(gwt),
            use_quantized: false,
            deep_backend: DeepBackend::default(),
            qblock: QuantizedBlock::new(),
        }
    }

    /// Creates an MWPM decoder that reads the 8-bit quantized weights
    /// instead — useful for isolating the accuracy cost of quantization.
    pub fn with_quantized_weights(gwt: &'a GlobalWeightTable) -> MwpmDecoder<'a> {
        MwpmDecoder {
            weights: Weights::Gwt(gwt),
            use_quantized: true,
            deep_backend: DeepBackend::default(),
            qblock: QuantizedBlock::new(),
        }
    }

    /// Creates the GWT-free decoder: pair weights are staged per shot by
    /// a [`LocalWeightProvider`] over the sparse matching graph.
    pub fn new_local(graph: &'a MatchingGraph, boundary: &'a BoundaryTable) -> MwpmDecoder<'a> {
        MwpmDecoder {
            weights: Weights::Local {
                provider: RefCell::new(LocalWeightProvider::new(graph, boundary)),
                boundary,
            },
            use_quantized: false,
            deep_backend: DeepBackend::default(),
            qblock: QuantizedBlock::new(),
        }
    }

    /// The GWT-free sibling of [`Self::with_quantized_weights`].
    pub fn with_quantized_weights_local(
        graph: &'a MatchingGraph,
        boundary: &'a BoundaryTable,
    ) -> MwpmDecoder<'a> {
        MwpmDecoder {
            use_quantized: true,
            ..MwpmDecoder::new_local(graph, boundary)
        }
    }

    /// Creates the decoder matching a context's resolved weight backend:
    /// table-backed when the context materialized a GWT, local otherwise.
    pub fn for_context(ctx: &'a DecodingContext) -> MwpmDecoder<'a> {
        match ctx.weight_source() {
            WeightSource::Local => MwpmDecoder::new_local(ctx.graph(), ctx.boundary()),
            _ => MwpmDecoder::new(ctx.gwt()),
        }
    }

    /// The quantized-weights sibling of [`Self::for_context`].
    pub fn for_context_quantized(ctx: &'a DecodingContext) -> MwpmDecoder<'a> {
        match ctx.weight_source() {
            WeightSource::Local => {
                MwpmDecoder::with_quantized_weights_local(ctx.graph(), ctx.boundary())
            }
            _ => MwpmDecoder::with_quantized_weights(ctx.gwt()),
        }
    }

    /// Selects the staging engine for deep shots (`k > DP_NODE_LIMIT`)
    /// on the local backend; a no-op setting on the GWT backend, which
    /// never stages. Builder-style so construction reads
    /// `MwpmDecoder::for_context(&ctx).with_deep_backend(DeepBackend::Staged)`
    /// — which is exactly how the differential suites pin the oracle.
    pub fn with_deep_backend(mut self, backend: DeepBackend) -> MwpmDecoder<'a> {
        self.deep_backend = backend;
        self
    }

    /// The active deep-tail staging engine.
    pub fn deep_backend(&self) -> DeepBackend {
        self.deep_backend
    }

    /// Work counters of the local weight provider; `None` on the GWT
    /// backend. Lets benches and smoke tests assert the local path is
    /// actually engaged.
    pub fn local_stats(&self) -> Option<LocalWeightStats> {
        match &self.weights {
            Weights::Gwt(_) => None,
            Weights::Local { provider, .. } => Some(provider.borrow().stats()),
        }
    }

    /// Stages the local weight block for a detector list; no-op on the
    /// GWT backend (the table holds every pair already). Every public
    /// entry point stages once up front; inner per-cluster helpers then
    /// read sub-blocks of the staged list through the slot map.
    #[inline]
    fn ensure_staged(&self, detectors: &[u32]) {
        if let Weights::Local { provider, .. } = &self.weights {
            provider.borrow_mut().stage(detectors);
        }
    }

    /// The fixed-point scale of the quantized weight view.
    #[inline]
    fn scale(&self) -> f64 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.scale(),
            Weights::Local { boundary, .. } => boundary.scale(),
        }
    }

    /// Raw exact pair weight (staged-local or table); `INFINITY` on the
    /// local backend means "provably dominated by boundary matching".
    #[inline]
    fn pair_exact(&self, i: u32, j: u32) -> f64 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.pair_weight(i, j),
            Weights::Local { provider, .. } => provider.borrow().pair_weight(i, j),
        }
    }

    /// Quantized pair weight.
    #[inline]
    fn pair_q(&self, i: u32, j: u32) -> u8 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.pair_weight_q(i, j),
            Weights::Local { provider, .. } => provider.borrow().pair_weight_q(i, j),
        }
    }

    /// Observable parity of the pair's shortest path (only read for
    /// mated pairs, which are always settled on the local backend).
    #[inline]
    fn p_obs(&self, i: u32, j: u32) -> u32 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.pair_obs(i, j),
            Weights::Local { provider, .. } => provider.borrow().pair_obs(i, j),
        }
    }

    /// Raw exact boundary weight.
    #[inline]
    fn bnd_exact(&self, i: u32) -> f64 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.boundary_weight(i),
            Weights::Local { boundary, .. } => boundary.weight(i),
        }
    }

    /// Quantized boundary weight.
    #[inline]
    fn bnd_q(&self, i: u32) -> u8 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.boundary_weight_q(i),
            Weights::Local { boundary, .. } => boundary.weight_q(i),
        }
    }

    /// Observable parity of the cheapest boundary chain.
    #[inline]
    fn b_obs(&self, i: u32) -> u32 {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.boundary_obs(i),
            Weights::Local { boundary, .. } => boundary.obs(i),
        }
    }

    #[inline]
    fn pair_w(&self, i: u32, j: u32) -> f64 {
        if self.use_quantized {
            self.pair_q(i, j) as f64 / self.scale()
        } else {
            self.pair_exact(i, j)
        }
    }

    #[inline]
    fn boundary_w(&self, i: u32) -> f64 {
        if self.use_quantized {
            self.bnd_q(i) as f64 / self.scale()
        } else {
            self.bnd_exact(i)
        }
    }

    /// Triangular small gather (k ≤ 4) in the quantized domain, from
    /// whichever backend is active.
    #[inline]
    fn small_quantized(&self, dets: &[u32]) -> ([u16; 6], [u16; 4]) {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.gather_small_quantized(dets),
            Weights::Local { provider, .. } => provider.borrow().gather_small_quantized(dets),
        }
    }

    /// Triangular small gather (k ≤ 4) in the exact domain.
    #[inline]
    fn small_exact(&self, dets: &[u32], clamp: f64) -> ([f64; 6], [f64; 4]) {
        match &self.weights {
            Weights::Gwt(gwt) => gwt.gather_small_exact(dets, clamp),
            Weights::Local { provider, .. } => provider.borrow().gather_small_exact(dets, clamp),
        }
    }

    /// Stages the full k×k clamped exact block into the scratch arena.
    #[inline]
    fn stage_exact(&self, dets: &[u32], weights: &mut Vec<f64>, boundary: &mut Vec<f64>) {
        match &self.weights {
            Weights::Gwt(gwt) => {
                gwt.gather_exact_clamped(dets, 2.0 * WEIGHT_CLAMP, weights, boundary)
            }
            Weights::Local { provider, .. } => {
                provider
                    .borrow()
                    .gather_exact_clamped(dets, 2.0 * WEIGHT_CLAMP, weights, boundary)
            }
        }
    }

    /// True when pairing `a` and `b` directly is strictly cheaper than
    /// matching both to the boundary — the edge relation of the cluster
    /// decomposition. Uses the same clamped weights the subset DP sees.
    #[inline]
    fn linked(&self, a: u32, b: u32) -> bool {
        self.pair_w(a, b).min(2.0 * WEIGHT_CLAMP) < self.boundary_w(a) + self.boundary_w(b)
    }

    /// Partitions `detectors` into independent matching clusters: the
    /// connected components of the [`linked`](Self::linked) graph.
    ///
    /// An optimal matching never pairs detectors across clusters (a
    /// cross-cluster pair costs at least both boundary weights, so two
    /// boundary matches do no worse), hence the global optimum is the
    /// union of per-cluster optima. At realistic error rates even a
    /// Hamming-weight-12 syndrome is a handful of 2–3-detector clusters,
    /// which turns the DP's `O(2^k)` into a sum of tiny solves.
    ///
    /// Writes the detectors grouped cluster-by-cluster into `grouped`
    /// (clusters ordered by their first member, members in input order)
    /// and each cluster's end offset into `ends`.
    fn cluster_spans(
        &self,
        detectors: &[u32],
        parent: &mut Vec<u32>,
        grouped: &mut Vec<u32>,
        ends: &mut Vec<u32>,
    ) {
        let k = detectors.len();
        parent.clear();
        parent.extend(0..k as u32);
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if self.linked(detectors[i], detectors[j]) {
                    let (ri, rj) = (find(parent, i as u32), find(parent, j as u32));
                    if ri != rj {
                        parent[rj as usize] = ri;
                    }
                }
            }
        }
        grouped.clear();
        ends.clear();
        for r in 0..k as u32 {
            if find(parent, r) != r {
                continue;
            }
            for i in 0..k as u32 {
                if find(parent, i) == r {
                    grouped.push(detectors[i as usize]);
                }
            }
            ends.push(grouped.len() as u32);
        }
    }

    /// [`Self::cluster_spans`] against a pre-gathered weight block
    /// instead of per-pair table lookups. `weights[i*k+j]` must hold
    /// `pair_w(dets[i], dets[j]).min(2.0 * WEIGHT_CLAMP)` and
    /// `boundary[i]` the raw boundary weight — exactly what
    /// [`Self::stage_exact`] / [`Self::stage_quantized`] produce — so
    /// the edge test is bit-equal to [`Self::linked`].
    fn cluster_spans_staged(
        k: usize,
        weights: &[f64],
        boundary: &[f64],
        parent: &mut Vec<u32>,
        grouped: &mut Vec<u32>,
        ends: &mut Vec<u32>,
        detectors: &[u32],
    ) {
        parent.clear();
        parent.extend(0..k as u32);
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for i in 0..k {
            let row = &weights[i * k..][..k];
            let bi = boundary[i];
            for j in (i + 1)..k {
                if row[j] < bi + boundary[j] {
                    let (ri, rj) = (find(parent, i as u32), find(parent, j as u32));
                    if ri != rj {
                        parent[rj as usize] = ri;
                    }
                }
            }
        }
        grouped.clear();
        ends.clear();
        for r in 0..k as u32 {
            if find(parent, r) != r {
                continue;
            }
            for i in 0..k as u32 {
                if find(parent, i) == r {
                    grouped.push(detectors[i as usize]);
                }
            }
            ends.push(grouped.len() as u32);
        }
    }

    /// Solves one matching cluster exactly: subset DP up to
    /// [`DP_NODE_LIMIT`] nodes, blossom beyond.
    fn solve_cluster(&self, dets: &[u32]) -> MatchingSolution {
        if dets.len() <= DP_NODE_LIMIT {
            self.decode_dp(dets)
        } else {
            self.decode_blossom(dets)
        }
    }

    /// Decodes a syndrome and returns the full matching (pairs, boundary
    /// assignments, weight, and predicted observable flips).
    pub fn decode_full(&self, detectors: &[u32]) -> MatchingSolution {
        let k = detectors.len();
        if k == 0 {
            return MatchingSolution::default();
        }
        if k > DP_NODE_LIMIT && self.deep_backend == DeepBackend::GraphPd {
            if let Weights::Local { provider, .. } = &self.weights {
                // The allocating oracle path mirrors the scratch path's
                // backend choice with a throwaway arena (stats discarded
                // — only the scratch path feeds the pipeline counters).
                let mut gp = decoding_graph::GraphPdScratch::new();
                provider.borrow_mut().stage_graph_pd(detectors, &mut gp);
            } else {
                self.ensure_staged(detectors);
            }
        } else {
            self.ensure_staged(detectors);
        }
        if k <= DP_NODE_LIMIT {
            // The subset DP prunes and decomposes into clusters
            // internally; no need to split here.
            return self.decode_dp(detectors);
        }
        let (mut parent, mut grouped, mut ends) = (Vec::new(), Vec::new(), Vec::new());
        self.cluster_spans(detectors, &mut parent, &mut grouped, &mut ends);
        if ends.len() == 1 {
            return self.decode_blossom(detectors);
        }
        let mut solution = MatchingSolution::default();
        let mut start = 0usize;
        for &end in &ends {
            let s = self.solve_cluster(&grouped[start..end as usize]);
            solution.weight += s.weight;
            solution.observables ^= s.observables;
            solution.pairs.extend_from_slice(&s.pairs);
            solution.to_boundary.extend_from_slice(&s.to_boundary);
            start = end as usize;
        }
        solution
    }

    fn decode_dp(&self, dets: &[u32]) -> MatchingSolution {
        let k = dets.len();
        let (mate, weight) = subset_dp::solve(
            k,
            |i, j| self.pair_w(dets[i], dets[j]).min(2.0 * WEIGHT_CLAMP),
            |i| self.boundary_w(dets[i]),
        );
        let mut solution = MatchingSolution {
            weight,
            ..MatchingSolution::default()
        };
        for (i, m) in mate.iter().enumerate() {
            match m {
                None => {
                    solution.to_boundary.push(dets[i]);
                    solution.observables ^= self.b_obs(dets[i]);
                }
                Some(j) if *j > i => {
                    solution.pairs.push((dets[i], dets[*j]));
                    solution.observables ^= self.p_obs(dets[i], dets[*j]);
                }
                Some(_) => {}
            }
        }
        solution
    }

    /// Backend-direct closed form for `1 ≤ k ≤ 4`: one batched triangular
    /// gather from the weight backend, then the register-only closed
    /// form — no weight-matrix staging in the scratch arena, and for the
    /// quantized decoder no f64 dequantization at all (fixed-point
    /// comparisons order identically because the scale is a power of
    /// two). The mate assignment is bit-identical to the staged path's.
    fn decode_closed_form(&self, dets: &[u32]) -> Prediction {
        let k = dets.len();
        debug_assert!((1..=4).contains(&k));
        let mate = if self.use_quantized {
            let (w, b) = self.small_quantized(dets);
            subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]).1
        } else {
            let (w, b) = self.small_exact(dets, 2.0 * WEIGHT_CLAMP);
            subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]).1
        };
        Prediction {
            observables: self.closed_form_obs(dets, &mate),
            cycles: 0,
            deferred: false,
        }
    }

    /// Folds a closed-form mate assignment into the predicted observable
    /// mask — shared by the per-shot and batched closed-form paths.
    #[inline]
    fn closed_form_obs(&self, dets: &[u32], mate: &[usize; 4]) -> u32 {
        let k = dets.len();
        let mut observables = 0u32;
        for (i, &m) in mate[..k].iter().enumerate() {
            if m == usize::MAX {
                observables ^= self.b_obs(dets[i]);
            } else if m > i {
                observables ^= self.p_obs(dets[i], dets[m]);
            }
        }
        observables
    }

    /// Stages the quantized weights for the subset DP via one batched
    /// block gather, dequantizing with exactly the expressions the
    /// per-entry closure path used (so the staged values are bit-equal).
    fn stage_quantized(&mut self, dets: &[u32], scratch: &mut DecodeScratch) {
        let k = dets.len();
        let scale = self.scale();
        let gwt = match &self.weights {
            Weights::Gwt(gwt) => *gwt,
            Weights::Local { provider, .. } => {
                // The staged local block already holds the exact weights;
                // derive the dequantized view with the identical
                // expressions the table path uses.
                provider.borrow().gather_quantized_clamped(
                    dets,
                    2.0 * WEIGHT_CLAMP,
                    &mut scratch.weights,
                    &mut scratch.boundary,
                );
                return;
            }
        };
        if k > decoding_graph::MAX_GATHER_NODES {
            // Deep syndromes outgrow the fixed-size `QuantizedBlock`;
            // dequantize straight off the (u8, hence compact and
            // row-contiguous) table rows with the identical expressions.
            scratch.weights.clear();
            scratch.weights.resize(k * k, 0.0);
            scratch.boundary.clear();
            scratch.boundary.resize(k, 0.0);
            for (i, &di) in dets.iter().enumerate() {
                scratch.boundary[i] = gwt.boundary_weight_q(di) as f64 / scale;
                let row = &mut scratch.weights[i * k..][..k];
                for (j, &dj) in dets.iter().enumerate() {
                    if j != i {
                        row[j] = (gwt.pair_weight_q(di, dj) as f64 / scale).min(2.0 * WEIGHT_CLAMP);
                    }
                }
            }
            return;
        }
        gwt.gather_quantized(dets, &mut self.qblock);
        scratch.weights.clear();
        scratch.weights.resize(k * k, 0.0);
        scratch.boundary.clear();
        scratch.boundary.resize(k, 0.0);
        for i in 0..k {
            scratch.boundary[i] = self.qblock.at(i, i, k) as f64 / scale;
            let row = &mut scratch.weights[i * k..][..k];
            for (j, slot) in row.iter_mut().enumerate() {
                if j != i {
                    *slot = (self.qblock.at(i, j, k) as f64 / scale).min(2.0 * WEIGHT_CLAMP);
                }
            }
        }
    }

    fn decode_blossom(&self, dets: &[u32]) -> MatchingSolution {
        let k = dets.len();
        let n = if k.is_multiple_of(2) { k } else { k + 1 }; // virtual boundary node last
        let eff = |i: usize, j: usize| -> f64 {
            if i >= k || j >= k {
                // Edge to the virtual boundary node.
                let real = if i >= k { j } else { i };
                self.boundary_w(dets[real]).min(WEIGHT_CLAMP)
            } else {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                direct.min(via_boundary).min(WEIGHT_CLAMP)
            }
        };
        let (mate, _) = dense_blossom::min_weight_perfect_matching(n, |i, j| {
            (eff(i, j) * BLOSSOM_SCALE).round() as i64 + 1
        });

        let mut solution = MatchingSolution::default();
        for i in 0..k {
            let j = mate[i];
            if j >= k {
                // Matched to the virtual boundary node.
                solution.to_boundary.push(dets[i]);
                solution.observables ^= self.b_obs(dets[i]);
                solution.weight += self.boundary_w(dets[i]);
            } else if j > i {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                if direct <= via_boundary {
                    solution.pairs.push((dets[i], dets[j]));
                    solution.observables ^= self.p_obs(dets[i], dets[j]);
                    solution.weight += direct;
                } else {
                    solution.to_boundary.push(dets[i]);
                    solution.to_boundary.push(dets[j]);
                    solution.observables ^= self.b_obs(dets[i]) ^ self.b_obs(dets[j]);
                    solution.weight += via_boundary;
                }
            }
        }
        solution
    }

    /// Observables for one `≤ DP_NODE_LIMIT` cluster on the scratch path:
    /// batched row-contiguous staging plus the memoized subset DP, with
    /// the mate assignment folded straight into the observable mask. The
    /// staged values are bit-equal to the closure path's, so the result
    /// matches [`Self::decode_dp`] exactly.
    fn dp_obs_scratch(&mut self, dets: &[u32], scratch: &mut DecodeScratch) -> u32 {
        let k = dets.len();
        if self.use_quantized {
            self.stage_quantized(dets, scratch);
        } else {
            let mut weights = std::mem::take(&mut scratch.weights);
            let mut boundary = std::mem::take(&mut scratch.boundary);
            self.stage_exact(dets, &mut weights, &mut boundary);
            scratch.weights = weights;
            scratch.boundary = boundary;
        }
        subset_dp::solve_staged(k, scratch);
        let mut observables = 0u32;
        for (i, &m) in scratch.mate[..k].iter().enumerate() {
            if m == usize::MAX {
                observables ^= self.b_obs(dets[i]);
            } else if m > i {
                observables ^= self.p_obs(dets[i], dets[m]);
            }
        }
        observables
    }

    /// Observables for one blossom-band cluster on the scratch path: the
    /// sparse scratch-reusing solver under the same boundary reduction,
    /// integer conversion, and per-pair post-processing as
    /// [`Self::decode_blossom`]. The sparse solver's mate assignment is
    /// bit-identical to the dense solver's, so the prediction is too.
    fn blossom_obs_scratch(&self, dets: &[u32], sparse: &mut SparseBlossomScratch) -> u32 {
        let k = dets.len();
        let n = if k.is_multiple_of(2) { k } else { k + 1 }; // virtual boundary node last
        let eff = |i: usize, j: usize| -> f64 {
            if i >= k || j >= k {
                let real = if i >= k { j } else { i };
                self.boundary_w(dets[real]).min(WEIGHT_CLAMP)
            } else {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                direct.min(via_boundary).min(WEIGHT_CLAMP)
            }
        };
        sparse_blossom::min_weight_perfect_matching_scratch(
            n,
            |i, j| (eff(i, j) * BLOSSOM_SCALE).round() as i64 + 1,
            sparse,
        );
        let mut observables = 0u32;
        for i in 0..k {
            let j = sparse.mate[i + 1] - 1;
            if j >= k {
                observables ^= self.b_obs(dets[i]);
            } else if j > i {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                if direct <= via_boundary {
                    observables ^= self.p_obs(dets[i], dets[j]);
                } else {
                    observables ^= self.b_obs(dets[i]) ^ self.b_obs(dets[j]);
                }
            }
        }
        observables
    }

    /// [`Self::blossom_obs_scratch`] with the solver's weight closure
    /// reading the pre-gathered `scratch.weights` / `scratch.boundary`
    /// block instead of per-entry table lookups. Staged pair values are
    /// clamped to `2.0 * WEIGHT_CLAMP`, which cannot change
    /// `min(direct, via_boundary, WEIGHT_CLAMP)` (the final clamp is
    /// strictly tighter), so the staged solve is bit-identical. The
    /// mate fold still reads the unclamped backend: its `direct <=
    /// via_boundary` tie-break must see the raw pair weight, and it
    /// only touches `k/2` pairs.
    fn blossom_obs_staged(&self, dets: &[u32], scratch: &mut DecodeScratch) -> u32 {
        let k = dets.len();
        let n = if k.is_multiple_of(2) { k } else { k + 1 }; // virtual boundary node last
        let weights = &scratch.weights;
        let boundary = &scratch.boundary;
        let eff = |i: usize, j: usize| -> f64 {
            if i >= k || j >= k {
                let real = if i >= k { j } else { i };
                boundary[real].min(WEIGHT_CLAMP)
            } else {
                let direct = weights[i * k + j];
                let via_boundary = boundary[i] + boundary[j];
                direct.min(via_boundary).min(WEIGHT_CLAMP)
            }
        };
        sparse_blossom::min_weight_perfect_matching_scratch(
            n,
            |i, j| (eff(i, j) * BLOSSOM_SCALE).round() as i64 + 1,
            &mut scratch.sparse,
        );
        let mut observables = 0u32;
        for i in 0..k {
            let j = scratch.sparse.mate[i + 1] - 1;
            if j >= k {
                observables ^= self.b_obs(dets[i]);
            } else if j > i {
                let direct = self.pair_w(dets[i], dets[j]);
                let via_boundary = self.boundary_w(dets[i]) + self.boundary_w(dets[j]);
                if direct <= via_boundary {
                    observables ^= self.p_obs(dets[i], dets[j]);
                } else {
                    observables ^= self.b_obs(dets[i]) ^ self.b_obs(dets[j]);
                }
            }
        }
        observables
    }

    /// Deep-syndrome (`k > DP_NODE_LIMIT`) scratch path: mirrors
    /// [`Self::decode_full`]'s branch structure — cluster decomposition,
    /// whole-syndrome blossom when it doesn't split, otherwise closed
    /// form / staged DP / sparse blossom per cluster — with every table
    /// drawn from the arena. No allocation on the steady-state path.
    ///
    /// The whole weight block for the syndrome is gathered **once**, up
    /// front: the cluster decomposition's `linked` sweep and the
    /// (dominant) single-cluster blossom staging both read the same
    /// row-contiguous arena arrays, replacing two cache-cold `O(k²)`
    /// sweeps over the full pairwise table with one row-local gather.
    /// The multi-cluster fallback re-stages per cluster exactly as
    /// before (sub-cluster staging clobbers the arena, which is safe —
    /// the gathered block is consumed by then; on the local backend the
    /// provider's own staged block survives untouched, so sub-cluster
    /// gathers keep reading it through the slot map).
    fn decode_deep_with_scratch(
        &mut self,
        detectors: &[u32],
        scratch: &mut DecodeScratch,
        graphpd: bool,
    ) -> Prediction {
        let k = detectors.len();
        if self.use_quantized {
            self.stage_quantized(detectors, scratch);
        } else {
            let mut weights = std::mem::take(&mut scratch.weights);
            let mut boundary = std::mem::take(&mut scratch.boundary);
            self.stage_exact(detectors, &mut weights, &mut boundary);
            scratch.weights = weights;
            scratch.boundary = boundary;
        }
        // The grouped/ends buffers must stay alive across per-cluster
        // solves that themselves stage into the arena, so take them out
        // for the walk and hand them back (capacity preserved) after.
        let mut parent = std::mem::take(&mut scratch.parent);
        let mut grouped = std::mem::take(&mut scratch.detectors);
        let mut ends = std::mem::take(&mut scratch.ends);
        Self::cluster_spans_staged(
            k,
            &scratch.weights,
            &scratch.boundary,
            &mut parent,
            &mut grouped,
            &mut ends,
            detectors,
        );
        scratch.parent = parent;
        let mut observables = 0u32;
        if ends.len() == 1 {
            // A single cluster gets the identically-ordered full detector
            // list, exactly as `decode_full` hands it to the solver.
            if graphpd {
                scratch.graphpd.stats.blossoms += 1;
            }
            observables = self.blossom_obs_staged(detectors, scratch);
        } else {
            let mut start = 0usize;
            for &end in &ends {
                let dets = &grouped[start..end as usize];
                observables ^= match dets.len() {
                    1..=4 => self.decode_closed_form(dets).observables,
                    len if len <= DP_NODE_LIMIT => self.dp_obs_scratch(dets, scratch),
                    _ => {
                        if graphpd {
                            scratch.graphpd.stats.blossoms += 1;
                        }
                        self.blossom_obs_scratch(dets, &mut scratch.sparse)
                    }
                };
                start = end as usize;
            }
        }
        scratch.detectors = grouped;
        scratch.ends = ends;
        Prediction {
            observables,
            cycles: 0,
            deferred: false,
        }
    }
}

impl Decoder for MwpmDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        let solution = self.decode_full(detectors);
        Prediction {
            observables: solution.observables,
            cycles: 0,
            deferred: false,
        }
    }

    fn decode_with_scratch(
        &mut self,
        detectors: &[u32],
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        let k = detectors.len();
        if k == 0 {
            return Prediction::identity();
        }
        if k > DP_NODE_LIMIT {
            // Deep tail: arena-staged cluster decomposition with the
            // sparse scratch-reusing blossom solver — no allocation.
            // On the local backend the default staging engine is the
            // on-demand one: upper-triangle targets with per-pair
            // deadline certificates, instead of the full per-row sweep.
            // The blocks are bit-compatible for every cell the decode
            // consumes, so everything downstream is shared.
            // The graph-pd engine is the opt-in exception: it fills the
            // same staged block, but with meet-in-the-middle weights
            // that are only semantically (not bit-) equal — see
            // `DeepBackend::GraphPd`.
            let graphpd = match (&self.weights, self.deep_backend) {
                (Weights::Local { provider, .. }, DeepBackend::Ondemand) => {
                    provider
                        .borrow_mut()
                        .stage_ondemand(detectors, &mut scratch.ondemand);
                    false
                }
                (Weights::Local { provider, .. }, DeepBackend::GraphPd) => {
                    provider
                        .borrow_mut()
                        .stage_graph_pd(detectors, &mut scratch.graphpd);
                    true
                }
                _ => {
                    self.ensure_staged(detectors);
                    false
                }
            };
            return self.decode_deep_with_scratch(detectors, scratch, graphpd);
        }
        self.ensure_staged(detectors);
        if k <= 4 {
            // Backend-direct closed form — no weight-matrix staging.
            return self.decode_closed_form(detectors);
        }
        // Subset DP with all tables drawn from the arena (the DP prunes
        // and decomposes into clusters internally) and the observable
        // mask folded straight off the mate assignment — no
        // MatchingSolution vectors on the hot path.
        let observables = self.dp_obs_scratch(detectors, scratch);
        Prediction {
            observables,
            cycles: 0,
            deferred: false,
        }
    }

    /// Batched closed forms: for a run of same-weight `k ≤ 4` syndromes,
    /// gather each shot's triangular operands and feed the register-only
    /// closed form directly from the gather result — no staging copy in
    /// between. (PR 7 staged every shot's operands into decoder-owned
    /// batch buffers first; profiling showed the copy bought nothing —
    /// the gathers are already register-sized — so the staging pass was
    /// dropped and the batch buffers deleted.) The operands are exactly
    /// what [`Self::decode_closed_form`] gathers, so every prediction is
    /// bit-identical to `decode_with_scratch` on the same list.
    fn decode_same_weight_batch(
        &mut self,
        k: usize,
        detectors: &[u32],
        out: &mut [Prediction],
        scratch: &mut DecodeScratch,
    ) {
        assert_eq!(
            detectors.len(),
            k * out.len(),
            "batch detector buffer does not hold out.len() lists of {k}"
        );
        if !(1..=4).contains(&k) {
            // Outside the closed-form band: per-shot scratch decode,
            // exactly like the trait's default implementation.
            if k == 0 {
                for slot in out.iter_mut() {
                    *slot = self.decode_with_scratch(&[], scratch);
                }
                return;
            }
            for (list, slot) in detectors.chunks_exact(k).zip(out.iter_mut()) {
                *slot = self.decode_with_scratch(list, scratch);
            }
            return;
        }
        if matches!(self.weights, Weights::Local { .. }) {
            // Staged backend: the per-shot staged block (weights *and*
            // pair observables) must stay live through the solve and the
            // observable fold, so stage + solve + fold run fused per
            // shot. A two-pass copy of the weights alone would read the
            // observables of the *last* staged shot in the solve loop.
            for (list, slot) in detectors.chunks_exact(k).zip(out.iter_mut()) {
                self.ensure_staged(list);
                *slot = self.decode_closed_form(list);
            }
            return;
        }
        if self.use_quantized {
            // Integer domain end to end, fused per shot: the 6 + 4
            // quantized operands live in registers between the gather
            // and the closed form. (An A/B against gathering every
            // shot's operands into decoder-owned batch buffers before
            // solving — the PR 7 shape, kept on the GWT path on the
            // theory that a pure gather loop overlaps the random table
            // reads — showed the fused form equal at best and ~5-7%
            // faster at d = 15 where the table outgrows the LLC; see
            // EXPERIMENTS.md. The copy never pays.)
            for (list, slot) in detectors.chunks_exact(k).zip(out.iter_mut()) {
                let (w, b) = self.small_quantized(list);
                let (_, mate) =
                    subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]);
                *slot = Prediction {
                    observables: self.closed_form_obs(list, &mate),
                    cycles: 0,
                    deferred: false,
                };
            }
        } else {
            // Exact path: stage the f64 operands in the scratch arena
            // (the weights/boundary vectors are free between decodes).
            scratch.weights.clear();
            scratch.boundary.clear();
            for list in detectors.chunks_exact(k) {
                let (w, b) = self.small_exact(list, 2.0 * WEIGHT_CLAMP);
                scratch.weights.extend_from_slice(&w);
                scratch.boundary.extend_from_slice(&b);
            }
            for (s, (list, slot)) in detectors.chunks_exact(k).zip(out.iter_mut()).enumerate() {
                let w = &scratch.weights[s * 6..][..6];
                let b = &scratch.boundary[s * 4..][..4];
                let (_, mate) =
                    subset_dp::solve_closed_form(k, |i, j| w[tri_index(k, i, j)], |i| b[i]);
                *slot = Prediction {
                    observables: self.closed_form_obs(list, &mate),
                    cycles: 0,
                    deferred: false,
                };
            }
        }
    }

    fn name(&self) -> &'static str {
        "MWPM"
    }

    fn local_weight_stats(&self) -> Option<LocalWeightStats> {
        self.local_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::NoiseModel;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    fn local_ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment_with(
            &code,
            NoiseModel::depolarizing(p),
            WeightSource::Local,
        )
    }

    #[test]
    fn empty_syndrome_is_identity() {
        let ctx = ctx(3, 1e-3);
        let mut dec = MwpmDecoder::new(ctx.gwt());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn two_adjacent_detectors_pair_up() {
        // Pick the cheapest pair in the table; MWPM must match them
        // together rather than to the boundary (their pair weight is a
        // single error, boundary paths are longer).
        let ctx = ctx(5, 1e-3);
        let gwt = ctx.gwt();
        let n = gwt.len() as u32;
        let (mut bi, mut bj, mut bw) = (0, 0, f64::INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                if gwt.pair_weight(i, j) < bw
                    && gwt.pair_weight(i, j) < gwt.boundary_weight(i) + gwt.boundary_weight(j)
                {
                    (bi, bj, bw) = (i, j, gwt.pair_weight(i, j));
                }
            }
        }
        let dec = MwpmDecoder::new(gwt);
        let sol = dec.decode_full(&[bi, bj]);
        assert_eq!(sol.pairs, vec![(bi, bj)]);
        assert!(sol.to_boundary.is_empty());
        assert!((sol.weight - bw).abs() < 1e-9);
    }

    #[test]
    fn dp_and_blossom_agree_on_real_syndromes() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = ctx(5, 5e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(99);
        let mut compared = 0;
        for _ in 0..400 {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len();
            if k == 0 || k > DP_NODE_LIMIT {
                continue;
            }
            let dp = dec.decode_dp(&shot.detectors);
            let bl = dec.decode_blossom(&shot.detectors);
            assert!(
                (dp.weight - bl.weight).abs() < 1e-3,
                "weights differ: dp {} vs blossom {} on {:?}",
                dp.weight,
                bl.weight,
                shot.detectors
            );
            assert!(dp.is_perfect_over(&shot.detectors));
            assert!(bl.is_perfect_over(&shot.detectors));
            compared += 1;
        }
        assert!(compared > 50, "only {compared} nonzero syndromes sampled");
    }

    #[test]
    fn odd_syndromes_use_the_boundary() {
        let ctx = ctx(3, 1e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        let sol = dec.decode_full(&[0]);
        assert_eq!(sol.to_boundary, vec![0]);
        assert!(sol.pairs.is_empty());
        // Odd coverage requires at least one boundary match.
        let sol3 = dec.decode_full(&[0, 1, 2]);
        assert!(sol3.to_boundary.len() % 2 == 1);
        assert!(sol3.is_perfect_over(&[0, 1, 2]));
    }

    #[test]
    fn cluster_decomposition_preserves_the_optimum() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Multi-cluster syndromes are the norm at this rate; the
        // decomposed solve must reproduce the monolithic DP's optimal
        // weight exactly and still cover every detector.
        let ctx = ctx(5, 1e-2);
        let dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(31);
        let mut multi_cluster = 0;
        for _ in 0..400 {
            let shot = sampler.sample(&mut rng);
            let k = shot.detectors.len();
            if k == 0 || k > DP_NODE_LIMIT {
                continue;
            }
            let sol = dec.decode_full(&shot.detectors);
            let (_, monolithic) = subset_dp::solve(
                k,
                |i, j| {
                    dec.pair_w(shot.detectors[i], shot.detectors[j])
                        .min(2.0 * WEIGHT_CLAMP)
                },
                |i| dec.boundary_w(shot.detectors[i]),
            );
            assert!(
                (sol.weight - monolithic).abs() < 1e-9,
                "decomposed {} vs monolithic {} on {:?}",
                sol.weight,
                monolithic,
                shot.detectors
            );
            assert!(sol.is_perfect_over(&shot.detectors));
            multi_cluster += (sol.pairs.len() + sol.to_boundary.len() > 2) as u32;
        }
        assert!(multi_cluster > 20, "only {multi_cluster} nontrivial shots");
    }

    #[test]
    fn quantized_variant_stays_close_to_exact() {
        let ctx = ctx(3, 1e-3);
        let exact = MwpmDecoder::new(ctx.gwt());
        let quant = MwpmDecoder::with_quantized_weights(ctx.gwt());
        let sol_e = exact.decode_full(&[0, 5, 9, 12]);
        let sol_q = quant.decode_full(&[0, 5, 9, 12]);
        assert!((sol_e.weight - sol_q.weight).abs() < 1.0);
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = ctx(5, 5e-3);
        let mut dec = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = DecodeScratch::new();
        for _ in 0..300 {
            let shot = sampler.sample(&mut rng);
            let plain = dec.decode(&shot.detectors);
            let fast = dec.decode_with_scratch(&shot.detectors, &mut scratch);
            assert_eq!(plain, fast, "diverged on {:?}", shot.detectors);
        }
    }

    #[test]
    fn deep_scratch_path_matches_allocating_path() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Error rate high enough that k > DP_NODE_LIMIT syndromes are
        // the norm, so the sparse cluster path (not the staged DP) is
        // what's being compared against the dense allocating oracle —
        // with one scratch arena reused across every shot.
        for quantized in [false, true] {
            let ctx = ctx(7, 2e-2);
            let mut dec = if quantized {
                MwpmDecoder::with_quantized_weights(ctx.gwt())
            } else {
                MwpmDecoder::new(ctx.gwt())
            };
            let mut sampler = DemSampler::new(ctx.dem());
            let mut rng = StdRng::seed_from_u64(41);
            let mut scratch = DecodeScratch::new();
            let mut deep = 0;
            for _ in 0..150 {
                let shot = sampler.sample(&mut rng);
                deep += (shot.detectors.len() > DP_NODE_LIMIT) as u32;
                let plain = dec.decode(&shot.detectors);
                let fast = dec.decode_with_scratch(&shot.detectors, &mut scratch);
                assert_eq!(plain, fast, "diverged on {:?}", shot.detectors);
            }
            assert!(deep > 100, "only {deep} deep syndromes sampled");
            assert!(
                scratch.sparse.solves > 0,
                "sparse solver never engaged on the deep path"
            );
        }
    }

    #[test]
    fn local_backend_matches_gwt_backend_bit_for_bit() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // The in-crate spot check of the tentpole contract (the full
        // sweep lives in the workspace `local_vs_gwt` suite): same
        // syndromes, same predictions and matchings, from a context that
        // never built a GWT.
        for (d, p) in [(3usize, 5e-3), (5, 1e-2)] {
            let gctx = ctx(d, p);
            let lctx = local_ctx(d, p);
            assert!(lctx.try_gwt().is_none());
            for quantized in [false, true] {
                let mut g = if quantized {
                    MwpmDecoder::for_context_quantized(&gctx)
                } else {
                    MwpmDecoder::for_context(&gctx)
                };
                let mut l = if quantized {
                    MwpmDecoder::for_context_quantized(&lctx)
                } else {
                    MwpmDecoder::for_context(&lctx)
                };
                assert!(g.local_stats().is_none());
                assert!(l.local_stats().is_some());
                let mut sampler = DemSampler::new(gctx.dem());
                let mut rng = StdRng::seed_from_u64(4242 + d as u64);
                let mut scratch_g = DecodeScratch::new();
                let mut scratch_l = DecodeScratch::new();
                for _ in 0..400 {
                    let shot = sampler.sample(&mut rng);
                    let sg = g.decode_full(&shot.detectors);
                    let sl = l.decode_full(&shot.detectors);
                    assert_eq!(sg.pairs, sl.pairs, "mates diverged on {:?}", shot.detectors);
                    assert_eq!(sg.to_boundary, sl.to_boundary);
                    assert_eq!(sg.observables, sl.observables);
                    assert_eq!(sg.weight.to_bits(), sl.weight.to_bits());
                    let pg = g.decode_with_scratch(&shot.detectors, &mut scratch_g);
                    let pl = l.decode_with_scratch(&shot.detectors, &mut scratch_l);
                    assert_eq!(pg, pl, "scratch diverged on {:?}", shot.detectors);
                }
                let stats = l.local_stats().unwrap();
                assert!(stats.stages > 0 && stats.expansions > 0);
            }
        }
    }

    #[test]
    fn ondemand_deep_backend_matches_staged_oracle() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // In-crate spot check of the deep-tail contract (the full sweep
        // lives in the workspace `ondemand_vs_staged` suite): real deep
        // syndromes, one scratch arena per decoder reused across shots,
        // on-demand predictions bit-equal to the staged oracle's — and
        // to the allocating `decode_full` path — in both weight domains.
        for quantized in [false, true] {
            let lctx = local_ctx(7, 2e-2);
            let mut ond = if quantized {
                MwpmDecoder::for_context_quantized(&lctx)
            } else {
                MwpmDecoder::for_context(&lctx)
            };
            let mut stg = ond.clone().with_deep_backend(DeepBackend::Staged);
            assert_eq!(ond.deep_backend(), DeepBackend::Ondemand);
            assert_eq!(stg.deep_backend(), DeepBackend::Staged);
            let mut sampler = DemSampler::new(lctx.dem());
            let mut rng = StdRng::seed_from_u64(271);
            let mut scratch_o = DecodeScratch::new();
            let mut scratch_s = DecodeScratch::new();
            let mut deep = 0;
            for _ in 0..150 {
                let shot = sampler.sample(&mut rng);
                deep += (shot.detectors.len() > DP_NODE_LIMIT) as u32;
                let po = ond.decode_with_scratch(&shot.detectors, &mut scratch_o);
                let ps = stg.decode_with_scratch(&shot.detectors, &mut scratch_s);
                assert_eq!(po, ps, "backends diverged on {:?}", shot.detectors);
                let full = ond.decode_full(&shot.detectors);
                assert_eq!(po.observables, full.observables);
            }
            assert!(deep > 100, "only {deep} deep syndromes sampled");
            assert!(!scratch_o.ondemand.stats.is_idle());
            assert!(scratch_o.ondemand.stats.collisions > 0);
            assert!(scratch_s.ondemand.stats.is_idle());
        }
    }

    #[test]
    fn graph_pd_deep_backend_is_optimal_and_self_consistent() {
        use qec_circuit::DemSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // In-crate spot check of the graph-pd contract (the certificate
        // suite lives in the workspace `graphpd_vs_ondemand` tests):
        // matchings may differ from the on-demand oracle's on ties, so
        // the asserts are (1) equal total matching weight up to f64
        // association noise — distinct matchings differ by whole error
        // mechanisms, orders of magnitude above the tolerance — and
        // (2) bit-equal predictions between the scratch and allocating
        // paths of the graph-pd backend itself.
        for quantized in [false, true] {
            let lctx = local_ctx(7, 2e-2);
            let mut ond = if quantized {
                MwpmDecoder::for_context_quantized(&lctx)
            } else {
                MwpmDecoder::for_context(&lctx)
            };
            let mut gpd = ond.clone().with_deep_backend(DeepBackend::GraphPd);
            assert_eq!(gpd.deep_backend(), DeepBackend::GraphPd);
            let mut sampler = DemSampler::new(lctx.dem());
            let mut rng = StdRng::seed_from_u64(314);
            let mut scratch_o = DecodeScratch::new();
            let mut scratch_g = DecodeScratch::new();
            let mut deep = 0;
            for _ in 0..150 {
                let shot = sampler.sample(&mut rng);
                deep += (shot.detectors.len() > DP_NODE_LIMIT) as u32;
                // Scratch first: the provider memoizes the staged block
                // per flavor, so `decode_full` replays it and the real
                // discovery work lands in the persistent arena's stats.
                let pg = gpd.decode_with_scratch(&shot.detectors, &mut scratch_g);
                let fg = gpd.decode_full(&shot.detectors);
                let fo = ond.decode_full(&shot.detectors);
                assert!(
                    (fo.weight - fg.weight).abs() <= 1e-6 * (1.0 + fo.weight.abs()),
                    "weight certificate failed on {:?}: {} vs {}",
                    shot.detectors,
                    fg.weight,
                    fo.weight
                );
                assert_eq!(pg.observables, fg.observables);
                ond.decode_with_scratch(&shot.detectors, &mut scratch_o);
            }
            assert!(deep > 100, "only {deep} deep syndromes sampled");
            // Dispatch drift guard: each backend drives only its own
            // engine.
            assert!(!scratch_g.graphpd.stats.is_idle());
            assert!(scratch_g.graphpd.stats.merges > 0);
            assert!(scratch_g.graphpd.stats.blossoms > 0);
            assert!(scratch_g.ondemand.stats.is_idle());
            assert!(!scratch_o.ondemand.stats.is_idle());
            assert!(scratch_o.graphpd.stats.is_idle());
        }
    }

    #[test]
    fn local_backend_batch_matches_per_shot() {
        let lctx = local_ctx(5, 1e-3);
        let mut dec = MwpmDecoder::for_context(&lctx);
        let mut scratch = DecodeScratch::new();
        // Three HW-2 lists batched as one same-weight run.
        let lists: [[u32; 2]; 3] = [[0, 1], [5, 17], [40, 41]];
        let flat: Vec<u32> = lists.iter().flatten().copied().collect();
        let mut out = vec![Prediction::identity(); 3];
        dec.decode_same_weight_batch(2, &flat, &mut out, &mut scratch);
        for (list, got) in lists.iter().zip(&out) {
            let want = dec.decode_with_scratch(list, &mut scratch);
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = MwpmDecoder::new(ctx.gwt());
        assert_eq!(Decoder::name(&dec), "MWPM");
    }
}
