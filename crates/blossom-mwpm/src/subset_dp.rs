//! Exact minimum-weight matching with boundary via subset dynamic
//! programming.
//!
//! For `k` active detectors, state `S ⊆ {0..k}` holds the minimum cost of
//! resolving exactly the detectors in `S`, where each detector is either
//! paired with another in `S` or matched to the boundary. Fixing the lowest
//! set bit of `S` as the next detector to resolve makes each state's
//! transition set `O(k)`, for `O(2^k · k)` total time — exact and fast for
//! the Hamming weights the Astrea paper targets (`k ≤ 20`).

use decoding_graph::DecodeScratch;

/// Hard cap on the number of nodes the DP will accept (memory is `O(2^k)`).
pub const MAX_DP_NODES: usize = 26;

/// Computes a minimum-weight matching-with-boundary over `k` nodes.
///
/// `pair_weight(i, j)` is the cost of matching nodes `i` and `j` together;
/// `boundary_weight(i)` the cost of matching `i` to the boundary alone.
/// Returns the per-node assignment: `mate[i] = Some(j)` for a pair, `None`
/// for a boundary match, plus the optimal total weight.
///
/// ```
/// use blossom_mwpm::subset_dp::solve;
///
/// // Nodes 0 and 1 are close; node 2 sits next to the boundary.
/// let (mate, cost) = solve(
///     3,
///     |i, j| if (i, j) == (0, 1) || (i, j) == (1, 0) { 1.0 } else { 9.0 },
///     |i| if i == 2 { 0.5 } else { 9.0 },
/// );
/// assert_eq!(mate, vec![Some(1), Some(0), None]);
/// assert_eq!(cost, 1.5);
/// ```
///
/// # Panics
///
/// Panics if `k > MAX_DP_NODES`.
pub fn solve(
    k: usize,
    pair_weight: impl FnMut(usize, usize) -> f64,
    boundary_weight: impl FnMut(usize) -> f64,
) -> (Vec<Option<usize>>, f64) {
    let mut scratch = DecodeScratch::new();
    let cost = solve_with_scratch(k, pair_weight, boundary_weight, &mut scratch);
    let mate = scratch.mate[..k]
        .iter()
        .map(|&m| if m == usize::MAX { None } else { Some(m) })
        .collect();
    (mate, cost)
}

/// [`solve`] with caller-provided working memory — the batched hot path.
///
/// All `O(2^k)` tables live in `scratch` and keep their capacity across
/// calls; steady-state decoding performs no allocation. On return,
/// `scratch.mate[..k]` holds the assignment (`usize::MAX` = boundary
/// match) and the optimal total weight is returned.
///
/// # Panics
///
/// Panics if `k > MAX_DP_NODES`.
pub fn solve_with_scratch(
    k: usize,
    mut pair_weight: impl FnMut(usize, usize) -> f64,
    mut boundary_weight: impl FnMut(usize) -> f64,
    scratch: &mut DecodeScratch,
) -> f64 {
    assert!(
        k <= MAX_DP_NODES,
        "subset DP limited to {MAX_DP_NODES} nodes, got {k}"
    );
    scratch.mate.clear();
    if k == 0 {
        return 0.0;
    }

    // Cache the weight oracle into dense arrays.
    let w = &mut scratch.weights;
    let b = &mut scratch.boundary;
    w.clear();
    w.resize(k * k, 0.0);
    b.clear();
    b.resize(k, 0.0);
    for i in 0..k {
        b[i] = boundary_weight(i);
        for j in (i + 1)..k {
            let wij = pair_weight(i, j);
            w[i * k + j] = wij;
            w[j * k + i] = wij;
        }
    }

    let full = (1usize << k) - 1;
    let cost = &mut scratch.cost;
    cost.clear();
    cost.resize(full + 1, f64::INFINITY);
    // choice[s]: the node the lowest set bit of s was matched with, or
    // usize::MAX for a boundary match.
    let choice = &mut scratch.choice;
    choice.clear();
    choice.resize(full + 1, usize::MAX);
    cost[0] = 0.0;

    for s in 1..=full {
        let i = s.trailing_zeros() as usize;
        let without_i = s & !(1 << i);
        // Option 1: match i to the boundary.
        let mut best = cost[without_i] + b[i];
        let mut best_choice = usize::MAX;
        // Option 2: match i with another node j in s.
        let mut rest = without_i;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let c = cost[without_i & !(1 << j)] + w[i * k + j];
            if c < best {
                best = c;
                best_choice = j;
            }
        }
        cost[s] = best;
        choice[s] = best_choice;
    }

    // Reconstruct.
    scratch.mate.resize(k, usize::MAX);
    let mut s = full;
    while s != 0 {
        let i = s.trailing_zeros() as usize;
        let j = choice[s];
        if j == usize::MAX {
            scratch.mate[i] = usize::MAX;
            s &= !(1 << i);
        } else {
            scratch.mate[i] = j;
            scratch.mate[j] = i;
            s &= !(1 << i);
            s &= !(1 << j);
        }
    }

    cost[full]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let (mate, cost) = solve(0, |_, _| 0.0, |_| 0.0);
        assert!(mate.is_empty());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn single_node_goes_to_boundary() {
        let (mate, cost) = solve(1, |_, _| unreachable!(), |_| 2.5);
        assert_eq!(mate, vec![None]);
        assert_eq!(cost, 2.5);
    }

    #[test]
    fn pair_beats_two_boundaries_when_cheaper() {
        let (mate, cost) = solve(2, |_, _| 1.0, |_| 5.0);
        assert_eq!(mate, vec![Some(1), Some(0)]);
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn boundaries_beat_expensive_pair() {
        let (mate, cost) = solve(2, |_, _| 100.0, |_| 5.0);
        assert_eq!(mate, vec![None, None]);
        assert_eq!(cost, 10.0);
    }

    #[test]
    fn odd_count_sends_one_to_boundary() {
        // Three nodes in a line: 0 -1- 1 -1- 2, boundary cost 10 except
        // node 2 (cost 1). Optimal: pair (0,1), node 2 to boundary.
        let w = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            match (i, j) {
                (0, 1) | (1, 2) => 1.0,
                (0, 2) => 2.0,
                _ => unreachable!(),
            }
        };
        let b = |i: usize| if i == 2 { 1.0 } else { 10.0 };
        let (mate, cost) = solve(3, w, b);
        assert_eq!(mate, vec![Some(1), Some(0), None]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn four_node_optimal_pairing() {
        // Weights favour (0,2) + (1,3) over the other pairings.
        let weights = [
            [0.0, 9.0, 1.0, 9.0],
            [9.0, 0.0, 9.0, 1.0],
            [1.0, 9.0, 0.0, 9.0],
            [9.0, 1.0, 9.0, 0.0],
        ];
        let (mate, cost) = solve(4, |i, j| weights[i][j], |_| 100.0);
        assert_eq!(cost, 2.0);
        assert_eq!(mate[0], Some(2));
        assert_eq!(mate[1], Some(3));
    }

    #[test]
    fn mixed_boundary_and_pair() {
        // 0 and 1 near opposite boundaries; 2 and 3 close together in the
        // middle. Optimal: 0→boundary, 1→boundary, (2,3).
        let w = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            match (i, j) {
                (2, 3) => 1.0,
                (0, 1) => 8.0,
                _ => 6.0,
            }
        };
        let b = |i: usize| if i < 2 { 1.0 } else { 7.0 };
        let (mate, cost) = solve(4, w, b);
        assert_eq!(mate, vec![None, None, Some(3), Some(2)]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_optimal_vs_brute_force() {
        // Exhaustively verify against brute-force enumeration for k = 5
        // with pseudo-random weights.
        let k = 5;
        let w = |i: usize, j: usize| (((i * 7 + j * 13) % 11) + 1) as f64;
        let b = |i: usize| (((i * 5) % 7) + 2) as f64;
        let (_, dp_cost) = solve(k, w, b);

        // Brute force: every assignment encoded as recursive pairing.
        fn brute(
            nodes: &[usize],
            w: &dyn Fn(usize, usize) -> f64,
            b: &dyn Fn(usize) -> f64,
        ) -> f64 {
            match nodes {
                [] => 0.0,
                [first, rest @ ..] => {
                    let mut best = b(*first) + brute(rest, w, b);
                    for (idx, &j) in rest.iter().enumerate() {
                        let mut remaining = rest.to_vec();
                        remaining.remove(idx);
                        best = best.min(w(*first, j) + brute(&remaining, w, b));
                    }
                    best
                }
            }
        }
        let nodes: Vec<usize> = (0..k).collect();
        let brute_cost = brute(&nodes, &w, &b);
        assert!((dp_cost - brute_cost).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn rejects_oversized_input() {
        solve(MAX_DP_NODES + 1, |_, _| 0.0, |_| 0.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solve() {
        // A dirty arena from a bigger problem must not leak into later,
        // smaller solves.
        let w = |i: usize, j: usize| (((i * 7 + j * 13) % 11) + 1) as f64;
        let b = |i: usize| (((i * 5) % 7) + 2) as f64;
        let mut scratch = DecodeScratch::new();
        let _ = solve_with_scratch(7, w, b, &mut scratch);
        for k in [0usize, 1, 3, 5] {
            let (mate, cost) = solve(k, w, b);
            let cost_s = solve_with_scratch(k, w, b, &mut scratch);
            assert_eq!(cost, cost_s, "k={k}");
            let mate_s: Vec<Option<usize>> = scratch.mate[..k]
                .iter()
                .map(|&m| if m == usize::MAX { None } else { Some(m) })
                .collect();
            assert_eq!(mate, mate_s, "k={k}");
        }
    }
}
