//! Exact minimum-weight matching with boundary via subset dynamic
//! programming.
//!
//! For `k` active detectors, state `S ⊆ {0..k}` holds the minimum cost of
//! resolving exactly the detectors in `S`, where each detector is either
//! paired with another in `S` or matched to the boundary. Fixing the lowest
//! set bit of `S` as the next detector to resolve makes each state's
//! transition set `O(k)` — exact and fast for the Hamming weights the
//! Astrea paper targets (`k ≤ 20`).
//!
//! Two exact prunings cut the naive `O(2^k · k)` well below it on real
//! syndromes without changing the optimal weight:
//!
//! * **Transition filter** — a pair `(i, j)` with
//!   `w(i, j) ≥ b(i) + b(j)` can always be replaced by two boundary
//!   matches at no extra cost (within any subset), so such transitions
//!   are skipped. On surface-code syndromes roughly half of all pairs
//!   are filtered.
//! * **Cluster decomposition** — the optimum decomposes over connected
//!   components of the surviving pair graph: a cross-component pair is
//!   filtered by definition. Components of ≤ 4 nodes are decided by a
//!   register-only closed form; bigger ones run their own DP over the
//!   submask states of the component's member mask, so an 8-detector
//!   syndrome made of four local 2-detector clusters costs four
//!   closed-form evaluations instead of a `2⁸` table walk.
//! * **Reachable-state memoization** — the per-component DP runs
//!   top-down with memoization, so only states *reachable* from the
//!   full component under the lowest-bit pairing rule are ever
//!   computed. Resolving the lowest set bit removes it alone or with
//!   one adjacent partner, which leaves most of the `2^c` submasks
//!   unreachable: on d = 7 surface-code syndromes the reachable set is
//!   3–11 % of `2^c` across the Hamming-weight-6..10 tail.
//!
//! All three prunings are exact: the first two only drop pair options
//! that tie or lose against boundary matches, and the third skips
//! states whose value could never be read. At exact weight ties the
//! returned *assignment* prefers boundary matches, deterministically.

use decoding_graph::DecodeScratch;

/// Hard cap on the number of nodes the DP will accept (memory is `O(2^k)`).
pub const MAX_DP_NODES: usize = 26;

/// Computes a minimum-weight matching-with-boundary over `k` nodes.
///
/// `pair_weight(i, j)` is the cost of matching nodes `i` and `j` together;
/// `boundary_weight(i)` the cost of matching `i` to the boundary alone.
/// Returns the per-node assignment: `mate[i] = Some(j)` for a pair, `None`
/// for a boundary match, plus the optimal total weight.
///
/// ```
/// use blossom_mwpm::subset_dp::solve;
///
/// // Nodes 0 and 1 are close; node 2 sits next to the boundary.
/// let (mate, cost) = solve(
///     3,
///     |i, j| if (i, j) == (0, 1) || (i, j) == (1, 0) { 1.0 } else { 9.0 },
///     |i| if i == 2 { 0.5 } else { 9.0 },
/// );
/// assert_eq!(mate, vec![Some(1), Some(0), None]);
/// assert_eq!(cost, 1.5);
/// ```
///
/// # Panics
///
/// Panics if `k > MAX_DP_NODES`.
pub fn solve(
    k: usize,
    pair_weight: impl FnMut(usize, usize) -> f64,
    boundary_weight: impl FnMut(usize) -> f64,
) -> (Vec<Option<usize>>, f64) {
    let mut scratch = DecodeScratch::new();
    let cost = solve_with_scratch(k, pair_weight, boundary_weight, &mut scratch);
    let mate = scratch.mate[..k]
        .iter()
        .map(|&m| if m == usize::MAX { None } else { Some(m) })
        .collect();
    (mate, cost)
}

/// [`solve`] with caller-provided working memory — the batched hot path.
///
/// All `O(2^k)` tables live in `scratch` and keep their capacity across
/// calls; steady-state decoding performs no allocation. On return,
/// `scratch.mate[..k]` holds the assignment (`usize::MAX` = boundary
/// match) and the optimal total weight is returned.
///
/// # Panics
///
/// Panics if `k > MAX_DP_NODES`.
pub fn solve_with_scratch(
    k: usize,
    mut pair_weight: impl FnMut(usize, usize) -> f64,
    mut boundary_weight: impl FnMut(usize) -> f64,
    scratch: &mut DecodeScratch,
) -> f64 {
    assert!(
        k <= MAX_DP_NODES,
        "subset DP limited to {MAX_DP_NODES} nodes, got {k}"
    );
    scratch.mate.clear();
    if k == 0 {
        return 0.0;
    }
    if k <= 4 {
        scratch.mate.resize(k, usize::MAX);
        let (cost, mate) = solve_closed_form(k, pair_weight, boundary_weight);
        for (i, &m) in mate[..k].iter().enumerate() {
            scratch.mate[i] = m;
        }
        return cost;
    }

    // Cache the weight oracle into dense arrays.
    let w = &mut scratch.weights;
    let b = &mut scratch.boundary;
    w.clear();
    w.resize(k * k, 0.0);
    b.clear();
    b.resize(k, 0.0);
    for i in 0..k {
        b[i] = boundary_weight(i);
        for j in (i + 1)..k {
            let wij = pair_weight(i, j);
            w[i * k + j] = wij;
            w[j * k + i] = wij;
        }
    }
    solve_staged(k, scratch)
}

/// The solve phase of [`solve_with_scratch`] over *pre-staged* operands:
/// `scratch.weights` must hold the symmetric `k × k` pair-weight matrix
/// (diagonal ignored) and `scratch.boundary` the `k` boundary weights.
///
/// Splitting staging from solving lets callers that can gather weights in
/// bulk (see `GlobalWeightTable::gather_exact_clamped`) skip the per-entry
/// closure protocol entirely. Components of ≤ 4 nodes — the common case
/// once the adjacency pruning decomposes a realistic syndrome — are
/// solved by the register-only closed form instead of the submask DP.
///
/// On return `scratch.mate[..k]` holds the assignment (`usize::MAX` =
/// boundary) and the optimal total weight is returned.
///
/// # Panics
///
/// Panics if `k == 0` or `k > MAX_DP_NODES`.
pub fn solve_staged(k: usize, scratch: &mut DecodeScratch) -> f64 {
    assert!(
        (1..=MAX_DP_NODES).contains(&k),
        "subset DP limited to 1..={MAX_DP_NODES} nodes, got {k}"
    );
    let DecodeScratch {
        weights: w,
        boundary: b,
        cost,
        mate,
        parent: adj,
        stamp,
        epoch,
        ..
    } = scratch;

    // Adjacency masks: bit j of adj[i] is set iff pairing (i, j) can
    // strictly beat sending both nodes to the boundary. Everything else
    // is pruned from the DP transitions (exact — see module docs).
    adj.clear();
    adj.resize(k, 0u32);
    for i in 0..k {
        for j in (i + 1)..k {
            if w[i * k + j] < b[i] + b[j] {
                adj[i] |= 1 << j;
                adj[j] |= 1 << i;
            }
        }
    }

    // k ≤ MAX_DP_NODES = 26, so component masks fit in u32.
    let full: u32 = (1u32 << k) - 1;
    // The cost table is never cleared: `stamp[s] == epoch` marks which
    // entries were computed by the *current* solve, so the table (and
    // any stale values from earlier calls) is reused as-is. Epochs are
    // bumped per solve; stamps only need the one-off zero-fill on grow.
    if *epoch == u32::MAX {
        stamp.clear();
        *epoch = 0;
    }
    *epoch += 1;
    if cost.len() <= full as usize {
        cost.resize(full as usize + 1, f64::INFINITY);
    }
    if stamp.len() <= full as usize {
        stamp.resize(full as usize + 1, 0);
    }
    cost[0] = 0.0;
    stamp[0] = *epoch;
    mate.clear();
    mate.resize(k, usize::MAX);

    let mut total = 0.0;
    let mut unvisited = full;
    while unvisited != 0 {
        // Flood-fill one connected component of the surviving pair graph
        // from the lowest unvisited node.
        let mut comp = unvisited & unvisited.wrapping_neg();
        loop {
            let mut grown = comp;
            let mut bits = comp;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                grown |= adj[i];
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        unvisited &= !comp;

        let c = comp.count_ones() as usize;
        if c == 1 {
            let i = comp.trailing_zeros() as usize;
            total += b[i];
            continue;
        }

        if c <= 4 {
            // Small component: the closed form decides it in registers,
            // skipping the 2^c table walk and the backtrack entirely.
            let mut idx = [0usize; 4];
            let mut bits = comp;
            for slot in idx[..c].iter_mut() {
                *slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
            }
            let (cost_c, mate4) =
                solve_closed_form(c, |a, bb| w[idx[a] * k + idx[bb]], |a| b[idx[a]]);
            for (a, &m) in mate4[..c].iter().enumerate() {
                if m != usize::MAX {
                    mate[idx[a]] = idx[m];
                }
            }
            total += cost_c;
            continue;
        }

        // Top-down DP over only the states *reachable* from `comp` under
        // the lowest-bit pairing rule: resolving the lowest set bit either
        // removes it alone (boundary) or together with one surviving
        // partner, so most of `comp`'s 2^c submasks can never appear. On
        // d = 7 syndromes the reachable set is 3–11 % of 2^c for the
        // Hamming-weight-6..10 tail (the ascending bottom-up sweep touches
        // all of it). Candidates are evaluated in the same order as the
        // old sweep — boundary first, then partners ascending — so every
        // computed state holds the bit-identical cost. No backtracking
        // table: the argmin of the few states on the reconstruction path
        // is re-derived afterwards, which keeps the per-state work to one
        // table write.
        total += dp_cost(comp, k, w, b, adj, cost, stamp, *epoch);

        // Reconstruct by re-deriving each path state's argmin: the first
        // candidate (boundary, then partners in ascending order) whose
        // re-computed cost equals the stored optimum is exactly the last
        // strict improvement of the forward pass — identical expressions
        // over identical operands compare bit-equal.
        let mut s = comp;
        while s != 0 {
            let i = s.trailing_zeros() as usize;
            let without_i = s & !(1 << i);
            let c_s = cost[s as usize];
            if cost[without_i as usize] + b[i] == c_s {
                s = without_i;
                continue;
            }
            let mut rest = without_i & adj[i];
            let mut next = without_i;
            while rest != 0 {
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if cost[(without_i & !(1 << j)) as usize] + w[i * k + j] == c_s {
                    mate[i] = j;
                    mate[j] = i;
                    next = without_i & !(1 << j);
                    break;
                }
            }
            debug_assert_ne!(next, without_i, "backtrack failed to re-derive a choice");
            s = next;
        }
    }

    total
}

/// Memoized cost of resolving exactly the detectors in `s`, recursing
/// only into states reachable under the lowest-bit pairing rule.
/// `stamp[x] == epoch` marks `cost[x]` as already computed this solve.
/// Candidate order (boundary, then partners ascending) matches the
/// retired bottom-up sweep, so computed entries are bit-identical to the
/// values that sweep produced. Recursion depth is bounded by the
/// component size (≤ [`MAX_DP_NODES`]).
#[allow(clippy::too_many_arguments)]
fn dp_cost(
    s: u32,
    k: usize,
    w: &[f64],
    b: &[f64],
    adj: &[u32],
    cost: &mut [f64],
    stamp: &mut [u32],
    epoch: u32,
) -> f64 {
    if stamp[s as usize] == epoch {
        return cost[s as usize];
    }
    // `s != 0` here: the empty state is stamped before the first call.
    let i = s.trailing_zeros() as usize;
    let without_i = s & !(1 << i);
    // Pre-check the memo before recursing: most successors are already
    // stamped, and the inline check is much cheaper than a call.
    #[inline]
    fn memo_or_recurse(
        s: u32,
        k: usize,
        w: &[f64],
        b: &[f64],
        adj: &[u32],
        cost: &mut [f64],
        stamp: &mut [u32],
        epoch: u32,
    ) -> f64 {
        if stamp[s as usize] == epoch {
            cost[s as usize]
        } else {
            dp_cost(s, k, w, b, adj, cost, stamp, epoch)
        }
    }
    // Option 1: match i to the boundary.
    let mut best = memo_or_recurse(without_i, k, w, b, adj, cost, stamp, epoch) + b[i];
    // Option 2: match i with a surviving partner j in s.
    let mut rest = without_i & adj[i];
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let c =
            memo_or_recurse(without_i & !(1 << j), k, w, b, adj, cost, stamp, epoch) + w[i * k + j];
        if c < best {
            best = c;
        }
    }
    cost[s as usize] = best;
    stamp[s as usize] = epoch;
    best
}

/// Exhaustive matching for `k ≤ 4`: every matching-with-boundary is one
/// of at most 10 candidate sums, decided in registers — no tables, no
/// adjacency pass. Candidates are evaluated boundary-heaviest first with
/// strict improvement, so exact ties prefer boundary matches like the DP.
///
/// Generic over the weight domain: `f64` for the staged decoders, an
/// unsigned integer for the GWT-direct quantized fast path (fixed-point
/// weights compare identically to their dequantized `f64` images because
/// the scale is a power of two, so integer sums stay exact in both
/// domains). Returns the optimal cost and the mate assignment over local
/// indices (`usize::MAX` = boundary).
///
/// # Panics
///
/// Panics if `k == 0` or `k > 4`.
pub fn solve_closed_form<T>(
    k: usize,
    mut pair_weight: impl FnMut(usize, usize) -> T,
    mut boundary_weight: impl FnMut(usize) -> T,
) -> (T, [usize; 4])
where
    T: Copy + PartialOrd + std::ops::Add<Output = T>,
{
    let mut mate = [usize::MAX; 4];
    let cost = match k {
        1 => boundary_weight(0),
        2 => {
            let (b0, b1) = (boundary_weight(0), boundary_weight(1));
            let w01 = pair_weight(0, 1);
            if w01 < b0 + b1 {
                mate[0] = 1;
                mate[1] = 0;
                w01
            } else {
                b0 + b1
            }
        }
        3 => {
            let b = [boundary_weight(0), boundary_weight(1), boundary_weight(2)];
            let mut best = b[0] + b[1] + b[2];
            let mut pick = usize::MAX;
            for (idx, (i, j)) in [(0usize, 1usize), (0, 2), (1, 2)].into_iter().enumerate() {
                let spare = 3 - i - j;
                let c = pair_weight(i, j) + b[spare];
                if c < best {
                    best = c;
                    pick = idx;
                }
            }
            if pick != usize::MAX {
                let (i, j) = [(0, 1), (0, 2), (1, 2)][pick];
                mate[i] = j;
                mate[j] = i;
            }
            best
        }
        4 => {
            let b = [
                boundary_weight(0),
                boundary_weight(1),
                boundary_weight(2),
                boundary_weight(3),
            ];
            let w = [
                pair_weight(0, 1),
                pair_weight(0, 2),
                pair_weight(0, 3),
                pair_weight(1, 2),
                pair_weight(1, 3),
                pair_weight(2, 3),
            ];
            solve_closed_form_4(&w, &b, &mut mate)
        }
        _ => unreachable!("closed form limited to 1 ≤ k ≤ 4, got {k}"),
    };
    (cost, mate)
}

/// The `k = 4` closed form over pre-gathered operands: pair weights in
/// the triangular order `(0,1), (0,2), (0,3), (1,2), (1,3), (2,3)` —
/// exactly what `GlobalWeightTable::gather_small_quantized` produces.
pub fn solve_closed_form_4<T>(w: &[T; 6], b: &[T; 4], mate: &mut [usize; 4]) -> T
where
    T: Copy + PartialOrd + std::ops::Add<Output = T>,
{
    // Pair order above; PAIRS[p] = (i, j), COMPLEMENT[p] = the
    // opposite pair's index in the same order.
    const PAIRS: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    const COMPLEMENT: [usize; 3] = [5, 4, 3]; // (0,1)↔(2,3), (0,2)↔(1,3), (0,3)↔(1,2)
    let mut best = b[0] + b[1] + b[2] + b[3];
    let mut pick = usize::MAX; // 0..6 single pair, 6..9 double pairing
    for (p, &(i, j)) in PAIRS.iter().enumerate() {
        let (u, v) = PAIRS[5 - p]; // the two nodes not in pair p
        debug_assert_eq!(i + j + u + v, 6);
        let c = w[p] + b[u] + b[v];
        if c < best {
            best = c;
            pick = p;
        }
    }
    for p in 0..3 {
        let c = w[p] + w[COMPLEMENT[p]];
        if c < best {
            best = c;
            pick = 6 + p;
        }
    }
    if pick != usize::MAX {
        let (i, j) = PAIRS[if pick < 6 { pick } else { pick - 6 }];
        mate[i] = j;
        mate[j] = i;
        if pick >= 6 {
            let (u, v) = PAIRS[COMPLEMENT[pick - 6]];
            mate[u] = v;
            mate[v] = u;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let (mate, cost) = solve(0, |_, _| 0.0, |_| 0.0);
        assert!(mate.is_empty());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn single_node_goes_to_boundary() {
        let (mate, cost) = solve(1, |_, _| unreachable!(), |_| 2.5);
        assert_eq!(mate, vec![None]);
        assert_eq!(cost, 2.5);
    }

    #[test]
    fn pair_beats_two_boundaries_when_cheaper() {
        let (mate, cost) = solve(2, |_, _| 1.0, |_| 5.0);
        assert_eq!(mate, vec![Some(1), Some(0)]);
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn boundaries_beat_expensive_pair() {
        let (mate, cost) = solve(2, |_, _| 100.0, |_| 5.0);
        assert_eq!(mate, vec![None, None]);
        assert_eq!(cost, 10.0);
    }

    #[test]
    fn odd_count_sends_one_to_boundary() {
        // Three nodes in a line: 0 -1- 1 -1- 2, boundary cost 10 except
        // node 2 (cost 1). Optimal: pair (0,1), node 2 to boundary.
        let w = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            match (i, j) {
                (0, 1) | (1, 2) => 1.0,
                (0, 2) => 2.0,
                _ => unreachable!(),
            }
        };
        let b = |i: usize| if i == 2 { 1.0 } else { 10.0 };
        let (mate, cost) = solve(3, w, b);
        assert_eq!(mate, vec![Some(1), Some(0), None]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn four_node_optimal_pairing() {
        // Weights favour (0,2) + (1,3) over the other pairings.
        let weights = [
            [0.0, 9.0, 1.0, 9.0],
            [9.0, 0.0, 9.0, 1.0],
            [1.0, 9.0, 0.0, 9.0],
            [9.0, 1.0, 9.0, 0.0],
        ];
        let (mate, cost) = solve(4, |i, j| weights[i][j], |_| 100.0);
        assert_eq!(cost, 2.0);
        assert_eq!(mate[0], Some(2));
        assert_eq!(mate[1], Some(3));
    }

    #[test]
    fn mixed_boundary_and_pair() {
        // 0 and 1 near opposite boundaries; 2 and 3 close together in the
        // middle. Optimal: 0→boundary, 1→boundary, (2,3).
        let w = |i: usize, j: usize| {
            let (i, j) = (i.min(j), i.max(j));
            match (i, j) {
                (2, 3) => 1.0,
                (0, 1) => 8.0,
                _ => 6.0,
            }
        };
        let b = |i: usize| if i < 2 { 1.0 } else { 7.0 };
        let (mate, cost) = solve(4, w, b);
        assert_eq!(mate, vec![None, None, Some(3), Some(2)]);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_optimal_vs_brute_force() {
        // Exhaustively verify against brute-force enumeration for k = 5
        // with pseudo-random weights.
        let k = 5;
        let w = |i: usize, j: usize| (((i * 7 + j * 13) % 11) + 1) as f64;
        let b = |i: usize| (((i * 5) % 7) + 2) as f64;
        let (_, dp_cost) = solve(k, w, b);

        // Brute force: every assignment encoded as recursive pairing.
        fn brute(
            nodes: &[usize],
            w: &dyn Fn(usize, usize) -> f64,
            b: &dyn Fn(usize) -> f64,
        ) -> f64 {
            match nodes {
                [] => 0.0,
                [first, rest @ ..] => {
                    let mut best = b(*first) + brute(rest, w, b);
                    for (idx, &j) in rest.iter().enumerate() {
                        let mut remaining = rest.to_vec();
                        remaining.remove(idx);
                        best = best.min(w(*first, j) + brute(&remaining, w, b));
                    }
                    best
                }
            }
        }
        let nodes: Vec<usize> = (0..k).collect();
        let brute_cost = brute(&nodes, &w, &b);
        assert!((dp_cost - brute_cost).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn rejects_oversized_input() {
        solve(MAX_DP_NODES + 1, |_, _| 0.0, |_| 0.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solve() {
        // A dirty arena from a bigger problem must not leak into later,
        // smaller solves.
        let w = |i: usize, j: usize| (((i * 7 + j * 13) % 11) + 1) as f64;
        let b = |i: usize| (((i * 5) % 7) + 2) as f64;
        let mut scratch = DecodeScratch::new();
        let _ = solve_with_scratch(7, w, b, &mut scratch);
        for k in [0usize, 1, 3, 5] {
            let (mate, cost) = solve(k, w, b);
            let cost_s = solve_with_scratch(k, w, b, &mut scratch);
            assert_eq!(cost, cost_s, "k={k}");
            let mate_s: Vec<Option<usize>> = scratch.mate[..k]
                .iter()
                .map(|&m| if m == usize::MAX { None } else { Some(m) })
                .collect();
            assert_eq!(mate, mate_s, "k={k}");
        }
    }
}
