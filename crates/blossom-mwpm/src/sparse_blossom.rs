//! A sparse, scratch-reusing blossom solver for the deep decode tail.
//!
//! Same primal–dual algorithm as [`crate::dense_blossom`] (defect-rooted
//! alternating-tree growth under a global tree-growth schedule, dual
//! updates restricted to the explored forest, blossom shrink/expand via
//! the surface/parent-pointer forest), but with the per-shot staging cost
//! removed:
//!
//! * the dense path allocates and fills a `(2n+1)²` edge matrix per shot;
//!   here the original-pair block is **virtual** — endpoints are implicit
//!   and only the reflected `(n+1)²` weight block is staged (those values
//!   are needed anyway for the dual upper bound),
//! * rows for contracted blossoms live in compact representative-edge
//!   tables that are written **lazily**, only when a blossom actually
//!   forms (rare on decoding-graph syndromes),
//! * all state lives in a persistent [`SparseBlossomScratch`] arena:
//!   buffers grow monotonically, the LCA `vis` stamps are epoch-validated
//!   instead of cleared, and member walks iterate in place instead of
//!   cloning — steady-state solves perform **zero** heap allocation.
//!
//! Reuse safety rests on one invariant, inherited from the dense
//! formulation: every blossom-indexed slot is written before it is read
//! within a solve (rows are zeroed and then unconditionally overwritten by
//! the first member's representative edge on creation). Stale contents
//! from previous shots therefore never influence the result, which keeps
//! each solve a pure function of its inputs — required by the pipeline's
//! streamed == barrier bit-identity contract. For the same reason dual
//! *values* are never warm-started across shots, only allocations and the
//! `vis` epoch carry over.
//!
//! The solver is a faithful port: identical initial duals, scan orders,
//! slack tie-breaks, and blossom id allocation. Its mate assignment is
//! **bit-identical** to the dense solver's on every instance (asserted by
//! this module's tests and the cross-solver property tests), which is what
//! lets the streaming pipeline adopt it while keeping `dense_blossom` as
//! the differential oracle and `LerResult` unchanged.

use decoding_graph::{RepEdge, SparseBlossomScratch};

const INF: i64 = i64::MAX / 4;

/// The in-flight solve: geometry (`n`, strides) plus the borrowed arena.
struct SparseSolver<'s> {
    n: usize,
    n_x: usize,
    /// Row stride of the staged weight block (`n + 1`).
    wn: usize,
    /// Id-space size (`2n + 1`): vertices `1..=n`, blossoms `n+1..=2n`.
    stride: usize,
    sc: &'s mut SparseBlossomScratch,
}

impl SparseSolver<'_> {
    /// Virtual edge lookup: original pairs come from the weight block
    /// with implicit endpoints, blossom rows/columns from the compact
    /// representative tables. `w == 0` means absent.
    #[inline]
    fn e(&self, u: usize, v: usize) -> RepEdge {
        if u > self.n {
            self.sc.rep_row[(u - self.n - 1) * self.stride + v]
        } else if v > self.n {
            self.sc.rep_col[(v - self.n - 1) * self.stride + u]
        } else {
            RepEdge {
                u,
                v,
                w: self.sc.weights[u * self.wn + v],
            }
        }
    }

    #[inline]
    fn set_edge(&mut self, u: usize, v: usize, e: RepEdge) {
        if u > self.n {
            self.sc.rep_row[(u - self.n - 1) * self.stride + v] = e;
        } else {
            debug_assert!(v > self.n, "original-pair block is immutable");
            self.sc.rep_col[(v - self.n - 1) * self.stride + u] = e;
        }
    }

    #[inline]
    fn zero_edge(&mut self, u: usize, v: usize) {
        if u > self.n {
            self.sc.rep_row[(u - self.n - 1) * self.stride + v].w = 0;
        } else {
            debug_assert!(v > self.n, "original-pair block is immutable");
            self.sc.rep_col[(v - self.n - 1) * self.stride + u].w = 0;
        }
    }

    #[inline]
    fn ff(&self, b: usize, x: usize) -> usize {
        self.sc.flower_from[(b - self.n - 1) * self.wn + x]
    }

    #[inline]
    fn ff_set(&mut self, b: usize, x: usize, m: usize) {
        self.sc.flower_from[(b - self.n - 1) * self.wn + x] = m;
    }

    /// Slack of an edge under the current duals. Every [`RepEdge`]
    /// handed out by [`Self::e`] carries `w == e(e.u, e.v).w` (the
    /// original block is immutable and representative edges are built
    /// from it), so the dense formulation's second lookup is skipped —
    /// same value, one load.
    #[inline]
    fn e_delta(&self, e: RepEdge) -> i64 {
        self.sc.lab[e.u] + self.sc.lab[e.v] - e.w * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        // Slack candidates are always original vertices; when the tree
        // root `x` is original too, both deltas come straight off the
        // immutable weight block — no representative lookups.
        debug_assert!(u <= self.n, "slack candidates are original vertices");
        if x <= self.n {
            let lab_x = self.sc.lab[x];
            let d_new = self.sc.lab[u] + lab_x - self.sc.weights[u * self.wn + x] * 2;
            let s = self.sc.slack[x];
            if s == 0 || d_new < self.sc.lab[s] + lab_x - self.sc.weights[s * self.wn + x] * 2 {
                self.sc.slack[x] = u;
            }
        } else if self.sc.slack[x] == 0
            || self.e_delta(self.e(u, x)) < self.e_delta(self.e(self.sc.slack[x], x))
        {
            self.sc.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.sc.slack[x] = 0;
        // Running-best slack delta: same strict-< candidate selection as
        // the dense scan, without re-deriving the incumbent's delta per
        // candidate. For original `x` the mirrored weight row is walked
        // sequentially (`w(u, x) == w(x, u)` by staging), for blossom
        // `x` the compact representative column already is sequential.
        let mut best = 0i64;
        if x <= self.n {
            let base = x * self.wn;
            let lab_x = self.sc.lab[x];
            for u in 1..=self.n {
                let w = self.sc.weights[base + u];
                if w > 0 && self.sc.st[u] != x && self.sc.s[self.sc.st[u]] == 0 {
                    let d = self.sc.lab[u] + lab_x - w * 2;
                    if self.sc.slack[x] == 0 || d < best {
                        self.sc.slack[x] = u;
                        best = d;
                    }
                }
            }
        } else {
            let base = (x - self.n - 1) * self.stride;
            for u in 1..=self.n {
                let e = self.sc.rep_col[base + u];
                if e.w > 0 && self.sc.st[u] != x && self.sc.s[self.sc.st[u]] == 0 {
                    let d = self.e_delta(e);
                    if self.sc.slack[x] == 0 || d < best {
                        self.sc.slack[x] = u;
                        best = d;
                    }
                }
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.sc.queue.push_back(x);
        } else {
            for i in 0..self.sc.flower[x].len() {
                let t = self.sc.flower[x][i];
                self.q_push(t);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.sc.st[x] = b;
        if x > self.n {
            for i in 0..self.sc.flower[x].len() {
                let t = self.sc.flower[x][i];
                self.set_st(t, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.sc.flower[b]
            .iter()
            .position(|&x| x == xr)
            .expect("xr must be a member of blossom b");
        if pr % 2 == 1 {
            self.sc.flower[b][1..].reverse();
            self.sc.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        let e = self.e(u, v);
        self.sc.mate[u] = e.v;
        if u > self.n {
            let xr = self.ff(u, e.u);
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let (a, b) = (self.sc.flower[u][i], self.sc.flower[u][i ^ 1]);
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.sc.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.sc.st[self.sc.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.sc.pa[xnv];
            self.set_match(xnv, self.sc.st[pa_xnv]);
            let (nu, nv) = (self.sc.st[pa_xnv], xnv);
            u = nu;
            v = nv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.sc.vis_epoch += 1;
        let t = self.sc.vis_epoch;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.sc.vis[u] == t {
                    return u;
                }
                self.sc.vis[u] = t;
                u = self.sc.st[self.sc.mate[u]];
                if u != 0 {
                    u = self.sc.st[self.sc.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.sc.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.sc.lab[b] = 0;
        self.sc.s[b] = 0;
        self.sc.mate[b] = self.sc.mate[lca];
        self.sc.flower[b].clear();
        self.sc.flower[b].push(lca);
        // Walk u's side of the cycle up to the LCA.
        let mut x = u;
        while x != lca {
            self.sc.flower[b].push(x);
            let y = self.sc.st[self.sc.mate[x]];
            self.sc.flower[b].push(y);
            self.q_push(y);
            x = self.sc.st[self.sc.pa[y]];
        }
        self.sc.flower[b][1..].reverse();
        // Walk v's side.
        let mut x = v;
        while x != lca {
            self.sc.flower[b].push(x);
            let y = self.sc.st[self.sc.mate[x]];
            self.sc.flower[b].push(y);
            self.q_push(y);
            x = self.sc.st[self.sc.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.zero_edge(b, x);
            self.zero_edge(x, b);
        }
        for x in 1..=self.n {
            self.ff_set(b, x, 0);
        }
        for i in 0..self.sc.flower[b].len() {
            let xs = self.sc.flower[b][i];
            for x in 1..=self.n_x {
                let eb = self.e(b, x);
                let exs = self.e(xs, x);
                if eb.w == 0 || self.e_delta(exs) < self.e_delta(eb) {
                    self.set_edge(b, x, exs);
                    let esx = self.e(x, xs);
                    self.set_edge(x, b, esx);
                }
            }
            if xs <= self.n {
                // An original member subsumes only itself.
                self.ff_set(b, xs, xs);
            } else {
                for x in 1..=self.n {
                    if self.ff(xs, x) != 0 {
                        self.ff_set(b, x, xs);
                    }
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        for i in 0..self.sc.flower[b].len() {
            let xs = self.sc.flower[b][i];
            self.set_st(xs, xs);
        }
        let xr = self.ff(b, self.e(b, self.sc.pa[b]).u);
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.sc.flower[b][i];
            let xns = self.sc.flower[b][i + 1];
            self.sc.pa[xs] = self.e(xns, xs).u;
            self.sc.s[xs] = 1;
            self.sc.s[xns] = 0;
            self.sc.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.sc.s[xr] = 1;
        self.sc.pa[xr] = self.sc.pa[b];
        for i in (pr + 1)..self.sc.flower[b].len() {
            let xs = self.sc.flower[b][i];
            self.sc.s[xs] = -1;
            self.set_slack(xs);
        }
        self.sc.st[b] = 0;
    }

    /// Handles one candidate edge of the tree-growth scan: grows the
    /// forest / augments on tight edges, records slack otherwise.
    /// Returns `true` if the matching grew.
    #[inline]
    fn scan_edge(&mut self, u: usize, v: usize, e: RepEdge) -> bool {
        if self.sc.st[u] != self.sc.st[v] {
            if self.e_delta(e) == 0 {
                if self.on_found_edge(e) {
                    return true;
                }
            } else {
                let stv = self.sc.st[v];
                self.update_slack(u, stv);
            }
        }
        false
    }

    /// Returns `true` if an augmenting path was found and applied.
    fn on_found_edge(&mut self, e: RepEdge) -> bool {
        let u = self.sc.st[e.u];
        let v = self.sc.st[e.v];
        if self.sc.s[v] == -1 {
            self.sc.pa[v] = e.u;
            self.sc.s[v] = 1;
            let nu = self.sc.st[self.sc.mate[v]];
            self.sc.slack[v] = 0;
            self.sc.slack[nu] = 0;
            self.sc.s[nu] = 0;
            self.q_push(nu);
        } else if self.sc.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: returns `true` if the matching grew by one pair.
    fn matching_phase(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.sc.s[x] = -1;
            self.sc.slack[x] = 0;
        }
        self.sc.queue.clear();
        for x in 1..=self.n_x {
            if self.sc.st[x] == x && self.sc.mate[x] == 0 {
                self.sc.pa[x] = 0;
                self.sc.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.sc.queue.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.sc.queue.pop_front() {
                if self.sc.s[self.sc.st[u]] == 1 {
                    continue;
                }
                // The queue only ever holds original vertices (`q_push`
                // recurses into blossom members), so `u`'s weight row is
                // the immutable original block: read it directly, one
                // load per candidate. `st` is re-read per candidate —
                // `on_found_edge` can contract blossoms mid-scan.
                debug_assert!(u <= self.n, "queue must hold original vertices");
                let base = u * self.wn;
                for v in 1..=self.n {
                    let w = self.sc.weights[base + v];
                    if w > 0 && self.scan_edge(u, v, RepEdge { u, v, w }) {
                        return true;
                    }
                }
            }
            // Dual adjustment, restricted to the explored forest.
            let mut d = INF;
            for b in (self.n + 1)..=self.n_x {
                if self.sc.st[b] == b && self.sc.s[b] == 1 {
                    d = d.min(self.sc.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.sc.st[x] == x && self.sc.slack[x] != 0 {
                    let delta = self.e_delta(self.e(self.sc.slack[x], x));
                    if self.sc.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.sc.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.sc.s[self.sc.st[u]] {
                    0 => {
                        if self.sc.lab[u] <= d {
                            return false; // Duals exhausted: no augmenting path.
                        }
                        self.sc.lab[u] -= d;
                    }
                    1 => self.sc.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.sc.st[b] == b {
                    match self.sc.s[b] {
                        0 => self.sc.lab[b] += 2 * d,
                        1 => self.sc.lab[b] -= 2 * d,
                        _ => {}
                    }
                }
            }
            self.sc.queue.clear();
            for x in 1..=self.n_x {
                if self.sc.st[x] == x && self.sc.slack[x] != 0 {
                    let e = self.e(self.sc.slack[x], x);
                    if self.sc.st[self.sc.slack[x]] != x
                        && self.e_delta(e) == 0
                        && self.on_found_edge(e)
                    {
                        return true;
                    }
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.sc.st[b] == b && self.sc.s[b] == 1 && self.sc.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }
}

/// Computes a **minimum-weight perfect matching** on the complete graph
/// over an even number of vertices, reusing `scratch` across calls.
///
/// The mate assignment is left in `scratch.mate[1..=n]` (1-based, `0`
/// never occurs on success); the returned value is the total weight of
/// the matching under the original `weights`. The result is a pure
/// function of `(n, weights)` — bit-identical to
/// [`crate::dense_blossom::min_weight_perfect_matching`] on every
/// instance — regardless of what the arena held before the call.
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn min_weight_perfect_matching_scratch(
    n: usize,
    weights: impl Fn(usize, usize) -> i64,
    scratch: &mut SparseBlossomScratch,
) -> i64 {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "need an even, positive vertex count, got {n}"
    );
    let wn = n + 1;
    let stride = 2 * n + 1;
    // Stage the original weights once (the dense path reads every pair
    // for its dual bound anyway), tracking the reflection pivot.
    if scratch.weights.len() < wn * wn {
        scratch.weights.resize(wn * wn, 0);
    }
    scratch.weights[0] = 0; // the e(0,0) "absent edge" sentinel
    let mut w_max_orig = i64::MIN;
    for u in 1..=n {
        scratch.weights[u * wn + u] = 0;
        for v in (u + 1)..=n {
            let w = weights(u - 1, v - 1);
            scratch.weights[u * wn + v] = w;
            scratch.weights[v * wn + u] = w;
            w_max_orig = w_max_orig.max(w);
        }
    }
    // Reflect in place: w' = W − w + 1 > 0, so minimum-weight perfect
    // matching becomes maximum-weight matching (always perfect on a
    // complete positive-weight graph).
    let mut lab0 = 0i64;
    for u in 1..=n {
        for v in (u + 1)..=n {
            let r = w_max_orig - scratch.weights[u * wn + v] + 1;
            scratch.weights[u * wn + v] = r;
            scratch.weights[v * wn + u] = r;
            lab0 = lab0.max(r);
        }
    }
    // Re-stamp the per-solve state; blossom-indexed slots keep stale
    // contents (written-before-read) and `vis` keeps its epoch.
    macro_rules! grow {
        ($buf:expr, $fill:expr) => {
            if $buf.len() < stride {
                $buf.resize(stride, $fill);
            }
        };
    }
    grow!(scratch.lab, 0);
    grow!(scratch.mate, 0);
    grow!(scratch.slack, 0);
    grow!(scratch.st, 0);
    grow!(scratch.pa, 0);
    grow!(scratch.s, -1);
    grow!(scratch.vis, 0);
    scratch.lab[0] = 0;
    scratch.st[0] = 0;
    scratch.mate[0] = 0;
    for u in 1..=n {
        scratch.lab[u] = lab0;
        scratch.st[u] = u;
        scratch.mate[u] = 0;
    }
    if scratch.rep_row.len() < n * stride {
        scratch.rep_row.resize(n * stride, RepEdge::default());
        scratch.rep_col.resize(n * stride, RepEdge::default());
    }
    if scratch.flower_from.len() < n * wn {
        scratch.flower_from.resize(n * wn, 0);
    }
    while scratch.flower.len() < stride {
        scratch.flower.push(Vec::new());
    }
    scratch.solves += 1;

    let mut solver = SparseSolver {
        n,
        n_x: n,
        wn,
        stride,
        sc: scratch,
    };
    while solver.matching_phase() {}

    let mut total = 0i64;
    for u in 1..=n {
        let m = scratch.mate[u];
        assert!(
            m != 0,
            "vertex {} left unmatched — not a perfect matching",
            u - 1
        );
        if u < m {
            total += weights(u - 1, m - 1);
        }
    }
    total
}

/// Allocating convenience wrapper with the dense solver's signature:
/// returns `(mate, total_weight)` with 0-based `mate[i] = j`.
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn min_weight_perfect_matching(
    n: usize,
    weights: impl Fn(usize, usize) -> i64,
) -> (Vec<usize>, i64) {
    let mut scratch = SparseBlossomScratch::new();
    let total = min_weight_perfect_matching_scratch(n, weights, &mut scratch);
    let mate = (1..=n).map(|u| scratch.mate[u] - 1).collect();
    (mate, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_blossom;

    #[test]
    fn two_vertices() {
        let (mate, w) = min_weight_perfect_matching(2, |_, _| 7);
        assert_eq!(mate, vec![1, 0]);
        assert_eq!(w, 7);
    }

    #[test]
    fn four_vertices_prefers_cheap_pairs() {
        let w = |u: usize, v: usize| {
            let (u, v) = (u.min(v), u.max(v));
            match (u, v) {
                (0, 1) | (2, 3) => 1,
                _ => 10,
            }
        };
        let (mate, total) = min_weight_perfect_matching(4, w);
        assert_eq!(total, 2);
        assert_eq!(mate[0], 1);
        assert_eq!(mate[2], 3);
    }

    #[test]
    fn forced_blossom_case_matches_dense() {
        let w = |u: usize, v: usize| {
            let (u, v) = (u.min(v), u.max(v));
            match (u, v) {
                (0, 1) | (1, 2) | (2, 3) | (3, 4) => 2,
                (0, 4) => 2,
                (0, 5) => 3,
                _ => 50,
            }
        };
        let (mate, total) = min_weight_perfect_matching(6, w);
        let (dense_mate, dense_total) = dense_blossom::min_weight_perfect_matching(6, w);
        assert_eq!(total, 7);
        assert_eq!(total, dense_total);
        assert_eq!(mate, dense_mate);
    }

    /// The core contract: bit-identical mate assignment to the dense
    /// solver on pseudo-random complete graphs, with ONE arena reused
    /// across every instance and the vertex count varying between calls
    /// (stressing the stale-slot and resize paths).
    #[test]
    fn mate_identical_to_dense_with_reused_scratch() {
        let mut scratch = SparseBlossomScratch::new();
        for round in 0..3u64 {
            for &n in &[12usize, 2, 8, 16, 4, 14, 6, 10, 20] {
                for seed in 0..12u64 {
                    let seed = seed + 100 * round;
                    let w = move |u: usize, v: usize| {
                        let (u, v) = (u.min(v), u.max(v));
                        ((u as u64 * 2654435761 + v as u64 * 40503 + seed * 9176)
                            .wrapping_mul(2246822519)
                            >> 33) as i64
                            % 251
                            + 1
                    };
                    let total = min_weight_perfect_matching_scratch(n, w, &mut scratch);
                    let (dense_mate, dense_total) =
                        dense_blossom::min_weight_perfect_matching(n, w);
                    assert_eq!(total, dense_total, "total diverged at n={n} seed={seed}");
                    for (u, &dm) in dense_mate.iter().enumerate().take(n) {
                        assert_eq!(
                            scratch.mate[u + 1] - 1,
                            dm,
                            "mate diverged at n={n} seed={seed} vertex {u}"
                        );
                    }
                }
            }
        }
        assert_eq!(scratch.solves, 3 * 9 * 12);
    }

    /// Low-spread weights force many tight edges and frequent blossoms;
    /// the rep-table and expand paths must still track dense exactly.
    #[test]
    fn blossom_heavy_instances_match_dense() {
        let mut scratch = SparseBlossomScratch::new();
        for &n in &[6usize, 8, 10, 12, 14, 16, 18, 24] {
            for seed in 0..20u64 {
                // Weights in 1..=8: low spread → many tight edges.
                let wi = move |u: usize, v: usize| {
                    let (u, v) = (u.min(v), u.max(v));
                    ((((u as u64).wrapping_mul(7919)
                        ^ (v as u64).wrapping_mul(104729)
                        ^ seed.wrapping_mul(0x9e3779b97f4a7c15))
                    .wrapping_mul(0x2545f4914f6cdd1d))
                        >> 61) as i64
                        + 1
                };
                let total = min_weight_perfect_matching_scratch(n, wi, &mut scratch);
                let (dense_mate, dense_total) = dense_blossom::min_weight_perfect_matching(n, wi);
                assert_eq!(total, dense_total, "total diverged at n={n} seed={seed}");
                for (u, &dm) in dense_mate.iter().enumerate().take(n) {
                    assert_eq!(
                        scratch.mate[u + 1] - 1,
                        dm,
                        "mate diverged at n={n} seed={seed} vertex {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn matching_is_a_permutation() {
        let w = |u: usize, v: usize| ((u * 31 + v * 17) % 23 + 1) as i64;
        let (mate, _) = min_weight_perfect_matching(14, |u, v| w(u.min(v), u.max(v)));
        for (u, &v) in mate.iter().enumerate() {
            assert_ne!(u, v);
            assert_eq!(mate[v], u, "mate is not an involution at {u}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_vertex_count() {
        min_weight_perfect_matching(3, |_, _| 1);
    }
}
