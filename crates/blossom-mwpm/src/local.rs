//! Local sparse MWPM decoding (the PyMatching-style approach of §8.1).
//!
//! The paper's related work highlights fast software matchers (PyMatching,
//! sparse blossom) that avoid all-pairs precomputation: each fired
//! detector explores the sparse matching graph only until it has seen a
//! handful of other fired detectors, and matching is solved over that
//! local candidate set. This decoder implements that idea:
//!
//! * **no Global Weight Table** — memory is `O(edges)`, not `O(ℓ²)`,
//!   which is what lets software matchers scale to distances where a GWT
//!   would be megabytes;
//! * truncated Dijkstra from each fired detector, stopping once
//!   `k_neighbors` other fired detectors *and* the boundary have been
//!   reached;
//! * exact minimum-weight matching over the candidate set (subset DP or
//!   blossom), with non-candidate pairs falling back to
//!   boundary-plus-boundary.
//!
//! With `k_neighbors` as small as 3–4 the decoder is indistinguishable
//! from full MWPM on realistic syndromes (asserted by this module's
//! tests), because distant pairings never participate in the optimum —
//! the same insight behind Astrea-G's weight filter (§6.1).

use crate::solution::MatchingSolution;
use crate::{dense_blossom, subset_dp};
use decoding_graph::{BoundaryTable, Decoder, MatchingGraph, Prediction};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Default number of fired-detector neighbors each search collects.
pub const DEFAULT_K_NEIGHBORS: usize = 4;

/// A sparse, GWT-free software MWPM decoder.
#[derive(Debug, Clone)]
pub struct LocalMwpmDecoder<'a> {
    graph: &'a MatchingGraph,
    k_neighbors: usize,
    /// Precomputed boundary distance and path parity per detector
    /// (syndrome-independent, so computed once at construction). Shared
    /// shape with the staged `LocalWeightProvider` backend.
    boundary: BoundaryTable,
    // Scratch buffers (stamped, so reset is O(touched)).
    dist: Vec<f64>,
    parity: Vec<u32>,
    stamp: Vec<u32>,
    active_slot: Vec<u32>,
    current: u32,
}

/// One candidate pairing discovered by the truncated search.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    weight: f64,
    observables: u32,
}

impl<'a> LocalMwpmDecoder<'a> {
    /// Creates a decoder over the sparse matching graph with the default
    /// neighbor budget.
    pub fn new(graph: &'a MatchingGraph) -> LocalMwpmDecoder<'a> {
        LocalMwpmDecoder::with_neighbors(graph, DEFAULT_K_NEIGHBORS)
    }

    /// Creates a decoder with a custom neighbor budget.
    ///
    /// # Panics
    ///
    /// Panics if `k_neighbors` is zero.
    pub fn with_neighbors(graph: &'a MatchingGraph, k_neighbors: usize) -> LocalMwpmDecoder<'a> {
        assert!(k_neighbors > 0, "need at least one neighbor candidate");
        let n = graph.num_detectors();
        LocalMwpmDecoder {
            graph,
            k_neighbors,
            boundary: BoundaryTable::new(graph),
            dist: vec![f64::INFINITY; n],
            parity: vec![0; n],
            stamp: vec![0; n],
            active_slot: vec![u32::MAX; n],
            current: 0,
        }
    }

    /// Decodes a syndrome into a full matching.
    pub fn decode_full(&mut self, detectors: &[u32]) -> MatchingSolution {
        let m = detectors.len();
        if m == 0 {
            return MatchingSolution::default();
        }

        // Mark active detectors with their local slot.
        for (i, &d) in detectors.iter().enumerate() {
            self.active_slot[d as usize] = i as u32;
        }

        // Truncated Dijkstra per active detector; boundary routes come
        // from the precomputed table.
        let mut pair_candidates: HashMap<(u32, u32), Candidate> = HashMap::new();
        let boundary: Vec<Candidate> = detectors
            .iter()
            .map(|&d| Candidate {
                weight: self.boundary.weight(d),
                observables: self.boundary.obs(d),
            })
            .collect();
        let target = self.k_neighbors.min(m.saturating_sub(1));
        // Radius bound: a pairing costing more than going to the boundary
        // from both ends can never appear in the optimum, so no search
        // needs to look past its own boundary cost plus the largest
        // boundary cost among the fired detectors.
        let b_max = boundary.iter().map(|c| c.weight).fold(0.0f64, f64::max);
        for (i, &src) in detectors.iter().enumerate() {
            let radius = boundary[i].weight + b_max;
            self.search_from(src, i, target, radius, &mut pair_candidates);
        }
        for &d in detectors {
            self.active_slot[d as usize] = u32::MAX;
        }

        // Effective weights over local slots; non-candidates fall back to
        // boundary + boundary.
        let eff = |i: usize, j: usize| -> (f64, u32, bool) {
            let key = (i.min(j) as u32, i.max(j) as u32);
            let via = boundary[i].weight + boundary[j].weight;
            match pair_candidates.get(&key) {
                Some(c) if c.weight <= via => (c.weight, c.observables, true),
                _ => (
                    via,
                    boundary[i].observables ^ boundary[j].observables,
                    false,
                ),
            }
        };

        // Solve the matching over the candidate structure.
        let mate: Vec<Option<usize>> = if m <= subset_dp::MAX_DP_NODES.min(16) {
            let (mate, _) = subset_dp::solve(m, |i, j| eff(i, j).0, |i| boundary[i].weight);
            mate
        } else {
            let n = m + m % 2;
            let (mate, _) = dense_blossom::min_weight_perfect_matching(n, |i, j| {
                let w = if i >= m || j >= m {
                    boundary[i.min(j)].weight
                } else {
                    eff(i, j).0
                };
                (w.min(1e4) * 65_536.0).round() as i64 + 1
            });
            mate.into_iter()
                .take(m)
                .map(|v| (v < m).then_some(v))
                .collect()
        };

        let mut solution = MatchingSolution::default();
        for (i, assignment) in mate.iter().enumerate() {
            match assignment {
                None => {
                    solution.to_boundary.push(detectors[i]);
                    solution.observables ^= boundary[i].observables;
                    solution.weight += boundary[i].weight;
                }
                Some(j) if *j > i => {
                    let (w, obs, direct) = eff(i, *j);
                    solution.weight += w;
                    solution.observables ^= obs;
                    if direct {
                        solution.pairs.push((detectors[i], detectors[*j]));
                    } else {
                        solution.to_boundary.push(detectors[i]);
                        solution.to_boundary.push(detectors[*j]);
                    }
                }
                Some(_) => {}
            }
        }
        solution
    }

    /// Truncated Dijkstra from one fired detector: collects the cheapest
    /// route to up to `target` other fired detectors.
    fn search_from(
        &mut self,
        src: u32,
        src_slot: usize,
        target: usize,
        radius: f64,
        pairs: &mut HashMap<(u32, u32), Candidate>,
    ) {
        if target == 0 {
            return; // Lone detector: boundary matching only.
        }
        self.current = self.current.wrapping_add(1);
        let stamp = self.current;
        let mut found = 0usize;

        self.dist[src as usize] = 0.0;
        self.parity[src as usize] = 0;
        self.stamp[src as usize] = stamp;
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((OrdF64(0.0), src)));

        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if found >= target || d > radius {
                break;
            }
            if self.stamp[u as usize] != stamp || d > self.dist[u as usize] {
                continue;
            }
            if u != src && self.active_slot[u as usize] != u32::MAX {
                // Reached another fired detector: record the candidate.
                let j = self.active_slot[u as usize] as usize;
                let key = ((src_slot.min(j)) as u32, (src_slot.max(j)) as u32);
                let cand = Candidate {
                    weight: d,
                    observables: self.parity[u as usize],
                };
                pairs
                    .entry(key)
                    .and_modify(|c| {
                        if cand.weight < c.weight {
                            *c = cand;
                        }
                    })
                    .or_insert(cand);
                found += 1;
                if found >= target {
                    break;
                }
            }
            for &ei in self.graph.incident_edges(u) {
                let e = &self.graph.edges()[ei as usize];
                let Some(v) = e.v else { continue };
                let w = if e.u == u { v } else { e.u };
                let nd = d + e.weight;
                if self.stamp[w as usize] != stamp || nd < self.dist[w as usize] {
                    self.stamp[w as usize] = stamp;
                    self.dist[w as usize] = nd;
                    self.parity[w as usize] = self.parity[u as usize] ^ e.observables;
                    heap.push(Reverse((OrdF64(nd), w)));
                }
            }
        }
    }
}

impl Decoder for LocalMwpmDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        let solution = self.decode_full(detectors);
        Prediction {
            observables: solution.observables,
            cycles: 0,
            deferred: false,
        }
    }

    fn name(&self) -> &'static str {
        "Local-MWPM"
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MwpmDecoder;
    use decoding_graph::DecodingContext;
    use qec_circuit::{DemSampler, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn empty_syndrome_is_identity() {
        let ctx = ctx(3, 1e-3);
        let mut dec = LocalMwpmDecoder::new(ctx.graph());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn solutions_are_valid_matchings() {
        let ctx = ctx(5, 8e-3);
        let mut dec = LocalMwpmDecoder::new(ctx.graph());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let shot = sampler.sample(&mut rng);
            let sol = dec.decode_full(&shot.detectors);
            assert!(sol.is_perfect_over(&shot.detectors));
        }
    }

    #[test]
    fn agrees_with_full_mwpm_on_sampled_syndromes() {
        let ctx = ctx(5, 5e-3);
        let mut local = LocalMwpmDecoder::new(ctx.graph());
        let full = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(8);
        let (mut n, mut same, mut weight_optimal) = (0u32, 0u32, 0u32);
        for _ in 0..1500 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.is_empty() {
                continue;
            }
            let a = local.decode_full(&shot.detectors);
            let b = full.decode_full(&shot.detectors);
            n += 1;
            same += (a.observables == b.observables) as u32;
            weight_optimal += (a.weight <= b.weight + 1e-6) as u32;
        }
        assert!(n > 300);
        assert!(
            same as f64 / n as f64 > 0.99,
            "local/full prediction agreement {same}/{n}"
        );
        // The local decoder can never beat exact MWPM, and with k = 4 it
        // should find the optimum nearly always.
        assert!(
            weight_optimal as f64 / n as f64 > 0.98,
            "local matched exact weight on only {weight_optimal}/{n}"
        );
    }

    #[test]
    fn local_weight_never_beats_exact() {
        let ctx = ctx(5, 8e-3);
        let mut local = LocalMwpmDecoder::new(ctx.graph());
        let full = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..400 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.is_empty() {
                continue;
            }
            let a = local.decode_full(&shot.detectors);
            let b = full.decode_full(&shot.detectors);
            assert!(
                a.weight >= b.weight - 1e-6,
                "local ({}) beat exact ({}) on {:?}",
                a.weight,
                b.weight,
                shot.detectors
            );
        }
    }

    #[test]
    fn tiny_neighbor_budget_still_yields_valid_matchings() {
        let ctx = ctx(5, 1e-2);
        let mut dec = LocalMwpmDecoder::with_neighbors(ctx.graph(), 1);
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let shot = sampler.sample(&mut rng);
            let sol = dec.decode_full(&shot.detectors);
            assert!(sol.is_perfect_over(&shot.detectors));
        }
    }

    #[test]
    fn scratch_state_is_reusable() {
        let ctx = ctx(3, 5e-3);
        let mut dec = LocalMwpmDecoder::new(ctx.graph());
        let dets = vec![0u32, 5, 9];
        let a = dec.decode_full(&dets);
        for _ in 0..50 {
            assert_eq!(dec.decode_full(&dets), a);
        }
    }

    #[test]
    #[should_panic(expected = "at least one neighbor")]
    fn rejects_zero_neighbors() {
        let ctx = ctx(3, 1e-3);
        LocalMwpmDecoder::with_neighbors(ctx.graph(), 0);
    }

    #[test]
    fn truncated_budgets_survive_dense_syndromes() {
        // k_neighbors ∈ {1, 2} with every detector fired: the candidate
        // map is maximally truncated (each search records at most k of
        // the m − 1 possible partners), so most pairings fall back to
        // boundary + boundary. That must degrade gracefully — a valid
        // perfect matching, never a panic — through both the DP band and
        // the dense-blossom band.
        for d in [3usize, 5] {
            let ctx = ctx(d, 1e-3);
            let all: Vec<u32> = (0..ctx.graph().num_detectors() as u32).collect();
            for k in [1usize, 2] {
                let mut dec = LocalMwpmDecoder::with_neighbors(ctx.graph(), k);
                let sol = dec.decode_full(&all);
                assert!(
                    sol.is_perfect_over(&all),
                    "d = {d}, k = {k}: matching not perfect"
                );
                assert!(sol.weight.is_finite());
            }
        }
    }

    #[test]
    fn isolated_clusters_do_not_cross_pair() {
        // Two fired pairs at opposite corners of the d = 5 lattice: each
        // cluster's partner is its own neighbor; the truncated search
        // must never panic, and the far-apart clusters must resolve
        // independently (pairing across them costs more than both
        // boundary routes).
        let ctx = ctx(5, 1e-3);
        let gwt = ctx.gwt();
        let n = gwt.len() as u32;
        // Find the two cheapest linked pairs whose members are mutually
        // distant (pair weight across clusters worse than via boundary).
        let mut best: Vec<(u32, u32, f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let w = gwt.pair_weight(i, j);
                if w < gwt.boundary_weight(i) + gwt.boundary_weight(j) {
                    best.push((i, j, w));
                }
            }
        }
        best.sort_by(|a, b| a.2.total_cmp(&b.2));
        let (a0, a1, _) = best[0];
        let far = best.iter().find(|&&(b0, b1, _)| {
            [b0, b1].iter().all(|&b| {
                [a0, a1].iter().all(|&a| {
                    gwt.pair_weight(a, b) > gwt.boundary_weight(a) + gwt.boundary_weight(b)
                })
            })
        });
        let Some(&(b0, b1, _)) = far else {
            panic!("no isolated second cluster at d = 5");
        };
        for k in [1usize, 2, 4] {
            let mut dec = LocalMwpmDecoder::with_neighbors(ctx.graph(), k);
            let sol = dec.decode_full(&[a0, a1, b0, b1]);
            assert!(sol.is_perfect_over(&[a0, a1, b0, b1]));
            // No pair may span the two clusters.
            for &(x, y) in &sol.pairs {
                let in_a = [a0, a1].contains(&x);
                let in_a_y = [a0, a1].contains(&y);
                assert_eq!(in_a, in_a_y, "k = {k}: cross-cluster pair ({x}, {y})");
            }
        }
    }

    #[test]
    fn all_boundary_syndromes_match_everything_to_boundary() {
        // Fired detectors whose cheapest resolution is all-boundary: any
        // pairwise match must lose to the two boundary chains. The local
        // decoder (even at k = 1, where the candidate map may hold
        // none of the pairs) must produce the all-boundary matching.
        let ctx = ctx(5, 1e-3);
        let gwt = ctx.gwt();
        let n = gwt.len() as u32;
        let mut picked: Vec<u32> = Vec::new();
        for cand in 0..n {
            if picked.iter().all(|&p| {
                gwt.pair_weight(p, cand) > gwt.boundary_weight(p) + gwt.boundary_weight(cand)
            }) {
                picked.push(cand);
                if picked.len() == 4 {
                    break;
                }
            }
        }
        assert!(picked.len() >= 2, "no mutually-boundary-dominated set");
        for k in [1usize, 2] {
            let mut dec = LocalMwpmDecoder::with_neighbors(ctx.graph(), k);
            let sol = dec.decode_full(&picked);
            assert!(
                sol.pairs.is_empty(),
                "k = {k}: unexpected pairs {:?}",
                sol.pairs
            );
            let mut tb = sol.to_boundary.clone();
            tb.sort_unstable();
            assert_eq!(tb, picked, "k = {k}");
        }
    }

    #[test]
    fn lone_detector_with_tiny_budget_goes_to_boundary() {
        // A single fired detector makes `target` 0 — the search exits
        // before exploring. The only legal matching is the boundary one.
        let ctx = ctx(3, 1e-3);
        let mut dec = LocalMwpmDecoder::with_neighbors(ctx.graph(), 1);
        for det in 0..ctx.graph().num_detectors() as u32 {
            let sol = dec.decode_full(&[det]);
            assert_eq!(sol.to_boundary, vec![det]);
            assert!(sol.pairs.is_empty());
            assert_eq!(sol.observables, ctx.boundary().obs(det));
        }
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = LocalMwpmDecoder::new(ctx.graph());
        assert_eq!(dec.name(), "Local-MWPM");
    }
}
