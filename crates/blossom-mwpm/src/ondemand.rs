//! Deep-tail backend selection: on-demand sparse staging vs. the full
//! staged sweep.
//!
//! On the GWT-free backend every deep shot (`k > DP_NODE_LIMIT`) must
//! produce its pair-weight block before any matching runs. PR 8's staged
//! path ([`LocalWeightProvider::stage`](decoding_graph::LocalWeightProvider::stage))
//! runs one truncated Dijkstra per fired detector out to the *maximum*
//! settle bound over all of its targets — at large distances that floods
//! most of the lattice per source and is ~99 % of deep decode time
//! (367 ms of a 370 ms d = 31 shot).
//!
//! The on-demand engine
//! ([`LocalWeightProvider::stage_ondemand`](decoding_graph::LocalWeightProvider::stage_ondemand))
//! is the Sparse Blossom move (Higgott & Gidney, arXiv:2303.15933)
//! applied to this staging architecture: grow each source region only as
//! far as a *per-pair* deadline certificate requires, discover pair
//! edges lazily when a region reaches a target, and certify every other
//! pair dominated the moment the nondecreasing settle frontier passes
//! its bound. Values come from the identical relaxation loop, so the
//! block the matching tiers consume is bit-compatible with the staged
//! one: settled entries bit-equal, and the extra `INFINITY` entries all
//! provably behind boundary matching in both weight domains (see the
//! [`decoding_graph::ondemand`] module docs for the full argument).
//!
//! [`DeepBackend`] selects between the engines. [`DeepBackend::Ondemand`]
//! is the default wherever a local provider is active;
//! [`DeepBackend::Staged`] keeps PR 8's full sweep available as the
//! differential oracle (the `ondemand_vs_staged` CI suite proves the two
//! produce bit-identical predictions, matchings, and LER results) and as
//! a fallback. [`DeepBackend::GraphPd`] goes one step further down the
//! Sparse Blossom road — all regions grow simultaneously and pairs
//! resolve by meet-in-the-middle
//! ([`LocalWeightProvider::stage_graph_pd`](decoding_graph::LocalWeightProvider::stage_graph_pd)),
//! halving every collision radius — at the price of the bit-identity
//! contract: it is explicitly opt-in and validated by per-shot weight
//! certificates plus a statistical LER gate instead
//! (`tests/graphpd_vs_ondemand.rs`).

/// Which staging engine the deep tail (`k > DP_NODE_LIMIT`) uses on the
/// GWT-free backend. Irrelevant (unread) when the decoder is backed by
/// the Global Weight Table, which holds every pair already.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeepBackend {
    /// On-demand sparse staging: upper-triangle targets, per-pair
    /// deadline certificates, dynamic shrinking search radius. The
    /// default — this is what makes d ≥ 21 fast, not just feasible.
    #[default]
    Ondemand,
    /// The full per-row staged sweep (PR 8). Retained as the
    /// differential oracle and fallback.
    Staged,
    /// Graph-native primal-dual discovery: every fired detector grows a
    /// region through one synchronized heap and pair weights come from
    /// meet-in-the-middle, so a collision at distance D costs two
    /// radius-D/2 balls instead of one radius-D ball. **Opt-in and not
    /// bit-identical** to the other backends — meet weights associate
    /// the f64 sum differently and equal-weight chains may tie-break to
    /// a different matching — but per-shot total matching weight equals
    /// the staged-oracle optimum in both weight domains (enforced by the
    /// `graphpd_vs_ondemand` certificate suite) and LER is statistically
    /// indistinguishable. Wins where the deep tail dominates: d ≥ 21 at
    /// circuit-level p ≈ 10⁻³.
    GraphPd,
}
