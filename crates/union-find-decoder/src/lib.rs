//! A weighted Union-Find surface-code decoder — the algorithmic core of the
//! AFS decoder the Astrea paper compares against (§2.3.3).
//!
//! The Union-Find decoder (Delfosse & Nickerson, with the weighted-growth
//! refinement of Huang, Newman & Brown) decodes in near-linear time by
//! growing clusters around the fired detectors until every cluster has even
//! parity or touches the lattice boundary, then *peeling* a spanning forest
//! of each cluster to extract a correction. It is far faster than MWPM but
//! less accurate — the paper reports 100×–1000× worse logical error rates,
//! which the experiments in this workspace reproduce in shape.
//!
//! ```
//! use union_find_decoder::UnionFindDecoder;
//! use decoding_graph::{Decoder, DecodingContext};
//! use qec_circuit::NoiseModel;
//! use surface_code::SurfaceCode;
//!
//! let code = SurfaceCode::new(3)?;
//! let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
//! let mut decoder = UnionFindDecoder::new(ctx.graph());
//! let prediction = decoder.decode(&[0, 1]);
//! assert!(!prediction.deferred);
//! # Ok::<(), surface_code::InvalidDistance>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use decoding_graph::{Decoder, MatchingGraph, Prediction};

/// Growth sub-units per unit of `−log₁₀ P` edge weight (weighted policy).
const GROWTH_SCALE: f64 = 4.0;

/// Maximum capacity units per edge (clamps pathological weights).
const MAX_CAPACITY: u32 = 255;

/// How cluster growth treats edge weights.
///
/// ```
/// use union_find_decoder::{GrowthPolicy, UnionFindDecoder};
/// use decoding_graph::DecodingContext;
/// use qec_circuit::NoiseModel;
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
/// let weighted = UnionFindDecoder::with_policy(ctx.graph(), GrowthPolicy::Weighted);
/// # let _ = weighted;
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrowthPolicy {
    /// Every edge takes two growth units regardless of weight — the
    /// original Delfosse–Nickerson decoder and what the AFS hardware
    /// implements. Less accurate: the decoder is blind to how unlikely an
    /// edge is, which is the main source of its accuracy gap vs MWPM.
    #[default]
    Unweighted,
    /// Edge capacity proportional to `−log₁₀ P` (Huang–Newman–Brown
    /// weighted growth). Substantially closer to MWPM accuracy.
    Weighted,
}

#[derive(Debug, Clone, Copy)]
struct UfEdge {
    u: u32,
    /// Second endpoint; `boundary_node` for boundary edges.
    v: u32,
    capacity: u32,
    observables: u32,
}

/// The weighted Union-Find decoder.
///
/// One instance holds the preprocessed graph plus reusable scratch buffers;
/// create one per worker thread.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    edges: Vec<UfEdge>,
    /// For each node (including the boundary node), incident edge ids.
    incident: Vec<Vec<u32>>,
    num_nodes: usize,
    boundary_node: u32,

    // Scratch (reset per decode):
    growth: Vec<u32>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    odd: Vec<bool>,
    has_boundary: Vec<bool>,
    frontier: Vec<Vec<u32>>,
    defect: Vec<bool>,
    touched: Vec<u32>,
}

impl UnionFindDecoder {
    /// Builds a decoder over a matching graph with the default
    /// (AFS-faithful, unweighted-growth) policy.
    pub fn new(graph: &MatchingGraph) -> UnionFindDecoder {
        UnionFindDecoder::with_policy(graph, GrowthPolicy::default())
    }

    /// Builds a decoder with an explicit growth policy.
    pub fn with_policy(graph: &MatchingGraph, policy: GrowthPolicy) -> UnionFindDecoder {
        let n = graph.num_detectors();
        let boundary_node = n as u32;
        let mut edges = Vec::with_capacity(graph.edges().len());
        let mut incident = vec![Vec::new(); n + 1];
        for e in graph.edges() {
            let capacity = match policy {
                GrowthPolicy::Unweighted => 2,
                GrowthPolicy::Weighted => {
                    ((e.weight * GROWTH_SCALE).round() as u32).clamp(1, MAX_CAPACITY)
                }
            };
            let v = e.v.unwrap_or(boundary_node);
            let id = edges.len() as u32;
            edges.push(UfEdge {
                u: e.u,
                v,
                capacity,
                observables: e.observables,
            });
            incident[e.u as usize].push(id);
            incident[v as usize].push(id);
        }
        UnionFindDecoder {
            growth: vec![0; edges.len()],
            parent: (0..=n as u32).collect(),
            rank: vec![0; n + 1],
            odd: vec![false; n + 1],
            has_boundary: vec![false; n + 1],
            frontier: vec![Vec::new(); n + 1],
            defect: vec![false; n + 1],
            touched: Vec::new(),
            edges,
            incident,
            num_nodes: n + 1,
            boundary_node,
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions two cluster roots; returns the surviving root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (mut a, mut b) = (a, b);
        if self.rank[a as usize] < self.rank[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        self.parent[b as usize] = a;
        if self.rank[a as usize] == self.rank[b as usize] {
            self.rank[a as usize] += 1;
        }
        self.odd[a as usize] ^= self.odd[b as usize];
        self.has_boundary[a as usize] |= self.has_boundary[b as usize];
        // Small-to-large frontier merge.
        let moved = std::mem::take(&mut self.frontier[b as usize]);
        self.frontier[a as usize].extend(moved);
        a
    }

    fn reset(&mut self, detectors: &[u32]) {
        for &t in &self.touched {
            let t = t as usize;
            self.parent[t] = t as u32;
            self.rank[t] = 0;
            self.odd[t] = false;
            self.has_boundary[t] = false;
            self.frontier[t].clear();
            self.defect[t] = false;
            for &e in &self.incident[t] {
                self.growth[e as usize] = 0;
            }
        }
        self.touched.clear();
        self.touched.extend_from_slice(detectors);
        self.touched.push(self.boundary_node);
    }

    /// Grows odd clusters until none remain, merging clusters along fully
    /// grown edges. Returns the edges that ended fully grown.
    fn grow(&mut self, detectors: &[u32]) {
        for &d in detectors {
            self.odd[d as usize] = true;
            self.defect[d as usize] = true;
            let edges: Vec<u32> = self.incident[d as usize].to_vec();
            self.frontier[d as usize] = edges;
        }
        self.has_boundary[self.boundary_node as usize] = true;

        loop {
            // Collect roots of odd, non-boundary clusters.
            let mut active_roots: Vec<u32> = Vec::new();
            for &d in detectors {
                let r = self.find(d);
                if self.odd[r as usize] && !self.has_boundary[r as usize] {
                    active_roots.push(r);
                }
            }
            active_roots.sort_unstable();
            active_roots.dedup();
            if active_roots.is_empty() {
                return;
            }

            // Event-driven growth with per-edge rates: an edge bordered by
            // two growing clusters fills twice as fast (half-edge growth
            // from both sides). Advance time to the earliest edge-completion
            // event, grow every frontier edge accordingly, then merge the
            // edges that reached capacity.
            let mut rate: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
            for &r in &active_roots {
                // Lazily drop internal edges from the frontier, dedup.
                let fr = std::mem::take(&mut self.frontier[r as usize]);
                let mut kept = Vec::with_capacity(fr.len());
                for e in fr {
                    let edge = self.edges[e as usize];
                    let (ru, rv) = (self.find(edge.u), self.find(edge.v));
                    if ru == rv {
                        continue; // internal edge
                    }
                    if !kept.contains(&e) {
                        kept.push(e);
                        *rate.entry(e).or_insert(0) += 1;
                    }
                }
                let rr = self.find(r);
                self.frontier[rr as usize] = kept;
            }
            // Earliest completion time: ceil(remaining / rate).
            let mut min_t = u32::MAX;
            for (&e, &k) in &rate {
                let remaining = self.edges[e as usize].capacity - self.growth[e as usize];
                min_t = min_t.min(remaining.div_ceil(k));
            }
            if min_t == u32::MAX {
                // No growable edges left (disconnected remainder) — cannot
                // happen on boundary-connected graphs, but bail safely.
                return;
            }

            let mut to_merge: Vec<u32> = Vec::new();
            for (&e, &k) in &rate {
                let g = &mut self.growth[e as usize];
                let cap = self.edges[e as usize].capacity;
                *g = (*g + k * min_t).min(cap);
                if *g >= cap {
                    to_merge.push(e);
                }
            }
            to_merge.sort_unstable();

            for e in to_merge {
                let edge = self.edges[e as usize];
                let (ru, rv) = (self.find(edge.u), self.find(edge.v));
                if ru != rv {
                    // Newly reached vertices contribute their incident edges
                    // to the merged frontier.
                    let surv = self.union(ru, rv);
                    for node in [edge.u, edge.v] {
                        if !self.touched.contains(&node) {
                            self.touched.push(node);
                            let inc = self.incident[node as usize].clone();
                            self.frontier[surv as usize].extend(inc);
                        }
                    }
                }
            }
        }
    }

    /// Decodes and additionally returns the correction as a list of
    /// matching-graph edge indices (the peeled spanning-forest edges whose
    /// corrections are applied). The XOR of the endpoints of these edges
    /// reproduces the input defects — the syndrome-annihilation invariant
    /// checked by this crate's property tests.
    pub fn decode_with_correction(&mut self, detectors: &[u32]) -> (Prediction, Vec<u32>) {
        if detectors.is_empty() {
            return (Prediction::identity(), Vec::new());
        }
        self.reset(detectors);
        self.grow(detectors);
        let mut correction = Vec::new();
        let observables = self.peel(detectors, &mut correction);
        for &t in &self.touched.clone() {
            self.defect[t as usize] = false;
        }
        (
            Prediction {
                observables,
                cycles: 0,
                deferred: false,
            },
            correction,
        )
    }

    /// The matching-graph endpoints of an edge id returned by
    /// [`UnionFindDecoder::decode_with_correction`]; `None` is the
    /// boundary.
    pub fn edge_endpoints(&self, edge: u32) -> (u32, Option<u32>) {
        let e = self.edges[edge as usize];
        (e.u, (e.v != self.boundary_node).then_some(e.v))
    }

    /// Peels the grown clusters and returns the predicted observable mask.
    fn peel(&mut self, detectors: &[u32], correction: &mut Vec<u32>) -> u32 {
        // Adjacency over fully grown edges, restricted to touched nodes.
        let mut roots: Vec<u32> = detectors.iter().map(|&d| self.find(d)).collect();
        roots.sort_unstable();
        roots.dedup();

        let mut obs = 0u32;
        let mut visited = vec![false; self.num_nodes];
        for &root in &roots {
            // BFS the cluster over grown edges, preferring the boundary node
            // as tree root so it absorbs leftover defects.
            let mut members: Vec<u32> = Vec::new();
            let touched = self.touched.clone();
            for t in touched {
                if !visited[t as usize] && self.find(t) == root {
                    members.push(t);
                }
            }
            if members.is_empty() {
                continue;
            }
            let start = if self.has_boundary[root as usize] {
                self.boundary_node
            } else {
                members[0]
            };
            // BFS tree.
            let mut order: Vec<u32> = Vec::new();
            let mut tree_edge: Vec<(u32, u32)> = Vec::new(); // (node, edge id)
            visited[start as usize] = true;
            order.push(start);
            tree_edge.push((start, u32::MAX));
            let mut head = 0;
            while head < order.len() {
                let u = order[head];
                head += 1;
                let inc = self.incident[u as usize].clone();
                for e in inc {
                    let edge = self.edges[e as usize];
                    if self.growth[e as usize] < edge.capacity {
                        continue;
                    }
                    let w = if edge.u == u { edge.v } else { edge.u };
                    if !visited[w as usize] && self.find(w) == root {
                        visited[w as usize] = true;
                        order.push(w);
                        tree_edge.push((w, e));
                    }
                }
            }
            // Peel leaves in reverse BFS order: a defect leaf flips its tree
            // edge into the correction and hands its defect to the parent.
            let parent_of: std::collections::HashMap<u32, u32> = order
                .iter()
                .zip(&tree_edge)
                .filter(|(_, (_, e))| *e != u32::MAX)
                .map(|(&node, &(_, e))| (node, e))
                .collect();
            for &node in order.iter().rev() {
                if node == start {
                    continue;
                }
                if self.defect[node as usize] {
                    let e = parent_of[&node];
                    let edge = self.edges[e as usize];
                    obs ^= edge.observables;
                    correction.push(e);
                    let parent = if edge.u == node { edge.v } else { edge.u };
                    self.defect[node as usize] = false;
                    self.defect[parent as usize] = !self.defect[parent as usize];
                }
            }
            // The boundary absorbs any defect; a non-boundary root must be
            // clean because its cluster had even parity.
            self.defect[start as usize] = false;
        }
        obs
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        self.decode_with_correction(detectors).0
    }

    fn name(&self) -> &'static str {
        "UF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::{DemSampler, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn empty_syndrome_is_identity() {
        let ctx = ctx(3, 1e-3);
        let mut dec = UnionFindDecoder::new(ctx.graph());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn decodes_every_sampled_syndrome_without_panicking() {
        let ctx = ctx(5, 5e-3);
        let mut dec = UnionFindDecoder::new(ctx.graph());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let shot = sampler.sample(&mut rng);
            let _ = dec.decode(&shot.detectors);
        }
    }

    #[test]
    fn single_error_pair_is_corrected_like_mwpm() {
        // For weight-2 syndromes from a single error, UF and MWPM must give
        // the same (correct) answer.
        use blossom_mwpm::MwpmDecoder;
        let ctx = ctx(3, 1e-3);
        let mut uf = UnionFindDecoder::new(ctx.graph());
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        for e in ctx.graph().edges() {
            let dets: Vec<u32> = match e.v {
                Some(v) => vec![e.u.min(v), e.u.max(v)],
                None => vec![e.u],
            };
            let a = uf.decode(&dets);
            let b = mwpm.decode(&dets);
            assert_eq!(
                a.observables, b.observables,
                "UF disagrees with MWPM on single-mechanism syndrome {dets:?}"
            );
        }
    }

    #[test]
    fn scratch_state_resets_between_decodes() {
        // Decoding the same syndrome twice must give the same answer.
        let ctx = ctx(5, 5e-3);
        let mut dec = UnionFindDecoder::new(ctx.graph());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let shot = sampler.sample(&mut rng);
            let a = dec.decode(&shot.detectors);
            let b = dec.decode(&shot.detectors);
            assert_eq!(a, b, "non-deterministic on {:?}", shot.detectors);
        }
    }

    #[test]
    fn uf_is_less_accurate_than_mwpm_but_not_catastrophic() {
        // Shape check on a small code at high p: UF's failure count is at
        // least MWPM's, and within a small multiple.
        use blossom_mwpm::MwpmDecoder;
        let ctx = ctx(3, 8e-3);
        let mut uf = UnionFindDecoder::new(ctx.graph());
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(42);
        let (mut uf_fail, mut mwpm_fail) = (0u32, 0u32);
        for _ in 0..20_000 {
            let shot = sampler.sample(&mut rng);
            uf_fail += (uf.decode(&shot.detectors).observables != shot.observables) as u32;
            mwpm_fail += (mwpm.decode(&shot.detectors).observables != shot.observables) as u32;
        }
        assert!(mwpm_fail > 0, "test needs some failures to compare");
        assert!(
            uf_fail >= mwpm_fail,
            "UF ({uf_fail}) should not beat MWPM ({mwpm_fail})"
        );
        assert!(
            uf_fail < mwpm_fail * 20,
            "UF ({uf_fail}) implausibly bad vs MWPM ({mwpm_fail})"
        );
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = UnionFindDecoder::new(ctx.graph());
        assert_eq!(dec.name(), "UF");
    }
}
