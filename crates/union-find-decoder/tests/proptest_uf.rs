//! Property tests for the Union-Find decoder: for *any* syndrome — not
//! just ones the noise model produces — the returned correction must
//! annihilate the defects, and the predicted observable must equal the
//! XOR of the correction edges' observable masks.

use decoding_graph::DecodingContext;
use proptest::prelude::*;
use qec_circuit::NoiseModel;
use std::sync::OnceLock;
use surface_code::SurfaceCode;
use union_find_decoder::{GrowthPolicy, UnionFindDecoder};

fn ctx() -> &'static DecodingContext {
    static CTX: OnceLock<DecodingContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let code = SurfaceCode::new(5).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3))
    })
}

fn subset(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..72, 0..=max_len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn correction_annihilates_every_syndrome(dets in subset(24)) {
        for policy in [GrowthPolicy::Unweighted, GrowthPolicy::Weighted] {
            let mut uf = UnionFindDecoder::with_policy(ctx().graph(), policy);
            let (prediction, correction) = uf.decode_with_correction(&dets);

            // XOR the endpoints of every correction edge; boundary absorbs.
            let mut parity = vec![false; ctx().graph().num_detectors()];
            let mut obs = 0u32;
            for &e in &correction {
                let (u, v) = uf.edge_endpoints(e);
                parity[u as usize] = !parity[u as usize];
                if let Some(v) = v {
                    parity[v as usize] = !parity[v as usize];
                }
            }
            for &ei in &correction {
                // Edge observables are part of the decoder's contract.
                let edge = &ctx().graph().edges()[ei as usize];
                obs ^= edge.observables;
            }

            let mut expected = vec![false; ctx().graph().num_detectors()];
            for &d in &dets {
                expected[d as usize] = true;
            }
            prop_assert_eq!(
                &parity, &expected,
                "{:?} correction does not annihilate syndrome {:?}",
                policy, dets
            );
            prop_assert_eq!(
                prediction.observables, obs,
                "{:?} prediction disagrees with its own correction on {:?}",
                policy, dets
            );
        }
    }

    #[test]
    fn policies_agree_on_single_edges(edge_idx in 0usize..100) {
        let edges = ctx().graph().edges();
        let e = &edges[edge_idx % edges.len()];
        let dets: Vec<u32> = match e.v {
            Some(v) => vec![e.u.min(v), e.u.max(v)],
            None => vec![e.u],
        };
        let mut a = UnionFindDecoder::with_policy(ctx().graph(), GrowthPolicy::Unweighted);
        let mut b = UnionFindDecoder::with_policy(ctx().graph(), GrowthPolicy::Weighted);
        let (pa, _) = a.decode_with_correction(&dets);
        let (pb, _) = b.decode_with_correction(&dets);
        prop_assert_eq!(pa.observables, pb.observables);
        prop_assert_eq!(pa.observables, e.observables);
    }
}
