//! Word-parallel pre-decode screening over packed syndrome tiles.
//!
//! At realistic error rates almost every shot is easy: the syndrome is
//! all-zero (trivial), or it has Hamming weight 1–2 and is decided by a
//! single matching-graph edge. The barrier decode path still pays a
//! per-shot sparse-list materialization and a full decoder call for each
//! of them. This module screens shots *while they are still bit-packed*:
//!
//! * [`TileScreen`] runs a bit-sliced ripple adder over the detector
//!   rows of a [`BitTable`] tile, classifying all 64 shots of a word into
//!   Hamming-weight buckets {0, 1, 2, ≥3} with two bitwise ops per
//!   detector row per word — no per-shot work at all;
//! * trivial shots are *counted* (popcount) and their failures read off a
//!   word-parallel observable OR, never materialized;
//! * [`ScreenCache`] memoizes the wrapped decoder's [`Prediction`] for
//!   HW-1 and HW-2 syndromes, so easy nontrivial shots are decided by a
//!   table lookup that replays exactly what the decoder would have
//!   produced — predictions, modeled cycles, and deferral flags included.
//!
//! Because the cache replays the real decoder (it fills lazily by calling
//! it once per distinct syndrome), a screened run is bit-identical to the
//! unscreened one. This relies on decoders being deterministic pure
//! functions of the fired-detector list, which the [`Decoder`] contract's
//! batch-invariance already demands.

use std::collections::HashMap;

use decoding_graph::{DecodeScratch, Decoder, Prediction};
use qec_circuit::BitTable;

/// Bit-sliced Hamming-weight classification of one packed tile: for each
/// 64-shot word, the lanes whose syndrome weight is 0, 1, 2, or ≥ 3.
///
/// The buffers are reusable scratch; [`TileScreen::compute`] resizes them
/// to the tile at hand.
#[derive(Debug, Default)]
pub struct TileScreen {
    /// Bit 0 of the per-lane weight counter.
    ones: Vec<u64>,
    /// Bit 1 of the per-lane weight counter.
    twos: Vec<u64>,
    /// Sticky overflow: lanes that reached weight ≥ 4.
    fours: Vec<u64>,
}

impl TileScreen {
    /// A screen with empty buffers (sized on first
    /// [`TileScreen::compute`]).
    pub fn new() -> TileScreen {
        TileScreen::default()
    }

    /// Classifies every shot of `detectors` by Hamming weight.
    ///
    /// One row-major sweep; per word and detector row this costs a
    /// handful of bitwise ops (a 2-bit ripple add with sticky overflow),
    /// so 64 shots are bucketed for less than the cost of materializing
    /// one sparse detector list.
    pub fn compute(&mut self, detectors: &BitTable) {
        let words = detectors.num_words();
        self.ones.clear();
        self.ones.resize(words, 0);
        self.twos.clear();
        self.twos.resize(words, 0);
        self.fours.clear();
        self.fours.resize(words, 0);
        for d in 0..detectors.num_bits() {
            let row = detectors.row(d);
            for (w, &bits) in row.iter().enumerate() {
                // 2-bit bit-sliced add of `bits` into (ones, twos) with
                // sticky overflow into `fours`.
                let carry1 = self.ones[w] & bits;
                self.ones[w] ^= bits;
                let carry2 = self.twos[w] & carry1;
                self.twos[w] ^= carry1;
                self.fours[w] |= carry2;
            }
        }
    }

    /// Number of words classified by the last `compute`.
    pub fn num_words(&self) -> usize {
        self.ones.len()
    }

    /// Lanes of word `w` with Hamming weight 0 (trivial shots).
    #[inline]
    pub fn hw0(&self, w: usize) -> u64 {
        !(self.ones[w] | self.twos[w] | self.fours[w])
    }

    /// Lanes of word `w` with Hamming weight exactly 1.
    #[inline]
    pub fn hw1(&self, w: usize) -> u64 {
        self.ones[w] & !self.twos[w] & !self.fours[w]
    }

    /// Lanes of word `w` with Hamming weight exactly 2.
    #[inline]
    pub fn hw2(&self, w: usize) -> u64 {
        self.twos[w] & !self.ones[w] & !self.fours[w]
    }

    /// Lanes of word `w` with Hamming weight ≥ 3 — the genuinely hard
    /// shots that get sparse detector lists and a real decoder call.
    #[inline]
    pub fn hard(&self, w: usize) -> u64 {
        self.fours[w] | (self.ones[w] & self.twos[w])
    }

    /// Lanes of word `w` with any fired detector (weight ≥ 1).
    #[inline]
    pub fn nonzero(&self, w: usize) -> u64 {
        self.ones[w] | self.twos[w] | self.fours[w]
    }
}

/// A lazy memo of the wrapped decoder's [`Prediction`]s for Hamming
/// weight 1 and 2 syndromes.
///
/// On first sight of a syndrome the real decoder is called once (through
/// the normal scratch-arena path) and the result cached; afterwards the
/// shot costs a vector index (HW 1) or one hash lookup (HW 2). Replayed
/// predictions are the decoder's own, so screening never changes any
/// result — see the [module docs](self) for the determinism requirement.
///
/// Keep one cache per worker thread, next to its decoder instance; a
/// cache outlives batches and keeps paying off across calls.
#[derive(Debug, Default)]
pub struct ScreenCache {
    hw1: Vec<Option<Prediction>>,
    hw2: HashMap<u64, Prediction>,
}

impl ScreenCache {
    /// An empty cache for syndromes over `num_detectors` detectors.
    pub fn new(num_detectors: usize) -> ScreenCache {
        ScreenCache {
            hw1: vec![None; num_detectors],
            hw2: HashMap::new(),
        }
    }

    /// Number of detectors the cache is sized for.
    pub fn num_detectors(&self) -> usize {
        self.hw1.len()
    }

    /// The decoder's prediction for the weight-1 syndrome `{d}`.
    #[inline]
    pub fn single(
        &mut self,
        d: u32,
        decoder: &mut dyn Decoder,
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        let slot = &mut self.hw1[d as usize];
        match slot {
            Some(p) => *p,
            None => {
                let p = decoder.decode_with_scratch(&[d], scratch);
                *slot = Some(p);
                p
            }
        }
    }

    /// The decoder's prediction for the weight-2 syndrome `{a, b}`
    /// (`a < b`, as extracted in ascending detector order).
    #[inline]
    pub fn pair(
        &mut self,
        a: u32,
        b: u32,
        decoder: &mut dyn Decoder,
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        debug_assert!(a < b);
        let key = (a as u64) << 32 | b as u64;
        match self.hw2.get(&key) {
            Some(p) => *p,
            None => {
                let p = decoder.decode_with_scratch(&[a, b], scratch);
                self.hw2.insert(key, p);
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AstreaDecoder;
    use blossom_mwpm::MwpmDecoder;
    use decoding_graph::DecodingContext;
    use qec_circuit::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use surface_code::SurfaceCode;

    #[test]
    fn screen_matches_per_shot_popcounts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = BitTable::new(17, 200);
        for d in 0..17 {
            for s in 0..200 {
                if rng.gen::<f64>() < 0.04 {
                    table.set(d, s, true);
                }
            }
        }
        let mut screen = TileScreen::new();
        screen.compute(&table);
        assert_eq!(screen.num_words(), table.num_words());
        for s in 0..200 {
            let hw = (0..17).filter(|&d| table.get(d, s)).count();
            let (w, lane) = (s / 64, s % 64);
            let expect = |mask: u64| mask >> lane & 1 == 1;
            assert_eq!(expect(screen.hw0(w)), hw == 0, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hw1(w)), hw == 1, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hw2(w)), hw == 2, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hard(w)), hw >= 3, "shot {s} hw {hw}");
            assert_eq!(expect(screen.nonzero(w)), hw >= 1, "shot {s} hw {hw}");
        }
    }

    #[test]
    fn screen_buckets_are_a_partition() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut table = BitTable::new(40, 128);
        for d in 0..40 {
            for s in 0..128 {
                if rng.gen::<f64>() < 0.1 {
                    table.set(d, s, true);
                }
            }
        }
        let mut screen = TileScreen::new();
        screen.compute(&table);
        for w in 0..screen.num_words() {
            assert_eq!(
                screen.hw0(w) | screen.hw1(w) | screen.hw2(w) | screen.hard(w),
                !0u64
            );
            assert_eq!(screen.hw0(w) & screen.nonzero(w), 0);
            assert_eq!(screen.hw1(w) & screen.hw2(w), 0);
            assert_eq!(screen.hw1(w) & screen.hard(w), 0);
            assert_eq!(screen.hw2(w) & screen.hard(w), 0);
        }
    }

    fn check_cache_replay(
        num_detectors: usize,
        mut cached: Box<dyn Decoder + '_>,
        mut direct: Box<dyn Decoder + '_>,
    ) {
        let mut scratch = DecodeScratch::new();
        let mut cache = ScreenCache::new(num_detectors);
        let n = num_detectors as u32;
        for d in 0..n {
            // Twice: once filling, once replaying from the memo.
            for _ in 0..2 {
                let p = cache.single(d, cached.as_mut(), &mut scratch);
                assert_eq!(p, direct.decode(&[d]), "hw1 {d}");
            }
        }
        for a in 0..n.min(8) {
            for b in (a + 1)..n.min(8) {
                for _ in 0..2 {
                    let p = cache.pair(a, b, cached.as_mut(), &mut scratch);
                    assert_eq!(p, direct.decode(&[a, b]), "hw2 ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn cache_replays_decoder_predictions_exactly() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        let n = ctx.dem().num_detectors();
        check_cache_replay(
            n,
            Box::new(MwpmDecoder::new(ctx.gwt())),
            Box::new(MwpmDecoder::new(ctx.gwt())),
        );
        check_cache_replay(
            n,
            Box::new(AstreaDecoder::new(ctx.gwt())),
            Box::new(AstreaDecoder::new(ctx.gwt())),
        );
    }
}
