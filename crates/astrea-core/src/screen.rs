//! Word-parallel pre-decode screening over packed syndrome tiles.
//!
//! At realistic error rates almost every shot is easy: the syndrome is
//! all-zero (trivial), or it has Hamming weight 1–2 and is decided by a
//! single matching-graph edge. The barrier decode path still pays a
//! per-shot sparse-list materialization and a full decoder call for each
//! of them. This module screens shots *while they are still bit-packed*:
//!
//! * [`TileScreen`] runs a bit-sliced ripple adder over the detector
//!   rows of a [`BitTable`] tile, classifying all 64 shots of a word into
//!   Hamming-weight buckets {0, 1, 2, ≥3} with two bitwise ops per
//!   detector row per word — no per-shot work at all;
//! * trivial shots are *counted* (popcount) and their failures read off a
//!   word-parallel observable OR, never materialized;
//! * [`ScreenCache`] memoizes the wrapped decoder's [`Prediction`] for
//!   HW-1 and HW-2 syndromes, so easy nontrivial shots are decided by a
//!   table lookup that replays exactly what the decoder would have
//!   produced — predictions, modeled cycles, and deferral flags included.
//!
//! Because the cache replays the real decoder (it fills lazily by calling
//! it once per distinct syndrome), a screened run is bit-identical to the
//! unscreened one. This relies on decoders being deterministic pure
//! functions of the fired-detector list, which the [`Decoder`] contract's
//! batch-invariance already demands.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use decoding_graph::{DecodeScratch, Decoder, Prediction};
use qec_circuit::BitTable;

/// A multiplicative word hasher for the screen cache's packed integer
/// keys.
///
/// The HW-2 cache is keyed by `(a << 32) | b` over detector indices that
/// are already uniformly spread; SipHash's per-lookup cost (keyed rounds
/// for HashDoS resistance) is pure overhead on a table whose keys the
/// process generates itself. One odd-constant multiply plus a xor-fold
/// of the high half mixes every input bit into the table index bits at
/// ~1 ns per lookup.
#[derive(Debug, Default)]
pub struct WordHasher(u64);

impl Hasher for WordHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci hashing: multiply by 2^64/φ, then fold the
        // well-mixed high bits down onto the low (table-index) bits.
        let h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
}

/// [`HashMap`] state plugging [`WordHasher`] into the screen caches.
pub type WordHashState = BuildHasherDefault<WordHasher>;

/// Bit-sliced Hamming-weight classification of one packed tile: for each
/// 64-shot word, the lanes whose syndrome weight is 0, 1, 2, or ≥ 3.
///
/// The buffers are reusable scratch; [`TileScreen::compute`] resizes them
/// to the tile at hand.
#[derive(Debug, Default)]
pub struct TileScreen {
    /// Bit 0 of the per-lane weight counter.
    ones: Vec<u64>,
    /// Bit 1 of the per-lane weight counter.
    twos: Vec<u64>,
    /// Sticky overflow: lanes that reached weight ≥ 4.
    fours: Vec<u64>,
}

impl TileScreen {
    /// A screen with empty buffers (sized on first
    /// [`TileScreen::compute`]).
    pub fn new() -> TileScreen {
        TileScreen::default()
    }

    /// Classifies every shot of `detectors` by Hamming weight.
    ///
    /// One row-major sweep; per word and detector row this costs a
    /// handful of bitwise ops (a 2-bit ripple add with sticky overflow),
    /// so 64 shots are bucketed for less than the cost of materializing
    /// one sparse detector list.
    pub fn compute(&mut self, detectors: &BitTable) {
        let words = detectors.num_words();
        self.ones.clear();
        self.ones.resize(words, 0);
        self.twos.clear();
        self.twos.resize(words, 0);
        self.fours.clear();
        self.fours.resize(words, 0);
        for d in 0..detectors.num_bits() {
            let row = detectors.row(d);
            for (w, &bits) in row.iter().enumerate() {
                // 2-bit bit-sliced add of `bits` into (ones, twos) with
                // sticky overflow into `fours`.
                let carry1 = self.ones[w] & bits;
                self.ones[w] ^= bits;
                let carry2 = self.twos[w] & carry1;
                self.twos[w] ^= carry1;
                self.fours[w] |= carry2;
            }
        }
    }

    /// Number of words classified by the last `compute`.
    pub fn num_words(&self) -> usize {
        self.ones.len()
    }

    /// Lanes of word `w` with Hamming weight 0 (trivial shots).
    #[inline]
    pub fn hw0(&self, w: usize) -> u64 {
        !(self.ones[w] | self.twos[w] | self.fours[w])
    }

    /// Lanes of word `w` with Hamming weight exactly 1.
    #[inline]
    pub fn hw1(&self, w: usize) -> u64 {
        self.ones[w] & !self.twos[w] & !self.fours[w]
    }

    /// Lanes of word `w` with Hamming weight exactly 2.
    #[inline]
    pub fn hw2(&self, w: usize) -> u64 {
        self.twos[w] & !self.ones[w] & !self.fours[w]
    }

    /// Lanes of word `w` with Hamming weight ≥ 3 — the genuinely hard
    /// shots that get sparse detector lists and a real decoder call.
    #[inline]
    pub fn hard(&self, w: usize) -> u64 {
        self.fours[w] | (self.ones[w] & self.twos[w])
    }

    /// Lanes of word `w` with any fired detector (weight ≥ 1).
    #[inline]
    pub fn nonzero(&self, w: usize) -> u64 {
        self.ones[w] | self.twos[w] | self.fours[w]
    }
}

/// A lazy memo of the wrapped decoder's [`Prediction`]s for Hamming
/// weight 1 and 2 syndromes.
///
/// On first sight of a syndrome the real decoder is called once (through
/// the normal scratch-arena path) and the result cached; afterwards the
/// shot costs a vector index (HW 1) or one hash lookup (HW 2). Replayed
/// predictions are the decoder's own, so screening never changes any
/// result — see the [module docs](self) for the determinism requirement.
///
/// Keep one cache per worker thread, next to its decoder instance; a
/// cache outlives batches and keeps paying off across calls.
#[derive(Debug, Default)]
pub struct ScreenCache {
    hw1: Vec<Option<Prediction>>,
    hw2: HashMap<u64, Prediction, WordHashState>,
}

impl ScreenCache {
    /// An empty cache for syndromes over `num_detectors` detectors.
    pub fn new(num_detectors: usize) -> ScreenCache {
        ScreenCache {
            hw1: vec![None; num_detectors],
            hw2: HashMap::default(),
        }
    }

    /// Number of detectors the cache is sized for.
    pub fn num_detectors(&self) -> usize {
        self.hw1.len()
    }

    /// The decoder's prediction for the weight-1 syndrome `{d}`.
    #[inline]
    pub fn single(
        &mut self,
        d: u32,
        decoder: &mut dyn Decoder,
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        let slot = &mut self.hw1[d as usize];
        match slot {
            Some(p) => *p,
            None => {
                let p = decoder.decode_with_scratch(&[d], scratch);
                *slot = Some(p);
                p
            }
        }
    }

    /// The decoder's prediction for the weight-2 syndrome `{a, b}`
    /// (`a < b`, as extracted in ascending detector order).
    #[inline]
    pub fn pair(
        &mut self,
        a: u32,
        b: u32,
        decoder: &mut dyn Decoder,
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        debug_assert!(a < b);
        let key = (a as u64) << 32 | b as u64;
        match self.hw2.get(&key) {
            Some(p) => *p,
            None => {
                let p = decoder.decode_with_scratch(&[a, b], scratch);
                self.hw2.insert(key, p);
                p
            }
        }
    }
}

/// Smallest Hamming weight the [`HardSyndromeCache`] memoizes. Below
/// this the GWT-direct closed form decides the shot in registers for
/// less than the cost of hashing the key.
pub const HARD_CACHE_MIN_HW: usize = 5;

/// Largest Hamming weight the [`HardSyndromeCache`] memoizes: 10 sorted
/// detector indices pack exactly into the 12-bit fields of a `u128` key.
///
/// The original cache keyed 16-bit fields and stopped at HW 8, which
/// left most of the subset-DP band (HW 5..=11 at d = 7, p = 5×10⁻³ is
/// dominated by HW 9–11 shots) uncacheable — one reason profiled runs
/// reported zero hits. 12-bit fields cover every surface-code distance
/// in this workspace (d = 9 has 400 detectors; the fields hold 4094)
/// while extending the band through HW 10.
pub const HARD_CACHE_MAX_HW: usize = 10;

/// A bounded memo of hard-shot [`Prediction`]s, keyed by the full sparse
/// detector list.
///
/// Distinct hard syndromes repeat far less often than HW ≤ 2 ones, so
/// unlike [`ScreenCache`] this cache must be *bounded*: it is organized
/// as a 2-way set-associative array with one LRU bit per set, giving
/// O(1) lookup and eviction with no allocation after construction. Keys
/// pack the sorted detector list (each index stored as `d + 1` in a
/// 12-bit field, so the all-zero key never collides with a real
/// syndrome) for Hamming weights [`HARD_CACHE_MIN_HW`]`..=`
/// [`HARD_CACHE_MAX_HW`].
///
/// Like the screen cache it fills lazily from the real decoder, so a
/// cached run is bit-identical to an uncached one; only the time to
/// produce a repeated prediction changes. Keep one per worker thread —
/// hit rates are workload-dependent, and that is a property of the
/// *stream*, not a cache defect: on a cold i.i.d. sampled stream the
/// number of distinct probable HW ≥ 5 syndromes dwarfs any bounded
/// window, so near-zero hit rates are expected, while replayed,
/// correlated, or long-running streams hit freely (the repeat-stream
/// regression test in `pipeline` pins this down). Lookups are
/// instrumented and reported per run so the tradeoff stays visible.
#[derive(Debug)]
pub struct HardSyndromeCache {
    /// Packed keys, two ways per set; 0 = empty slot.
    keys: Vec<[u128; 2]>,
    preds: Vec<[Prediction; 2]>,
    /// Per-set way to evict next (flipped on hit/fill).
    lru: Vec<bool>,
    /// `sets.len() - 1` for power-of-two indexing; `usize::MAX` when
    /// disabled.
    mask: usize,
}

impl HardSyndromeCache {
    /// A cache holding at most `entries` predictions (rounded up to a
    /// power of two; two ways per set) over `num_detectors` detectors.
    ///
    /// `entries == 0` disables the cache, as does a detector count too
    /// large for the 12-bit key fields — every lookup then misses
    /// without storing anything.
    pub fn new(entries: usize, num_detectors: usize) -> HardSyndromeCache {
        if entries == 0 || num_detectors >= 0xFFF {
            return HardSyndromeCache {
                keys: Vec::new(),
                preds: Vec::new(),
                lru: Vec::new(),
                mask: usize::MAX,
            };
        }
        let sets = entries.div_ceil(2).next_power_of_two();
        HardSyndromeCache {
            keys: vec![[0; 2]; sets],
            preds: vec![[Prediction::default(); 2]; sets],
            lru: vec![false; sets],
            mask: sets - 1,
        }
    }

    /// Whether lookups can ever hit (nonzero capacity and packable keys).
    pub fn is_enabled(&self) -> bool {
        self.mask != usize::MAX
    }

    /// Number of predictions the cache can hold.
    pub fn capacity(&self) -> usize {
        self.keys.len() * 2
    }

    /// Whether `k` fired detectors are worth caching at all.
    #[inline]
    pub fn caches(&self, k: usize) -> bool {
        self.mask != usize::MAX && (HARD_CACHE_MIN_HW..=HARD_CACHE_MAX_HW).contains(&k)
    }

    /// The packed key for a sorted detector list (distinct lists map to
    /// distinct keys; never 0).
    #[inline]
    fn key(dets: &[u32]) -> u128 {
        let mut key = 0u128;
        for (slot, &d) in dets.iter().enumerate() {
            debug_assert!(d < 0xFFF);
            key |= ((d as u128) + 1) << (12 * slot);
        }
        key
    }

    /// The set index for `key`, by Fibonacci-hashing the folded halves.
    #[inline]
    fn set_of(&self, key: u128) -> usize {
        let folded = (key as u64) ^ ((key >> 64) as u64);
        let h = folded.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) ^ h) as usize & self.mask
    }

    /// The decoder's prediction for the hard syndrome `dets` (sorted
    /// ascending), consulting the cache when the weight is cacheable.
    ///
    /// Returns the prediction and whether it was served from the cache;
    /// a miss calls the decoder once and (if cacheable) fills the
    /// set's LRU way.
    #[inline]
    pub fn get_or_decode(
        &mut self,
        dets: &[u32],
        decoder: &mut dyn Decoder,
        scratch: &mut DecodeScratch,
    ) -> (Prediction, bool) {
        if !self.caches(dets.len()) {
            return (decoder.decode_with_scratch(dets, scratch), false);
        }
        let key = Self::key(dets);
        let set = self.set_of(key);
        for way in 0..2 {
            if self.keys[set][way] == key {
                // Protect the hit way: mark the other one for eviction.
                self.lru[set] = way == 0;
                return (self.preds[set][way], true);
            }
        }
        let p = decoder.decode_with_scratch(dets, scratch);
        let way = usize::from(self.lru[set]);
        self.keys[set][way] = key;
        self.preds[set][way] = p;
        self.lru[set] = way == 0;
        (p, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AstreaDecoder;
    use blossom_mwpm::MwpmDecoder;
    use decoding_graph::DecodingContext;
    use qec_circuit::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use surface_code::SurfaceCode;

    #[test]
    fn screen_matches_per_shot_popcounts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = BitTable::new(17, 200);
        for d in 0..17 {
            for s in 0..200 {
                if rng.gen::<f64>() < 0.04 {
                    table.set(d, s, true);
                }
            }
        }
        let mut screen = TileScreen::new();
        screen.compute(&table);
        assert_eq!(screen.num_words(), table.num_words());
        for s in 0..200 {
            let hw = (0..17).filter(|&d| table.get(d, s)).count();
            let (w, lane) = (s / 64, s % 64);
            let expect = |mask: u64| mask >> lane & 1 == 1;
            assert_eq!(expect(screen.hw0(w)), hw == 0, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hw1(w)), hw == 1, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hw2(w)), hw == 2, "shot {s} hw {hw}");
            assert_eq!(expect(screen.hard(w)), hw >= 3, "shot {s} hw {hw}");
            assert_eq!(expect(screen.nonzero(w)), hw >= 1, "shot {s} hw {hw}");
        }
    }

    #[test]
    fn screen_buckets_are_a_partition() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut table = BitTable::new(40, 128);
        for d in 0..40 {
            for s in 0..128 {
                if rng.gen::<f64>() < 0.1 {
                    table.set(d, s, true);
                }
            }
        }
        let mut screen = TileScreen::new();
        screen.compute(&table);
        for w in 0..screen.num_words() {
            assert_eq!(
                screen.hw0(w) | screen.hw1(w) | screen.hw2(w) | screen.hard(w),
                !0u64
            );
            assert_eq!(screen.hw0(w) & screen.nonzero(w), 0);
            assert_eq!(screen.hw1(w) & screen.hw2(w), 0);
            assert_eq!(screen.hw1(w) & screen.hard(w), 0);
            assert_eq!(screen.hw2(w) & screen.hard(w), 0);
        }
    }

    fn check_cache_replay(
        num_detectors: usize,
        mut cached: Box<dyn Decoder + '_>,
        mut direct: Box<dyn Decoder + '_>,
    ) {
        let mut scratch = DecodeScratch::new();
        let mut cache = ScreenCache::new(num_detectors);
        let n = num_detectors as u32;
        for d in 0..n {
            // Twice: once filling, once replaying from the memo.
            for _ in 0..2 {
                let p = cache.single(d, cached.as_mut(), &mut scratch);
                assert_eq!(p, direct.decode(&[d]), "hw1 {d}");
            }
        }
        for a in 0..n.min(8) {
            for b in (a + 1)..n.min(8) {
                for _ in 0..2 {
                    let p = cache.pair(a, b, cached.as_mut(), &mut scratch);
                    assert_eq!(p, direct.decode(&[a, b]), "hw2 ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn hard_cache_replays_decoder_predictions_exactly() {
        let code = SurfaceCode::new(5).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        let n = ctx.dem().num_detectors() as u32;
        let mut cached = MwpmDecoder::new(ctx.gwt());
        let mut direct = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut cache = HardSyndromeCache::new(64, n as usize);
        assert!(cache.is_enabled());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let k = rng.gen_range(HARD_CACHE_MIN_HW..=HARD_CACHE_MAX_HW);
            let mut dets: Vec<u32> = Vec::new();
            while dets.len() < k {
                let d = rng.gen_range(0..n);
                if !dets.contains(&d) {
                    dets.push(d);
                }
            }
            dets.sort_unstable();
            let (p, _) = cache.get_or_decode(&dets, &mut cached, &mut scratch);
            assert_eq!(p, direct.decode(&dets));
            // Immediate repeat must hit and replay the same prediction.
            let (p2, hit) = cache.get_or_decode(&dets, &mut cached, &mut scratch);
            assert!(hit);
            assert_eq!(p2, p);
        }
    }

    #[test]
    fn hard_cache_skips_uncacheable_weights_and_disabled_instances() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();

        let mut enabled = HardSyndromeCache::new(16, ctx.dem().num_detectors());
        assert!(!enabled.caches(HARD_CACHE_MIN_HW - 1));
        assert!(!enabled.caches(HARD_CACHE_MAX_HW + 1));
        let low: Vec<u32> = (0..HARD_CACHE_MIN_HW as u32 - 1).collect();
        let (_, hit) = enabled.get_or_decode(&low, &mut decoder, &mut scratch);
        assert!(!hit);
        let (_, hit) = enabled.get_or_decode(&low, &mut decoder, &mut scratch);
        assert!(!hit, "below-threshold weights must never be stored");

        let mut disabled = HardSyndromeCache::new(0, ctx.dem().num_detectors());
        assert!(!disabled.is_enabled());
        assert_eq!(disabled.capacity(), 0);
        let dets: Vec<u32> = (0..HARD_CACHE_MIN_HW as u32).collect();
        for _ in 0..2 {
            let (p, hit) = disabled.get_or_decode(&dets, &mut decoder, &mut scratch);
            assert!(!hit);
            assert_eq!(p, decoder.decode(&dets));
        }
    }

    #[test]
    fn hard_cache_evicts_within_bounds() {
        // A 1-entry request rounds to one set × two ways; hammering many
        // distinct syndromes must stay bounded and keep replaying
        // correct predictions whether it hits or misses.
        let code = SurfaceCode::new(5).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        let n = ctx.dem().num_detectors() as u32;
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut direct = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut cache = HardSyndromeCache::new(1, n as usize);
        assert_eq!(cache.capacity(), 2);
        for start in 0..40u32 {
            let dets: Vec<u32> = (start..start + HARD_CACHE_MIN_HW as u32).collect();
            let (p, _) = cache.get_or_decode(&dets, &mut decoder, &mut scratch);
            assert_eq!(p, direct.decode(&dets), "start {start}");
        }
    }

    #[test]
    fn cache_replays_decoder_predictions_exactly() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        let n = ctx.dem().num_detectors();
        check_cache_replay(
            n,
            Box::new(MwpmDecoder::new(ctx.gwt())),
            Box::new(MwpmDecoder::new(ctx.gwt())),
        );
        check_cache_replay(
            n,
            Box::new(AstreaDecoder::new(ctx.gwt())),
            Box::new(AstreaDecoder::new(ctx.gwt())),
        );
    }
}
