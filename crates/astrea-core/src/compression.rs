//! Syndrome compression (paper §7.6).
//!
//! Astrea-G must receive each round's syndrome and still have time to
//! decode within the 1 µs budget, so transmission bandwidth matters
//! (Table 7). The paper notes that "syndromes are typically compressible"
//! and cites AFS-style *sparse* representations: since most rounds fire
//! zero or very few detectors (Table 2), sending the indices of the fired
//! bits beats sending the raw bitmap almost always.
//!
//! [`SyndromeCompressor`] implements that scheme as a real bit-packed
//! codec: a header with the fired-bit count, then one `ceil(log₂ ℓ)`-bit
//! index per fired bit, falling back to the raw bitmap when the sparse
//! form would be larger.

/// Bit-packed sparse/raw syndrome codec for syndromes of fixed length ℓ.
///
/// ```
/// use astrea_core::SyndromeCompressor;
///
/// let codec = SyndromeCompressor::new(400); // d = 9 syndrome vector
/// let fired = vec![3, 77, 391];
/// let bytes = codec.encode(&fired);
/// assert_eq!(codec.decode(&bytes), fired);
/// assert!(bytes.len() * 8 < 400); // far below the raw bitmap
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyndromeCompressor {
    len: usize,
    index_bits: u32,
    count_bits: u32,
}

impl SyndromeCompressor {
    /// Creates a codec for syndromes of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> SyndromeCompressor {
        assert!(len > 0, "syndrome length must be positive");
        let index_bits = (usize::BITS - (len - 1).leading_zeros()).max(1);
        let count_bits = (usize::BITS - len.leading_zeros()).max(1);
        SyndromeCompressor {
            len,
            index_bits,
            count_bits,
        }
    }

    /// The syndrome length ℓ.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the codec covers a zero-length syndrome (never —
    /// construction forbids it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Size in bits of the sparse encoding of a syndrome with `hw` fired
    /// bits: 1 mode bit + count + indices.
    pub fn sparse_bits(&self, hw: usize) -> usize {
        1 + self.count_bits as usize + hw * self.index_bits as usize
    }

    /// Size in bits of the raw encoding: 1 mode bit + the bitmap.
    pub fn raw_bits(&self) -> usize {
        1 + self.len
    }

    /// Size in bits the codec will actually use for a syndrome of weight
    /// `hw`.
    pub fn encoded_bits(&self, hw: usize) -> usize {
        self.sparse_bits(hw).min(self.raw_bits())
    }

    /// Encodes the sorted fired-detector indices into a bit-packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or the list is unsorted or has
    /// duplicates.
    pub fn encode(&self, detectors: &[u32]) -> Vec<u8> {
        for w in detectors.windows(2) {
            assert!(w[0] < w[1], "detector list must be sorted and unique");
        }
        if let Some(&last) = detectors.last() {
            assert!((last as usize) < self.len, "detector {last} out of range");
        }
        let mut out = BitWriter::default();
        if self.sparse_bits(detectors.len()) <= self.raw_bits() {
            out.push_bit(true); // sparse mode
            out.push_bits(detectors.len() as u64, self.count_bits);
            for &d in detectors {
                out.push_bits(d as u64, self.index_bits);
            }
        } else {
            out.push_bit(false); // raw bitmap mode
            let mut i = 0;
            for bit in 0..self.len {
                let fired = i < detectors.len() && detectors[i] as usize == bit;
                if fired {
                    i += 1;
                }
                out.push_bit(fired);
            }
        }
        out.into_bytes()
    }

    /// Decodes a buffer produced by [`SyndromeCompressor::encode`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer is malformed (truncated or with out-of-range
    /// fields).
    pub fn decode(&self, bytes: &[u8]) -> Vec<u32> {
        let mut reader = BitReader::new(bytes);
        let sparse = reader.read_bit();
        if sparse {
            let count = reader.read_bits(self.count_bits) as usize;
            assert!(count <= self.len, "corrupt header: count {count}");
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let idx = reader.read_bits(self.index_bits) as u32;
                assert!((idx as usize) < self.len, "corrupt index {idx}");
                out.push(idx);
            }
            out
        } else {
            (0..self.len)
                .filter_map(|bit| reader.read_bit().then_some(bit as u32))
                .collect()
        }
    }

    /// The transmission time in nanoseconds for one encoded syndrome at a
    /// link bandwidth in MB/s.
    pub fn transmission_ns(&self, hw: usize, bandwidth_mbps: f64) -> f64 {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        let bytes = self.encoded_bits(hw).div_ceil(8) as f64;
        bytes / bandwidth_mbps * 1e3
    }
}

#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    used: u32,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        if self.used.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("pushed above") |= 1 << (self.used % 8);
        }
        self.used += 1;
    }

    fn push_bits(&mut self, value: u64, bits: u32) {
        for i in 0..bits {
            self.push_bit(value >> i & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> bool {
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        bit
    }

    fn read_bits(&mut self, bits: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..bits {
            v |= (self.read_bit() as u64) << i;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_syndromes() {
        let codec = SyndromeCompressor::new(192); // d = 7
        for dets in [vec![], vec![0], vec![5, 80, 191], (0..30u32).collect()] {
            let encoded = codec.encode(&dets);
            assert_eq!(codec.decode(&encoded), dets);
        }
    }

    #[test]
    fn falls_back_to_raw_bitmap_for_dense_syndromes() {
        let codec = SyndromeCompressor::new(64);
        let dense: Vec<u32> = (0..40).collect();
        assert!(codec.sparse_bits(40) > codec.raw_bits());
        let encoded = codec.encode(&dense);
        assert_eq!(codec.decode(&encoded), dense);
        assert_eq!(encoded.len(), codec.raw_bits().div_ceil(8));
    }

    #[test]
    fn sparse_encoding_beats_raw_for_typical_syndromes() {
        // d = 9: ℓ = 400 raw bits; a HW-6 syndrome needs 1 + 9 + 6·9 = 64
        // bits — a 6× bandwidth saving, which is §7.6's point.
        let codec = SyndromeCompressor::new(400);
        assert!(codec.encoded_bits(6) * 6 < codec.raw_bits());
        assert_eq!(codec.encoded_bits(6), 1 + 9 + 6 * 9);
    }

    #[test]
    fn empty_syndrome_is_two_bytes_or_less() {
        let codec = SyndromeCompressor::new(400);
        let encoded = codec.encode(&[]);
        assert!(encoded.len() <= 2, "{} bytes", encoded.len());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_input() {
        SyndromeCompressor::new(16).encode(&[3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_detector() {
        SyndromeCompressor::new(16).encode(&[16]);
    }

    #[test]
    fn transmission_time_scales_inversely_with_bandwidth() {
        let codec = SyndromeCompressor::new(400);
        let t50 = codec.transmission_ns(8, 50.0);
        let t100 = codec.transmission_ns(8, 100.0);
        assert!((t50 / t100 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_round_trip_small_lengths() {
        // Every subset of an 8-bit syndrome round-trips in both modes.
        let codec = SyndromeCompressor::new(8);
        for mask in 0u32..256 {
            let dets: Vec<u32> = (0..8).filter(|b| mask >> b & 1 == 1).collect();
            assert_eq!(codec.decode(&codec.encode(&dets)), dets, "mask {mask:#x}");
        }
    }
}
