//! A LILLIPUT-style lookup-table decoder (paper §2.3.2).
//!
//! LILLIPUT precomputes the MWPM correction for *every possible syndrome*
//! and serves decodes as constant-time table lookups. The catch, which the
//! paper hammers on, is the exponential table: `2^ℓ` entries for a
//! syndrome vector of length ℓ, practical only for the smallest codes
//! (`ℓ = 16` at `d = 3` → 64 Ki entries; `d = 5` with full rounds already
//! needs `2^72`). [`lilliput_table_bytes`] reproduces that scaling.

use blossom_mwpm::MwpmDecoder;
use decoding_graph::{Decoder, GlobalWeightTable, Prediction};

/// Largest syndrome-vector length for which a table will be built.
pub const MAX_LUT_BITS: usize = 24;

/// A lookup-table decoder: one precomputed observable-prediction bit per
/// possible syndrome vector.
///
/// ```no_run
/// use astrea_core::LutDecoder;
/// use decoding_graph::{Decoder, DecodingContext};
/// use qec_circuit::NoiseModel;
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-4));
/// let mut lut = LutDecoder::build(ctx.gwt()); // enumerates all 2^16 syndromes
/// let p = lut.decode(&[0, 1]);
/// assert_eq!(p.cycles, 1);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct LutDecoder {
    /// Predicted observable bit per syndrome, bit-packed.
    table: Vec<u64>,
    bits: usize,
}

impl LutDecoder {
    /// Builds the table by decoding every one of the `2^ℓ` possible
    /// syndromes with the exact MWPM decoder.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome vector is longer than [`MAX_LUT_BITS`] —
    /// exactly the scalability wall the paper describes.
    pub fn build(gwt: &GlobalWeightTable) -> LutDecoder {
        let bits = gwt.len();
        assert!(
            bits <= MAX_LUT_BITS,
            "a lookup table over {bits} syndrome bits needs 2^{bits} entries; \
             LILLIPUT-style decoding does not scale past d = 3 (the paper's point)"
        );
        let mwpm = MwpmDecoder::new(gwt);
        let entries = 1usize << bits;
        let mut table = vec![0u64; entries.div_ceil(64)];
        let mut dets: Vec<u32> = Vec::with_capacity(bits);
        for syndrome in 0..entries {
            dets.clear();
            let mut s = syndrome;
            while s != 0 {
                dets.push(s.trailing_zeros());
                s &= s - 1;
            }
            let solution = mwpm.decode_full(&dets);
            if solution.observables & 1 != 0 {
                table[syndrome / 64] |= 1u64 << (syndrome % 64);
            }
        }
        LutDecoder { table, bits }
    }

    /// Size of the table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * 8
    }
}

impl Decoder for LutDecoder {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        let mut syndrome = 0usize;
        for &d in detectors {
            debug_assert!((d as usize) < self.bits);
            syndrome |= 1 << d;
        }
        let flipped = self.table[syndrome / 64] >> (syndrome % 64) & 1;
        Prediction {
            observables: flipped as u32,
            cycles: 1,
            deferred: false,
        }
    }

    fn name(&self) -> &'static str {
        "LILLIPUT"
    }
}

/// The memory a LILLIPUT-style table needs for a distance-`d` code decoded
/// over `rounds` syndrome rounds (per basis, 2-byte entries): `2 × 2^bits`
/// with `bits = (d² − 1)/2 · (rounds + 1)`. Returns `None` when the value
/// overflows `u128` — which is itself the paper's scalability argument
/// (`d = 7` with `d` rounds needs `2 × 2^192` bytes).
pub fn lilliput_table_bytes(d: usize, rounds: usize) -> Option<u128> {
    let bits = (d * d - 1) / 2 * (rounds + 1);
    if bits >= 126 {
        return None;
    }
    Some(2u128 << bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::{build_memory_z_circuit, DemSampler, NoiseModel};
    use surface_code::SurfaceCode;

    /// A small context (d = 3, one round → 8 detectors) so table
    /// construction stays fast in debug builds.
    fn small_ctx() -> DecodingContext {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 1, NoiseModel::depolarizing(1e-3));
        DecodingContext::from_circuit(&circuit)
    }

    #[test]
    fn lut_agrees_with_mwpm_on_every_syndrome() {
        let ctx = small_ctx();
        let mut lut = LutDecoder::build(ctx.gwt());
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        let bits = ctx.gwt().len();
        for syndrome in 0..(1usize << bits) {
            let dets: Vec<u32> = (0..bits as u32)
                .filter(|&b| syndrome >> b & 1 == 1)
                .collect();
            assert_eq!(
                lut.decode(&dets).observables,
                mwpm.decode(&dets).observables,
                "syndrome {syndrome:#x}"
            );
        }
    }

    #[test]
    fn lut_is_constant_latency() {
        let ctx = small_ctx();
        let mut lut = LutDecoder::build(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..100 {
            let shot = sampler.sample(&mut rng);
            assert_eq!(lut.decode(&shot.detectors).cycles, 1);
        }
    }

    #[test]
    fn table_size_matches_entry_count() {
        let ctx = small_ctx();
        let lut = LutDecoder::build(ctx.gwt());
        // 2^8 entries, one bit each = 32 bytes, padded to u64 words.
        assert_eq!(lut.table_bytes(), 32);
    }

    #[test]
    fn lilliput_scaling_matches_paper() {
        // d = 5 with 2 rounds is the paper's last feasible point; d = 7
        // with d rounds is its 2 × 2^192-byte impossibility.
        let d5 = lilliput_table_bytes(5, 2).unwrap();
        assert_eq!(d5, 2u128 << 36);
        assert!(lilliput_table_bytes(7, 7).is_none());
    }

    #[test]
    fn decoder_name() {
        let ctx = small_ctx();
        let lut = LutDecoder::build(ctx.gwt());
        assert_eq!(lut.name(), "LILLIPUT");
    }
}
