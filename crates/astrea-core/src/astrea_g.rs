//! The Astrea-G greedy decoder (paper §6–7).
//!
//! Astrea-G extends Astrea beyond Hamming weight 10 by searching the
//! matching space greedily instead of exhaustively:
//!
//! 1. **Filter** (§6.1): pair weights above a threshold `Wth` — events 100×
//!    less likely than the logical error rate — are dropped from the Local
//!    Weight Table, shrinking the search space dramatically (Figure 10).
//! 2. **Order** (§6.2): the search expands low-weight (high-likelihood)
//!    pairings first, so the MWPM is found early even if the time budget
//!    expires before the space is exhausted.
//!
//! The micro-architecture (Figure 11) is mirrored faithfully: `F` priority
//! queues of up to `E` pre-matchings scored by `s/b` (cumulative weight per
//! matched bit), a Fetch/Sort/Commit pipeline that pops one pre-matching
//! per queue per iteration and commits the `F` lowest-weight extensions,
//! and the HW6Decoder finishing every pre-matching once six nodes remain.
//! Decoding stops when the queues drain or the 1 µs (250-cycle) budget
//! expires; the MWPM register then holds the best complete matching seen.

use crate::astrea::{best_matching, ActiveSet, AstreaConfig, AstreaDecoder};
use crate::latency::{astrea_decode_cycles, astrea_fetch_cycles, CycleModel};
use blossom_mwpm::MatchingSolution;
use decoding_graph::{Decoder, GlobalWeightTable, Prediction};

/// Configuration of the [`AstreaGDecoder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AstreaGConfig {
    /// Weight threshold `Wth` in `−log₁₀ P` units. Pairs above it are
    /// filtered from the Local Weight Table. The paper's default is 7
    /// (100× below the `d = 7`, `p = 10⁻³` logical error rate); §7.3 sweeps
    /// 4–8.
    pub weight_threshold: f64,
    /// Fetch width `F`: pre-matchings fetched, and extensions committed,
    /// per pipeline iteration (paper default 2).
    pub fetch_width: usize,
    /// Priority-queue capacity `E` (paper default 8).
    pub queue_capacity: usize,
    /// Real-time budget in decoder cycles (250 cycles = 1 µs at 250 MHz).
    pub cycle_budget: u64,
    /// Modeled cycles consumed per pipeline iteration (one pre-matching
    /// through Fetch/Sort/Commit, including priority-queue and LWT access
    /// latency). The default of 8 calibrates the model's mean
    /// high-Hamming-weight decode latency at `d = 9`, `p = 10⁻³` to the
    /// ~450 ns the paper reports (§7.4).
    pub cycles_per_iteration: u64,
    /// Syndromes at or below this Hamming weight take the exhaustive
    /// Astrea path instead of the greedy pipeline (Figure 11 routes
    /// low-Hamming-weight syndromes to Astrea).
    pub lhw_cutoff: usize,
    /// Hard ceiling on decodable Hamming weight (pre-matching masks are
    /// 64-bit).
    pub max_hamming_weight: usize,
}

impl Default for AstreaGConfig {
    fn default() -> AstreaGConfig {
        AstreaGConfig {
            weight_threshold: 7.0,
            fetch_width: 2,
            queue_capacity: 8,
            cycle_budget: CycleModel::default().cycles_within_ns(1000.0),
            cycles_per_iteration: 8,
            lhw_cutoff: 10,
            max_hamming_weight: 63,
        }
    }
}

/// A pre-matching: a partial matching of the active set.
#[derive(Debug, Clone, PartialEq)]
struct PreMatching {
    /// Bitmask over local node indices of the matched nodes.
    matched: u64,
    /// Number of matched nodes (`b` in the paper's `s/b` score).
    count: u32,
    /// Cumulative quantized weight (`s`).
    weight: u32,
    /// Observable parity accumulated so far.
    observables: u32,
    /// The committed pairs (local indices), for solution reconstruction.
    pairs: Vec<(u8, u8)>,
}

impl PreMatching {
    fn empty() -> PreMatching {
        PreMatching {
            matched: 0,
            count: 0,
            weight: 0,
            observables: 0,
            pairs: Vec::new(),
        }
    }

    /// Score comparison `s₁/b₁ < s₂/b₂` without division; empty
    /// pre-matchings sort first.
    fn better_than(&self, other: &PreMatching) -> bool {
        match (self.count, other.count) {
            (0, 0) => false,
            (0, _) => true,
            (_, 0) => false,
            _ => {
                (self.weight as u64 * other.count as u64)
                    < (other.weight as u64 * self.count as u64)
            }
        }
    }
}

/// A bounded priority queue of pre-matchings, best score first. When full,
/// inserting evicts the worst entry (the paper's high-weight pre-matchings
/// "are evicted as lower weight pre-matchings take precedence").
#[derive(Debug, Clone, Default)]
struct BoundedQueue {
    entries: Vec<PreMatching>,
    capacity: usize,
}

impl BoundedQueue {
    fn new(capacity: usize) -> BoundedQueue {
        BoundedQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn push(&mut self, pm: PreMatching) {
        let pos = self
            .entries
            .iter()
            .position(|e| pm.better_than(e))
            .unwrap_or(self.entries.len());
        if pos >= self.capacity {
            return; // Worse than everything in a full queue: dropped.
        }
        self.entries.insert(pos, pm);
        self.entries.truncate(self.capacity);
    }

    fn pop(&mut self) -> Option<PreMatching> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }
}

/// The Astrea-G greedy real-time decoder (paper §7).
///
/// Routes low-Hamming-weight syndromes to the exhaustive [`AstreaDecoder`]
/// path and decodes high-Hamming-weight syndromes with the filtered greedy
/// pipeline. See the module-level documentation for the search structure.
#[derive(Debug, Clone)]
pub struct AstreaGDecoder<'a> {
    gwt: &'a GlobalWeightTable,
    config: AstreaGConfig,
}

impl<'a> AstreaGDecoder<'a> {
    /// Creates a decoder with the paper's default design point
    /// (`Wth = 7`, `F = 2`, `E = 8`, 1 µs budget).
    pub fn new(gwt: &'a GlobalWeightTable) -> AstreaGDecoder<'a> {
        AstreaGDecoder::with_config(gwt, AstreaGConfig::default())
    }

    /// Creates a decoder with a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fetch_width` or `queue_capacity` is zero.
    pub fn with_config(gwt: &'a GlobalWeightTable, config: AstreaGConfig) -> AstreaGDecoder<'a> {
        assert!(config.fetch_width > 0, "fetch width must be positive");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        AstreaGDecoder { gwt, config }
    }

    /// The active configuration.
    pub fn config(&self) -> AstreaGConfig {
        self.config
    }

    /// Decodes a syndrome, returning the prediction and, if the greedy
    /// pipeline ran, the best complete matching found.
    pub fn decode_full(&self, detectors: &[u32]) -> (Prediction, Option<MatchingSolution>) {
        let hw = detectors.len();
        if hw == 0 {
            return (Prediction::identity(), Some(MatchingSolution::default()));
        }
        if hw <= self.config.lhw_cutoff {
            let astrea = AstreaDecoder::with_config(
                self.gwt,
                AstreaConfig {
                    max_hamming_weight: self.config.lhw_cutoff,
                },
            );
            let solution = astrea.decode_full(detectors);
            let cycles = astrea_fetch_cycles(hw) + astrea_decode_cycles(hw);
            let observables = solution.as_ref().map_or(0, |s| s.observables);
            return (
                Prediction {
                    observables,
                    cycles,
                    deferred: false,
                },
                solution,
            );
        }
        if hw > self.config.max_hamming_weight {
            return (
                Prediction {
                    observables: 0,
                    cycles: 0,
                    deferred: true,
                },
                None,
            );
        }
        self.decode_pipeline(detectors)
    }

    /// The greedy Fetch/Sort/Commit pipeline for high-Hamming-weight
    /// syndromes.
    fn decode_pipeline(&self, detectors: &[u32]) -> (Prediction, Option<MatchingSolution>) {
        let set = ActiveSet::new(self.gwt, detectors);
        let n = set.len();
        let f = self.config.fetch_width;

        // Local Weight Table: per node, candidate partners sorted by
        // effective weight, filtered by the quantized threshold. A node
        // whose candidates would all be filtered keeps its single best
        // option so the search cannot dead-end (documented deviation; the
        // paper does not specify this case).
        let wth_q = (self.config.weight_threshold * self.gwt.scale()).round() as u32;
        let mut lwt: Vec<Vec<(u8, u32)>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<(u8, u32)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (j as u8, set.weight(i, j)))
                .collect();
            row.sort_by_key(|&(_, w)| w);
            let filtered: Vec<(u8, u32)> =
                row.iter().copied().filter(|&(_, w)| w <= wth_q).collect();
            lwt.push(if filtered.is_empty() {
                row.truncate(1);
                row
            } else {
                filtered
            });
        }

        let mut queues: Vec<BoundedQueue> = (0..f)
            .map(|_| BoundedQueue::new(self.config.queue_capacity))
            .collect();
        queues[0].push(PreMatching::empty());

        let mut register: Option<(u32, MatchingSolution)> = None;
        let mut cycles: u64 = 3 + astrea_fetch_cycles(detectors.len()); // pipeline fill + GWT fetch
        let mut next_queue = 0usize;

        'outer: while cycles < self.config.cycle_budget {
            let mut fetched: Vec<PreMatching> = Vec::with_capacity(f);
            for q in queues.iter_mut() {
                if let Some(pm) = q.pop() {
                    fetched.push(pm);
                }
            }
            if fetched.is_empty() {
                break; // Queues drained: the register holds the MWPM.
            }

            for pm in fetched {
                cycles += self.config.cycles_per_iteration;
                if cycles >= self.config.cycle_budget {
                    break 'outer;
                }
                // Fetch: the lowest unmatched node.
                let i = (0..n)
                    .find(|&x| pm.matched & (1 << x) == 0)
                    .expect("pre-matchings in queues are incomplete");
                // Sort: candidates for i, already weight-sorted in the LWT;
                // keep the unmatched ones.
                let mut extensions: Vec<(u8, u32)> = lwt[i]
                    .iter()
                    .copied()
                    .filter(|&(j, _)| pm.matched & (1 << j) == 0)
                    .take(f)
                    .collect();
                if extensions.is_empty() {
                    // All preferred partners are taken: fall back to the
                    // cheapest remaining one.
                    if let Some(j) = (0..n).find(|&x| x != i && pm.matched & (1 << x) == 0) {
                        let best = (0..n)
                            .filter(|&x| x != i && pm.matched & (1 << x) == 0)
                            .min_by_key(|&x| set.weight(i, x))
                            .unwrap_or(j);
                        extensions.push((best as u8, set.weight(i, best)));
                    }
                }
                // Commit: create a child per extension.
                for (j, w) in extensions {
                    let mut child = pm.clone();
                    child.matched |= (1 << i) | (1 << j);
                    child.count += 2;
                    child.weight += w;
                    child.observables ^= set.obs(i, j as usize);
                    child.pairs.push((i as u8, j));

                    let remaining = n as u32 - child.count;
                    if remaining == 6 || remaining == 4 || remaining == 2 || remaining == 0 {
                        if remaining <= 6 && remaining > 0 {
                            // Finish with the HW6Decoder.
                            cycles += 1;
                            let rest: Vec<usize> =
                                (0..n).filter(|&x| child.matched & (1 << x) == 0).collect();
                            let (tail_pairs, tail_w) = best_matching(&sub_set(&set, &rest));
                            child.weight += tail_w;
                            for (a, b) in tail_pairs {
                                child.observables ^= set.obs(rest[a], rest[b]);
                                child.pairs.push((rest[a] as u8, rest[b] as u8));
                            }
                        }
                        // A complete matching: update the MWPM register.
                        if register.as_ref().is_none_or(|(w, _)| child.weight < *w) {
                            let mut solution = MatchingSolution::default();
                            for &(a, b) in &child.pairs {
                                set.resolve_into(a as usize, b as usize, &mut solution);
                            }
                            register = Some((child.weight, solution));
                        }
                    } else {
                        queues[next_queue].push(child);
                        next_queue = (next_queue + 1) % f;
                    }
                }
            }
        }

        let solution = match register {
            Some((_, solution)) => solution,
            None => {
                // Budget expired before any completion (possible only for
                // extreme Hamming weights): greedy completion.
                let mut solution = MatchingSolution::default();
                let mut matched = 0u64;
                for i in 0..n {
                    if matched & (1 << i) != 0 {
                        continue;
                    }
                    if let Some(j) = (0..n)
                        .filter(|&x| x != i && matched & (1 << x) == 0)
                        .min_by_key(|&x| set.weight(i, x))
                    {
                        matched |= (1 << i) | (1 << j);
                        set.resolve_into(i, j, &mut solution);
                    }
                }
                solution
            }
        };
        let cycles = cycles.min(self.config.cycle_budget);
        (
            Prediction {
                observables: solution.observables,
                cycles,
                deferred: false,
            },
            Some(solution),
        )
    }
}

/// A restriction of an active set to a subset of its nodes.
fn sub_set<'a>(set: &ActiveSet<'a>, indices: &[usize]) -> ActiveSet<'a> {
    set.restrict(indices)
}

impl Decoder for AstreaGDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        self.decode_full(detectors).0
    }

    fn name(&self) -> &'static str {
        "Astrea-G"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::{DemSampler, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn low_weight_syndromes_take_the_astrea_path() {
        let ctx = ctx(5, 1e-3);
        let mut g = AstreaGDecoder::new(ctx.gwt());
        let mut a = crate::AstreaDecoder::new(ctx.gwt());
        let dets = vec![0u32, 3, 7, 9];
        let pg = g.decode(&dets);
        let pa = a.decode(&dets);
        assert_eq!(pg.observables, pa.observables);
        assert_eq!(pg.cycles, pa.cycles);
    }

    #[test]
    fn pipeline_decodes_high_weight_syndromes_within_budget() {
        let ctx = ctx(5, 2e-2);
        let mut g = AstreaGDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(31);
        let mut high = 0;
        for _ in 0..3000 {
            let shot = sampler.sample(&mut rng);
            let p = g.decode(&shot.detectors);
            assert!(!p.deferred || shot.detectors.len() > 63);
            assert!(p.cycles <= g.config().cycle_budget);
            if shot.detectors.len() > 10 {
                high += 1;
            }
        }
        assert!(
            high > 50,
            "need high-HW syndromes to exercise the pipeline, got {high}"
        );
    }

    #[test]
    fn pipeline_solution_is_a_valid_matching() {
        let ctx = ctx(5, 2e-2);
        let g = AstreaGDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(77);
        let mut checked = 0;
        for _ in 0..2000 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.len() <= 10 || shot.detectors.len() > 40 {
                continue;
            }
            let (_, sol) = g.decode_full(&shot.detectors);
            let sol = sol.expect("pipeline returns a solution");
            assert!(
                sol.is_perfect_over(&shot.detectors),
                "incomplete matching on {:?}",
                shot.detectors
            );
            checked += 1;
        }
        assert!(checked > 30, "{checked} high-HW syndromes checked");
    }

    #[test]
    fn greedy_is_near_optimal_on_moderate_syndromes() {
        // For syndromes the exhaustive Astrea can also decode (routed here
        // through the pipeline by lowering the cutoff), the greedy result
        // must match the true MWPM weight in the overwhelming majority of
        // cases — the paper's central accuracy claim.
        let ctx = ctx(5, 1e-2);
        let config = AstreaGConfig {
            lhw_cutoff: 4,
            ..AstreaGConfig::default()
        };
        let g = AstreaGDecoder::with_config(ctx.gwt(), config);
        let exact = crate::AstreaDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(13);
        let (mut total, mut optimal, mut agree) = (0, 0, 0);
        for _ in 0..4000 {
            let shot = sampler.sample(&mut rng);
            let hw = shot.detectors.len();
            if hw <= 4 || hw > 10 {
                continue;
            }
            let (_, greedy_sol) = g.decode_full(&shot.detectors);
            let greedy_sol = greedy_sol.unwrap();
            let exact_sol = exact.decode_full(&shot.detectors).unwrap();
            total += 1;
            // Compare quantized weights.
            let qw = |s: &MatchingSolution| -> u32 {
                s.pairs
                    .iter()
                    .map(|&(a, b)| ctx.gwt().pair_weight_q(a, b) as u32)
                    .sum::<u32>()
                    + s.to_boundary
                        .iter()
                        .map(|&a| ctx.gwt().boundary_weight_q(a) as u32)
                        .sum::<u32>()
            };
            optimal += (qw(&greedy_sol) == qw(&exact_sol)) as u32;
            agree += (greedy_sol.observables == exact_sol.observables) as u32;
        }
        assert!(total > 100, "{total}");
        // The greedy search finds the exact MWPM in the vast majority of
        // hard cases, and its *prediction* (what drives the logical error
        // rate) agrees even more often — the paper's accuracy claim.
        assert!(
            optimal as f64 / total as f64 > 0.9,
            "greedy found MWPM in only {optimal}/{total} cases"
        );
        assert!(
            agree as f64 / total as f64 > 0.97,
            "greedy predictions agreed in only {agree}/{total} cases"
        );
    }

    #[test]
    fn tighter_budget_cannot_exceed_cycle_cap() {
        let ctx = ctx(5, 2e-2);
        let config = AstreaGConfig {
            cycle_budget: 40,
            ..AstreaGConfig::default()
        };
        let mut g = AstreaGDecoder::with_config(ctx.gwt(), config);
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let shot = sampler.sample(&mut rng);
            let p = g.decode(&shot.detectors);
            if shot.detectors.len() > 10 {
                assert!(p.cycles <= 40);
            }
        }
    }

    #[test]
    fn iteration_cost_scales_modeled_latency() {
        let ctx = ctx(7, 1e-3);
        let dets: Vec<u32> = (0..16u32).map(|i| i * 9).collect();
        let cheap = AstreaGConfig {
            cycles_per_iteration: 1,
            ..AstreaGConfig::default()
        };
        let costly = AstreaGConfig {
            cycles_per_iteration: 8,
            ..AstreaGConfig::default()
        };
        let mut a = AstreaGDecoder::with_config(ctx.gwt(), cheap);
        let mut b = AstreaGDecoder::with_config(ctx.gwt(), costly);
        let (ca, cb) = (a.decode(&dets).cycles, b.decode(&dets).cycles);
        assert!(cb > ca, "8-cycle iterations ({cb}) vs 1-cycle ({ca})");
        // Identical search decisions: the prediction must not change.
        assert_eq!(a.decode(&dets).observables, b.decode(&dets).observables);
    }

    #[test]
    fn bounded_queue_orders_and_evicts() {
        let mk = |w: u32, c: u32| PreMatching {
            matched: 0,
            count: c,
            weight: w,
            observables: 0,
            pairs: Vec::new(),
        };
        let mut q = BoundedQueue::new(2);
        q.push(mk(10, 2));
        q.push(mk(2, 2));
        q.push(mk(30, 2)); // evicted: worst of three with capacity 2
        let first = q.pop().unwrap();
        assert_eq!(first.weight, 2);
        let second = q.pop().unwrap();
        assert_eq!(second.weight, 10);
        assert!(q.pop().is_none());
    }

    #[test]
    fn score_prefers_more_progress_at_equal_weight() {
        let mk = |w: u32, c: u32| PreMatching {
            matched: 0,
            count: c,
            weight: w,
            observables: 0,
            pairs: Vec::new(),
        };
        // 10/4 = 2.5 beats 10/2 = 5.
        assert!(mk(10, 4).better_than(&mk(10, 2)));
        // Empty pre-matching (0/0) sorts first.
        assert!(mk(0, 0).better_than(&mk(1, 2)));
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let g = AstreaGDecoder::new(ctx.gwt());
        assert_eq!(g.name(), "Astrea-G");
    }
}
