//! Batched decoding over a persistent worker pool.
//!
//! Monte-Carlo experiments decode millions of independent shots; spawning
//! threads (and rebuilding decoders) per call wastes most of the runtime
//! at realistic error rates where the typical syndrome is trivial. This
//! module provides the workspace's batched hot path:
//!
//! * [`SyndromeBatch`] — a flattened, cheaply shareable column of shots
//!   (detector lists + expected observable masks) behind an `Arc`.
//!   Batches are built shot-by-shot, or ingested 64 shots per word from
//!   the bit-packed samplers via
//!   [`SyndromeBatchBuilder::push_packed`] / [`SyndromeBatch::from_packed`],
//!   which screen out all-zero (trivial) shots at word level before
//!   materializing sparse detector lists.
//! * [`BatchDecoder`] — a persistent worker pool. Workers are spawned
//!   once at construction, each owning one decoder instance (built by the
//!   caller's factory against the shared [`DecodingContext`]) and one
//!   reusable [`DecodeScratch`] arena; batches are fed to them over
//!   channels as interleaved index ranges
//!   ([`BatchDecoder::decode_batch`]), or packed tiles are streamed to
//!   them through a shared queue ([`BatchDecoder::decode_stream`], see
//!   [`crate::pipeline`]).
//! * [`decode_slice`] — the single shot-loop both the pool workers and
//!   scoped-thread harnesses (`astrea-experiments`) run, so every decode
//!   path shares one definition of "decode a shot and account for it".
//!
//! Determinism: shots are decoded independently, results are written back
//! by shot index, and all [`LatencyStats`] counters are sums or maxima,
//! so a batched run is bit-identical to a sequential run regardless of
//! the pool size. Harnesses that sample shots seed a fresh RNG per shot
//! from [`shot_seed`]`(seed, shot_index)`, which makes the *sampled
//! batches* thread-count-independent too.

use std::ops::Range;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use crate::latency::LatencyStats;
use crate::pipeline::{consume_tiles, StreamOutcome, TileQueue, TileScratch};
use decoding_graph::{DecodeScratch, Decoder, DecodingContext, Prediction};
use qec_circuit::{BitTable, SyndromeTile};

/// Derives the per-shot RNG seed for shot `index` of a run seeded with
/// `seed` (a SplitMix64 mix of the pair).
///
/// Seeding each shot's RNG independently — instead of one stream per
/// worker — is what makes sampled results identical for every thread
/// count and lets batched runs reproduce sequential ones bit-for-bit.
pub fn shot_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct BatchInner {
    /// `offsets[i]..offsets[i + 1]` indexes shot `i`'s detectors.
    offsets: Vec<u32>,
    detectors: Vec<u32>,
    observables: Vec<u32>,
}

/// A column of syndromes to decode: per-shot detector lists (flattened)
/// plus the actual observable-flip mask of each shot.
///
/// Cloning is an `Arc` bump; a batch can be shared with a worker pool
/// without copying shot data.
#[derive(Debug, Clone, Default)]
pub struct SyndromeBatch {
    inner: Arc<BatchInner>,
}

impl SyndromeBatch {
    /// An incremental builder for a batch.
    pub fn builder() -> SyndromeBatchBuilder {
        SyndromeBatchBuilder::default()
    }

    /// Number of shots in the batch.
    pub fn len(&self) -> usize {
        self.inner.observables.len()
    }

    /// True if the batch holds no shots.
    pub fn is_empty(&self) -> bool {
        self.inner.observables.is_empty()
    }

    /// The sorted fired-detector indices of shot `i`.
    pub fn detectors(&self, i: usize) -> &[u32] {
        let lo = self.inner.offsets[i] as usize;
        let hi = self.inner.offsets[i + 1] as usize;
        &self.inner.detectors[lo..hi]
    }

    /// The actual observable-flip mask of shot `i`.
    pub fn observables(&self, i: usize) -> u32 {
        self.inner.observables[i]
    }

    /// The Hamming weight (fired-detector count) of shot `i`.
    pub fn hamming_weight(&self, i: usize) -> usize {
        (self.inner.offsets[i + 1] - self.inner.offsets[i]) as usize
    }

    /// Converts packed detector/observable tables (from the word-parallel
    /// samplers in `qec-circuit`) into a batch — see
    /// [`SyndromeBatchBuilder::push_packed`].
    pub fn from_packed(detectors: &BitTable, observables: &BitTable) -> SyndromeBatch {
        let mut builder = SyndromeBatch::builder();
        builder.push_packed(detectors, observables);
        builder.finish()
    }
}

/// Builds a [`SyndromeBatch`] shot by shot.
#[derive(Debug, Default)]
pub struct SyndromeBatchBuilder {
    detectors: Vec<u32>,
    // Lazily seeded with the leading 0 on first use.
    offsets: Vec<u32>,
    observables: Vec<u32>,
    // Reusable scratch for `push_packed`: `(shot << 32 | detector)`
    // pairs in detector-major extraction order, and the per-shot
    // counting-sort histogram/cursor.
    pairs: Vec<u64>,
    counts: Vec<u32>,
}

impl SyndromeBatchBuilder {
    /// Appends one shot.
    ///
    /// # Panics
    ///
    /// Panics if the flattened detector column would overflow the `u32`
    /// offset space (> 4 billion fired detectors per batch).
    pub fn push(&mut self, detectors: &[u32], observables: u32) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.detectors.extend_from_slice(detectors);
        let end: u32 = self
            .detectors
            .len()
            .try_into()
            .expect("batch detector column exceeds u32 offsets");
        self.offsets.push(end);
        self.observables.push(observables);
    }

    /// Appends every shot of packed detector/observable tables, in shot
    /// order — the bridge from the word-parallel samplers
    /// (`qec_circuit::BatchDemSampler` / `BatchFrameSimulator`) into the
    /// decode path.
    ///
    /// The conversion is a counting sort: one row-major sweep over the
    /// detector table extracts `(shot, detector)` pairs from the set
    /// bits (a zero word — no shot in the column fired this detector,
    /// the common case at low p — costs one compare, which doubles as
    /// the trivial-shot screen) while histogramming fired counts per
    /// shot, then a prefix sum fixes every shot's slice and a stable
    /// scatter drops each pair into place. Row-ascending extraction
    /// keeps every shot's detector list sorted. Padding lanes of a
    /// partial final word are masked off during extraction.
    ///
    /// Callers converting large runs should feed tables tile-by-tile
    /// (as `astrea-experiments::sample_batch` does): the scatter's
    /// working set is the current table, so cache-resident tiles keep
    /// it out of DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the two tables disagree on shot count, if `observables`
    /// has more than 32 rows (observable masks are `u32`), or if the
    /// flattened detector column would overflow the `u32` offset space.
    pub fn push_packed(&mut self, detectors: &BitTable, observables: &BitTable) {
        let num_shots = detectors.num_shots();
        assert_eq!(
            num_shots,
            observables.num_shots(),
            "detector/observable tables disagree on shot count"
        );
        assert!(
            observables.num_bits() <= 32,
            "observable masks are u32 (≤ 32 observables)"
        );
        if num_shots == 0 {
            return;
        }
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let num_words = detectors.num_words();
        let last = num_words - 1;
        let last_mask = detectors.valid_lanes(last);

        // Pass 1: extract (shot, detector) pairs row-major and histogram
        // the per-shot fired counts into `counts[shot + 1]`.
        let mut pairs = std::mem::take(&mut self.pairs);
        pairs.clear();
        self.counts.clear();
        self.counts.resize(num_shots + 1, 0);
        for d in 0..detectors.num_bits() {
            let row = detectors.row(d);
            let mut extract = |w: usize, word: u64| {
                let mut m = word;
                while m != 0 {
                    let shot = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    pairs.push((shot as u64) << 32 | d as u64);
                    self.counts[shot + 1] += 1;
                }
            };
            for (w, &word) in row[..last].iter().enumerate() {
                extract(w, word);
            }
            extract(last, row[last] & last_mask);
        }

        // Pass 2: prefix-sum into per-shot cursors and stable-scatter the
        // pairs; afterwards `counts[shot]` is the end of `shot`'s slice.
        let base = self.detectors.len();
        assert!(
            u32::try_from(base + pairs.len()).is_ok(),
            "batch detector column exceeds u32 offsets"
        );
        for s in 0..num_shots {
            self.counts[s + 1] += self.counts[s];
        }
        self.detectors.resize(base + pairs.len(), 0);
        let out = &mut self.detectors[base..];
        for &pair in &pairs {
            let shot = (pair >> 32) as usize;
            out[self.counts[shot] as usize] = pair as u32;
            self.counts[shot] += 1;
        }
        self.pairs = pairs;
        self.offsets.reserve(num_shots);
        let base = base as u32;
        self.offsets
            .extend((0..num_shots).map(|s| base + self.counts[s]));

        // Pass 3: per-shot observable masks from the packed rows.
        let obs_base = self.observables.len();
        self.observables.resize(obs_base + num_shots, 0);
        let obs_out = &mut self.observables[obs_base..];
        for i in 0..observables.num_bits() {
            let row = observables.row(i);
            for (w, &word) in row.iter().enumerate() {
                let mut m = word & observables.valid_lanes(w);
                while m != 0 {
                    let shot = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    obs_out[shot] |= 1 << i;
                }
            }
        }
    }

    /// Appends every shot of `other` after this builder's shots —
    /// used to concatenate per-thread partial batches in index order.
    pub fn append(&mut self, other: SyndromeBatchBuilder) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let base: u32 = self
            .detectors
            .len()
            .try_into()
            .expect("batch detector column exceeds u32 offsets");
        self.detectors.extend_from_slice(&other.detectors);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|&o| base + o));
        self.observables.extend_from_slice(&other.observables);
    }

    /// Number of shots pushed so far.
    pub fn len(&self) -> usize {
        self.observables.len()
    }

    /// True if no shots have been pushed.
    pub fn is_empty(&self) -> bool {
        self.observables.is_empty()
    }

    /// Finalizes the batch.
    pub fn finish(mut self) -> SyndromeBatch {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        SyndromeBatch {
            inner: Arc::new(BatchInner {
                offsets: self.offsets,
                detectors: self.detectors,
                observables: self.observables,
            }),
        }
    }
}

/// The accounting produced by decoding a contiguous slice of a batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliceOutcome {
    /// One prediction per shot, in shot order.
    pub predictions: Vec<Prediction>,
    /// Latency statistics over the slice (HW histogram, cycle bands,
    /// trivial shots included).
    pub stats: LatencyStats,
    /// Shots whose predicted observable mask missed the actual one.
    pub failures: u64,
    /// Shots the decoder declined to decode in real time.
    pub deferred: u64,
}

/// Decodes shots `range` of `batch` with one decoder + scratch arena,
/// accumulating predictions and statistics.
///
/// This is the single shot-loop every decode path shares: the
/// [`BatchDecoder`] workers call it, and scoped-thread harnesses call it
/// directly on borrowed decoders. Trivial (empty) syndromes are counted
/// with zero cycles and an identity prediction without touching the
/// decoder, matching the hardware model.
pub fn decode_slice(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    batch: &SyndromeBatch,
    range: Range<usize>,
) -> SliceOutcome {
    let mut out = SliceOutcome {
        predictions: Vec::with_capacity(range.len()),
        ..SliceOutcome::default()
    };
    for i in range {
        let detectors = batch.detectors(i);
        let actual = batch.observables(i);
        if detectors.is_empty() {
            out.stats.record(0, 0);
            out.failures += u64::from(actual != 0);
            out.predictions.push(Prediction::identity());
            continue;
        }
        let p = decoder.decode_with_scratch(detectors, scratch);
        out.stats.record(detectors.len(), p.cycles);
        out.deferred += u64::from(p.deferred);
        out.failures += u64::from(p.observables != actual);
        out.predictions.push(p);
    }
    out
}

/// The aggregate result of decoding one batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchResult {
    /// One prediction per shot, indexed exactly like the input batch.
    pub predictions: Vec<Prediction>,
    /// Batch counters: shot count, nontrivial syndromes, the
    /// Hamming-weight histogram, and modeled cycle statistics.
    pub stats: LatencyStats,
    /// Shots whose predicted observable mask missed the actual one.
    pub failures: u64,
    /// Shots the decoder declined to decode in real time.
    pub deferred: u64,
}

/// Builds one decoder per worker against the shared context. The
/// returned decoder may borrow from the context (every decoder in the
/// workspace borrows its weight table), hence the HRTB.
pub type BatchDecoderFactory =
    dyn for<'c> Fn(&'c DecodingContext) -> Box<dyn Decoder + 'c> + Send + Sync;

enum Job {
    /// Decode a contiguous shot range of a shared batch.
    Slice {
        batch: SyndromeBatch,
        range: Range<usize>,
        reply: mpsc::Sender<(usize, SliceOutcome)>,
    },
    /// Drain a shared tile queue until the producers hang up.
    Stream {
        queue: TileQueue,
        reply: mpsc::Sender<StreamOutcome>,
    },
}

/// A persistent pool of decode workers.
///
/// Workers (and their decoder + scratch-arena instances) are created
/// once in [`BatchDecoder::new`] and fed shot ranges over channels on
/// every [`BatchDecoder::decode_batch`] call; nothing is spawned or
/// rebuilt per batch. Results are placed by shot index, so the output is
/// bit-identical to a sequential run for any pool size.
pub struct BatchDecoder {
    senders: Vec<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchDecoder {
    /// Spawns `threads` persistent workers (at least one), each building
    /// its own decoder from `factory` against `ctx`.
    pub fn new(
        ctx: Arc<DecodingContext>,
        threads: usize,
        factory: Arc<BatchDecoderFactory>,
    ) -> BatchDecoder {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<Job>();
            let ctx = Arc::clone(&ctx);
            let factory = Arc::clone(&factory);
            let handle = std::thread::Builder::new()
                .name(format!("astrea-batch-{w}"))
                .spawn(move || {
                    let mut decoder = factory(&ctx);
                    let mut scratch = DecodeScratch::new();
                    // Tile scratch persists across streamed batches so the
                    // HW ≤ 2 prediction cache keeps paying off.
                    let mut tiles = TileScratch::new();
                    while let Ok(job) = rx.recv() {
                        // A dropped receiver just means the caller went
                        // away mid-batch; nothing to clean up.
                        match job {
                            Job::Slice {
                                batch,
                                range,
                                reply,
                            } => {
                                let start = range.start;
                                let outcome =
                                    decode_slice(decoder.as_mut(), &mut scratch, &batch, range);
                                let _ = reply.send((start, outcome));
                            }
                            Job::Stream { queue, reply } => {
                                let outcome = consume_tiles(
                                    decoder.as_mut(),
                                    &mut scratch,
                                    &mut tiles,
                                    &queue,
                                );
                                let _ = reply.send(outcome);
                            }
                        }
                    }
                })
                .expect("failed to spawn batch decode worker");
            senders.push(tx);
            workers.push(handle);
        }
        BatchDecoder { senders, workers }
    }

    /// The number of persistent workers in the pool.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Decodes every shot of `shots` across the pool.
    ///
    /// Shots are sharded into contiguous ranges dealt round-robin to the
    /// workers — several small shards per worker rather than one large
    /// chunk each, because nontrivial shots cluster and a single unlucky
    /// chunk would stall the whole pool behind one worker. Outcomes are
    /// merged by shot index, so the result is independent of worker
    /// count, shard size, and scheduling order.
    pub fn decode_batch(&mut self, shots: &SyndromeBatch) -> BatchResult {
        let n = shots.len();
        let mut result = BatchResult {
            predictions: vec![Prediction::identity(); n],
            ..BatchResult::default()
        };
        if n == 0 {
            return result;
        }

        // ~8 shards per worker bounds the load imbalance to one shard
        // while keeping per-shard channel traffic negligible; the floor
        // keeps shards from degenerating into per-shot messages on small
        // batches.
        let workers = self.senders.len();
        let chunk = n.div_ceil(workers * 8).max(32);
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut outstanding = 0usize;
        for (shard, start) in (0..n).step_by(chunk).enumerate() {
            let end = (start + chunk).min(n);
            self.senders[shard % workers]
                .send(Job::Slice {
                    batch: shots.clone(),
                    range: start..end,
                    reply: reply_tx.clone(),
                })
                .expect("batch decode worker exited unexpectedly");
            outstanding += 1;
        }
        drop(reply_tx);

        for _ in 0..outstanding {
            let (start, outcome) = reply_rx
                .recv()
                .expect("batch decode worker dropped a job reply");
            result.predictions[start..start + outcome.predictions.len()]
                .copy_from_slice(&outcome.predictions);
            result.stats.merge(&outcome.stats);
            result.failures += outcome.failures;
            result.deferred += outcome.deferred;
        }
        result
    }

    /// Decodes a stream of packed syndrome tiles across the pool — the
    /// pipelined entry point that overlaps decoding with whatever is
    /// producing `tiles` (see [`crate::pipeline`]).
    ///
    /// Every worker pulls tiles from the shared queue as it finishes the
    /// previous one (dynamic load balancing), screens them word-parallel,
    /// and decodes only the hard shots; the call returns once the
    /// producers have dropped their senders and the queue drained. The
    /// outcome is bit-identical to converting the same tiles into a
    /// [`SyndromeBatch`] and calling [`BatchDecoder::decode_batch`],
    /// minus the per-shot predictions (totals only).
    pub fn decode_stream(&mut self, tiles: mpsc::Receiver<SyndromeTile>) -> StreamOutcome {
        let queue = TileQueue::new(tiles);
        let (reply_tx, reply_rx) = mpsc::channel();
        for tx in &self.senders {
            tx.send(Job::Stream {
                queue: queue.clone(),
                reply: reply_tx.clone(),
            })
            .expect("batch decode worker exited unexpectedly");
        }
        drop(reply_tx);
        let mut out = StreamOutcome::default();
        for _ in 0..self.senders.len() {
            out.merge(
                &reply_rx
                    .recv()
                    .expect("batch decode worker dropped a stream reply"),
            );
        }
        out
    }
}

impl Drop for BatchDecoder {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AstreaDecoder;
    use blossom_mwpm::MwpmDecoder;
    use qec_circuit::{DemSampler, NoiseModel, Shot};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> Arc<DecodingContext> {
        let code = SurfaceCode::new(d).unwrap();
        Arc::new(DecodingContext::for_memory_experiment(
            &code,
            NoiseModel::depolarizing(p),
        ))
    }

    fn sample_batch(ctx: &DecodingContext, shots: usize, seed: u64) -> SyndromeBatch {
        let mut sampler = DemSampler::new(ctx.dem());
        let mut builder = SyndromeBatch::builder();
        let mut shot = Shot::default();
        for i in 0..shots {
            let mut rng = StdRng::seed_from_u64(shot_seed(seed, i as u64));
            sampler.sample_into(&mut rng, &mut shot);
            builder.push(&shot.detectors, shot.observables);
        }
        builder.finish()
    }

    fn mwpm_factory() -> Arc<BatchDecoderFactory> {
        // Backend-aware: resolves to the GWT or the staged local provider
        // according to the context, so the same factory serves both.
        Arc::new(|c: &DecodingContext| Box::new(MwpmDecoder::for_context(c)) as Box<dyn Decoder>)
    }

    #[test]
    fn gwt_free_context_decodes_identically_through_the_pool() {
        let code = SurfaceCode::new(3).unwrap();
        let noise = NoiseModel::depolarizing(5e-3);
        let gctx = Arc::new(DecodingContext::for_memory_experiment(&code, noise));
        let lctx = Arc::new(DecodingContext::for_memory_experiment_with(
            &code,
            noise,
            decoding_graph::WeightSource::Local,
        ));
        assert!(lctx.try_gwt().is_none());
        let batch = sample_batch(&gctx, 1_000, 17);
        let mut gpool = BatchDecoder::new(Arc::clone(&gctx), 3, mwpm_factory());
        let mut lpool = BatchDecoder::new(Arc::clone(&lctx), 3, mwpm_factory());
        assert_eq!(gpool.decode_batch(&batch), lpool.decode_batch(&batch));
    }

    #[test]
    fn empty_batch_decodes_to_nothing() {
        let ctx = ctx(3, 1e-3);
        let mut pool = BatchDecoder::new(Arc::clone(&ctx), 2, mwpm_factory());
        let result = pool.decode_batch(&SyndromeBatch::builder().finish());
        assert_eq!(result, BatchResult::default());
    }

    #[test]
    fn pool_size_does_not_change_the_result() {
        let ctx = ctx(3, 5e-3);
        let batch = sample_batch(&ctx, 2_000, 11);
        let mut reference = None;
        for threads in [1, 2, 3, 8] {
            let mut pool = BatchDecoder::new(Arc::clone(&ctx), threads, mwpm_factory());
            let result = pool.decode_batch(&batch);
            assert_eq!(result.predictions.len(), batch.len());
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(&result, r, "diverged at {threads} threads"),
            }
        }
    }

    #[test]
    fn batched_matches_direct_decode_slice() {
        let ctx = ctx(3, 5e-3);
        let batch = sample_batch(&ctx, 1_500, 3);
        let mut pool = BatchDecoder::new(Arc::clone(&ctx), 4, mwpm_factory());
        let batched = pool.decode_batch(&batch);

        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let seq = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());
        assert_eq!(batched.predictions, seq.predictions);
        assert_eq!(batched.stats, seq.stats);
        assert_eq!(batched.failures, seq.failures);
        assert_eq!(batched.deferred, seq.deferred);
    }

    #[test]
    fn stats_count_every_shot_and_trivial_ones_are_free() {
        let ctx = ctx(3, 5e-3);
        let batch = sample_batch(&ctx, 4_000, 7);
        let factory: Arc<BatchDecoderFactory> = Arc::new(|c: &DecodingContext| {
            Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>
        });
        let mut pool = BatchDecoder::new(Arc::clone(&ctx), 3, factory);
        let result = pool.decode_batch(&batch);
        assert_eq!(result.stats.shots, 4_000);
        let hist = result.stats.hw_histogram();
        let nontrivial: u64 = hist.iter().skip(3).sum();
        assert_eq!(result.stats.nontrivial_shots, nontrivial);
        // Trivial shots decode in 0 cycles; the histogram's bucket 0
        // must cover at least the HW ≤ 2 population.
        assert!(result.stats.cycle_histogram()[0] >= hist[0] + hist[1] + hist[2]);
        assert!(result.stats.max_cycles <= 114);
    }

    #[test]
    fn decode_stream_matches_decode_batch_totals() {
        use crate::pipeline::tile_channel;
        use qec_circuit::tiles::{PackedSyndromeSource, TileLayout};

        let ctx = ctx(3, 5e-3);
        let shots = 3_000;
        let sampler = qec_circuit::BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(19, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        let mut pool = BatchDecoder::new(Arc::clone(&ctx), 3, mwpm_factory());
        let barrier = pool.decode_batch(&batch);

        let layout = TileLayout::new(shots, 5);
        let (tx, rx) = tile_channel(4);
        let producer = std::thread::spawn(move || {
            let mut sampler = sampler;
            for t in 0..layout.num_tiles() {
                tx.send(sampler.sample_tile(19, &layout, t)).unwrap();
            }
        });
        let streamed = pool.decode_stream(rx);
        producer.join().unwrap();
        assert_eq!(streamed.stats, barrier.stats);
        assert_eq!(streamed.failures, barrier.failures);
        assert_eq!(streamed.deferred, barrier.deferred);
        // The pool survives a stream and still serves plain batches.
        assert_eq!(pool.decode_batch(&batch), barrier);
    }

    #[test]
    fn batch_indexing_round_trips() {
        let mut builder = SyndromeBatch::builder();
        builder.push(&[1, 5, 9], 0b10);
        builder.push(&[], 0);
        builder.push(&[2], 1);
        let batch = builder.finish();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.detectors(0), &[1, 5, 9]);
        assert_eq!(batch.hamming_weight(0), 3);
        assert_eq!(batch.observables(0), 0b10);
        assert_eq!(batch.detectors(1), &[] as &[u32]);
        assert_eq!(batch.detectors(2), &[2]);
        assert_eq!(batch.observables(2), 1);
    }

    #[test]
    fn append_preserves_shot_order_and_offsets() {
        let mut a = SyndromeBatch::builder();
        a.push(&[1, 2], 1);
        let mut b = SyndromeBatch::builder();
        b.push(&[3], 2);
        b.push(&[4, 5, 6], 3);
        a.append(b);
        let batch = a.finish();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.detectors(0), &[1, 2]);
        assert_eq!(batch.detectors(1), &[3]);
        assert_eq!(batch.detectors(2), &[4, 5, 6]);
        assert_eq!(batch.observables(1), 2);
        // Appending into an empty builder must also work.
        let mut empty = SyndromeBatch::builder();
        let mut c = SyndromeBatch::builder();
        c.push(&[7], 4);
        empty.append(c);
        let batch = empty.finish();
        assert_eq!(batch.detectors(0), &[7]);
    }

    #[test]
    fn push_packed_round_trips_sparse_shots() {
        // 3 detectors, 2 observables, 70 shots (partial final word).
        let num_shots = 70;
        let mut det = BitTable::new(3, num_shots);
        let mut obs = BitTable::new(2, num_shots);
        let shots: Vec<(Vec<u32>, u32)> = (0..num_shots)
            .map(|s| match s % 5 {
                0 => (vec![0, 2], 0b01),
                1 => (vec![], 0b10),
                2 => (vec![1], 0),
                _ => (vec![], 0),
            })
            .collect();
        for (s, (dets, mask)) in shots.iter().enumerate() {
            for &d in dets {
                det.set(d as usize, s, true);
            }
            for bit in 0..2 {
                if mask >> bit & 1 == 1 {
                    obs.set(bit, s, true);
                }
            }
        }
        let batch = SyndromeBatch::from_packed(&det, &obs);
        assert_eq!(batch.len(), num_shots);
        for (s, (dets, mask)) in shots.iter().enumerate() {
            assert_eq!(batch.detectors(s), dets.as_slice(), "shot {s}");
            assert_eq!(batch.observables(s), *mask, "shot {s}");
        }
    }

    #[test]
    fn push_packed_all_zero_words_yield_trivial_shots() {
        let det = BitTable::new(5, 130);
        let mut obs = BitTable::new(1, 130);
        obs.set(0, 129, true);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        assert_eq!(batch.len(), 130);
        for s in 0..130 {
            assert!(batch.detectors(s).is_empty());
            assert_eq!(batch.observables(s), u32::from(s == 129));
        }
    }

    #[test]
    fn push_packed_matches_scalar_push_on_sampled_data() {
        let ctx = ctx(3, 5e-3);
        let sampler = qec_circuit::BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(17, 500);
        let packed = SyndromeBatch::from_packed(&det, &obs);
        let mut scalar = SyndromeBatch::builder();
        for s in 0..500 {
            let dets: Vec<u32> = (0..det.num_bits())
                .filter(|&d| det.get(d, s))
                .map(|d| d as u32)
                .collect();
            let mask = u32::from(obs.get(0, s));
            scalar.push(&dets, mask);
        }
        let scalar = scalar.finish();
        assert_eq!(packed.len(), scalar.len());
        for s in 0..500 {
            assert_eq!(packed.detectors(s), scalar.detectors(s), "shot {s}");
            assert_eq!(packed.observables(s), scalar.observables(s), "shot {s}");
        }
    }

    #[test]
    fn shot_seed_decorrelates_neighbours() {
        let a = shot_seed(42, 0);
        let b = shot_seed(42, 1);
        let c = shot_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(shot_seed(42, 0), a);
    }
}
