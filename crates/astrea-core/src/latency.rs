//! The hardware cycle and latency model (paper §5.4).

/// The paper's FPGA clock frequency in MHz.
pub const DEFAULT_FREQ_MHZ: f64 = 250.0;

/// Cycles Astrea spends fetching weights from the GWT into the weight
/// array: `HW + 1` (§5.4), e.g. 11 cycles for a Hamming-weight-10 syndrome.
pub fn astrea_fetch_cycles(hamming_weight: usize) -> u64 {
    if hamming_weight <= 2 {
        0 // Trivial syndromes are decoded without touching the weight array.
    } else {
        hamming_weight as u64 + 1
    }
}

/// Cycles Astrea's matcher spends after the fetch: 1 cycle for HW 3–6
/// (single HW6Decoder pass), 11 for HW 7–8 (7 pre-match accesses plus
/// pipeline overhead), 103 for HW 9–10 (63 accesses plus overhead), per
/// §5.4. Hamming weights 0–2 are trivial and free.
///
/// # Panics
///
/// Panics above Hamming weight 10 — Astrea does not decode such syndromes.
pub fn astrea_decode_cycles(hamming_weight: usize) -> u64 {
    match hamming_weight {
        0..=2 => 0,
        3..=6 => 1,
        7..=8 => 11,
        9..=10 => 103,
        _ => panic!("Astrea decodes only up to Hamming weight 10, got {hamming_weight}"),
    }
}

/// A decoder clock model for converting cycles to wall-clock latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl Default for CycleModel {
    fn default() -> CycleModel {
        CycleModel {
            freq_mhz: DEFAULT_FREQ_MHZ,
        }
    }
}

impl CycleModel {
    /// Nanoseconds per cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e3 / self.freq_mhz
    }

    /// Converts a cycle count to nanoseconds.
    pub fn to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.ns_per_cycle()
    }

    /// The number of whole cycles available within a real-time budget of
    /// `ns` nanoseconds (1 µs → 250 cycles at 250 MHz).
    pub fn cycles_within_ns(&self, ns: f64) -> u64 {
        (ns / self.ns_per_cycle()).floor() as u64
    }
}

/// Hamming-weight histogram buckets tracked by [`LatencyStats`]; the last
/// bucket collects every weight `≥ HW_BUCKETS − 1`.
pub const HW_BUCKETS: usize = 16;

/// Power-of-two cycle histogram buckets tracked by [`LatencyStats`]:
/// bucket 0 holds zero-cycle (trivial) shots, bucket `b ≥ 1` holds cycle
/// counts in `[2^(b−1), 2^b)`, and the last bucket collects everything
/// beyond.
pub const CYCLE_BUCKETS: usize = 16;

/// Mergeable per-batch latency statistics in decoder cycles.
///
/// Tracks totals, the worst case, and two fixed-size histograms (syndrome
/// Hamming weight and power-of-two cycle bands) so batches can report
/// percentiles without storing per-shot samples. All counters are plain
/// sums or maxima, so merging partial results is associative and
/// order-independent — batched and sequential runs produce identical
/// statistics. "Nontrivial" means Hamming weight > 2, the paper's
/// "Mean (HW > 2 Only)" series in Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Total cycles across all shots.
    pub total_cycles: u64,
    /// Total cycles across shots with Hamming weight > 2.
    pub total_cycles_nontrivial: u64,
    /// Number of shots with Hamming weight > 2.
    pub nontrivial_shots: u64,
    /// Worst-case cycles observed.
    pub max_cycles: u64,
    /// Number of shots observed (including trivial ones).
    pub shots: u64,
    hw_hist: [u64; HW_BUCKETS],
    cycle_hist: [u64; CYCLE_BUCKETS],
}

impl LatencyStats {
    /// Records one decoded shot.
    pub fn record(&mut self, hamming_weight: usize, cycles: u64) {
        self.shots += 1;
        self.total_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
        if hamming_weight > 2 {
            self.total_cycles_nontrivial += cycles;
            self.nontrivial_shots += 1;
        }
        self.hw_hist[hamming_weight.min(HW_BUCKETS - 1)] += 1;
        self.cycle_hist[Self::cycle_bucket(cycles)] += 1;
    }

    /// Records `count` shots that all share one Hamming weight and cycle
    /// count — exactly equivalent to `count` [`LatencyStats::record`]
    /// calls, but O(1). The word-parallel screening path uses this to
    /// account for a whole popcounted population (e.g. every trivial shot
    /// of a 64-shot word) at once.
    pub fn record_many(&mut self, hamming_weight: usize, cycles: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.shots += count;
        self.total_cycles += cycles * count;
        self.max_cycles = self.max_cycles.max(cycles);
        if hamming_weight > 2 {
            self.total_cycles_nontrivial += cycles * count;
            self.nontrivial_shots += count;
        }
        self.hw_hist[hamming_weight.min(HW_BUCKETS - 1)] += count;
        self.cycle_hist[Self::cycle_bucket(cycles)] += count;
    }

    /// Folds another partial result in (order-independent).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.total_cycles += other.total_cycles;
        self.total_cycles_nontrivial += other.total_cycles_nontrivial;
        self.nontrivial_shots += other.nontrivial_shots;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
        self.shots += other.shots;
        for (a, b) in self.hw_hist.iter_mut().zip(other.hw_hist.iter()) {
            *a += b;
        }
        for (a, b) in self.cycle_hist.iter_mut().zip(other.cycle_hist.iter()) {
            *a += b;
        }
    }

    fn cycle_bucket(cycles: u64) -> usize {
        if cycles == 0 {
            0
        } else {
            ((64 - cycles.leading_zeros()) as usize).min(CYCLE_BUCKETS - 1)
        }
    }

    /// Shots recorded in each Hamming-weight bucket (`hw_histogram()[h]`
    /// counts shots of weight `h`; the last bucket aggregates the tail).
    pub fn hw_histogram(&self) -> &[u64; HW_BUCKETS] {
        &self.hw_hist
    }

    /// Shots recorded in each power-of-two cycle bucket.
    pub fn cycle_histogram(&self) -> &[u64; CYCLE_BUCKETS] {
        &self.cycle_hist
    }

    /// An upper bound on the `pct`-th percentile (0–100) of the per-shot
    /// cycle count: the upper edge of the histogram bucket containing that
    /// rank, clamped to the observed maximum. Exact whenever the rank
    /// falls in the top bucket or a bucket holding a single distinct
    /// value (e.g. trivial zero-cycle shots). Returns 0 for an empty
    /// batch.
    pub fn percentile_cycles(&self, pct: f64) -> u64 {
        if self.shots == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0 * self.shots as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &count) in self.cycle_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.min(self.max_cycles);
            }
        }
        self.max_cycles
    }

    /// [`LatencyStats::percentile_cycles`] in nanoseconds at `freq_mhz`.
    pub fn percentile_ns(&self, pct: f64, freq_mhz: f64) -> f64 {
        self.percentile_cycles(pct) as f64 * 1e3 / freq_mhz
    }

    /// Mean cycles over all shots (0 for an empty batch).
    pub fn mean_cycles(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.shots as f64
        }
    }

    /// Mean latency over all shots, in nanoseconds at the given frequency.
    pub fn mean_ns(&self, freq_mhz: f64) -> f64 {
        self.mean_cycles() * 1e3 / freq_mhz
    }

    /// Mean latency over shots with Hamming weight > 2.
    pub fn mean_nontrivial_ns(&self, freq_mhz: f64) -> f64 {
        if self.nontrivial_shots == 0 {
            0.0
        } else {
            self.total_cycles_nontrivial as f64 / self.nontrivial_shots as f64 * 1e3 / freq_mhz
        }
    }

    /// Worst-case latency in nanoseconds.
    pub fn max_ns(&self, freq_mhz: f64) -> f64 {
        self.max_cycles as f64 * 1e3 / freq_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_matches_paper() {
        // §5.4: 103 + 11 = 114 cycles for HW 10 → 456 ns at 250 MHz.
        let total = astrea_decode_cycles(10) + astrea_fetch_cycles(10);
        assert_eq!(total, 114);
        assert_eq!(CycleModel::default().to_ns(total), 456.0);
    }

    #[test]
    fn trivial_syndromes_are_free() {
        for hw in 0..=2 {
            assert_eq!(astrea_decode_cycles(hw) + astrea_fetch_cycles(hw), 0);
        }
    }

    #[test]
    fn decode_cycle_bands() {
        assert_eq!(astrea_decode_cycles(3), 1);
        assert_eq!(astrea_decode_cycles(6), 1);
        assert_eq!(astrea_decode_cycles(7), 11);
        assert_eq!(astrea_decode_cycles(8), 11);
        assert_eq!(astrea_decode_cycles(9), 103);
        assert_eq!(astrea_decode_cycles(10), 103);
    }

    #[test]
    #[should_panic(expected = "up to Hamming weight 10")]
    fn rejects_hw_beyond_10() {
        astrea_decode_cycles(11);
    }

    #[test]
    fn real_time_budget_is_250_cycles() {
        assert_eq!(CycleModel::default().cycles_within_ns(1000.0), 250);
    }

    #[test]
    fn latency_stats_track_means_max_and_histograms() {
        let mut s = LatencyStats::default();
        s.record(0, 0);
        s.record(4, 6);
        s.record(10, 114);
        assert_eq!(s.shots, 3);
        assert_eq!(s.nontrivial_shots, 2);
        assert_eq!(s.max_cycles, 114);
        assert_eq!(s.mean_ns(250.0), 160.0);
        assert_eq!(s.mean_nontrivial_ns(250.0), 240.0);
        assert_eq!(s.max_ns(250.0), 456.0);
        assert_eq!(s.hw_histogram()[0], 1);
        assert_eq!(s.hw_histogram()[4], 1);
        assert_eq!(s.hw_histogram()[10], 1);
        // 6 lands in [4, 8), 114 in [64, 128).
        assert_eq!(s.cycle_histogram()[0], 1);
        assert_eq!(s.cycle_histogram()[3], 1);
        assert_eq!(s.cycle_histogram()[7], 1);
    }

    #[test]
    fn record_many_equals_repeated_record() {
        let mut looped = LatencyStats::default();
        let mut bulk = LatencyStats::default();
        for (hw, cyc, count) in [(0usize, 0u64, 90u64), (1, 0, 5), (4, 6, 3), (10, 114, 1)] {
            for _ in 0..count {
                looped.record(hw, cyc);
            }
            bulk.record_many(hw, cyc, count);
        }
        bulk.record_many(7, 18, 0); // no-op: must not disturb max/histograms
        assert_eq!(bulk, looped);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LatencyStats::default();
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        for (i, &(hw, cyc)) in [(0, 0), (3, 1), (7, 18), (10, 114), (16, 250)]
            .iter()
            .enumerate()
        {
            all.record(hw, cyc);
            if i % 2 == 0 {
                a.record(hw, cyc)
            } else {
                b.record(hw, cyc)
            }
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn percentiles_bound_the_distribution() {
        let mut s = LatencyStats::default();
        for _ in 0..90 {
            s.record(0, 0);
        }
        for _ in 0..9 {
            s.record(4, 6);
        }
        s.record(10, 114);
        assert_eq!(s.percentile_cycles(50.0), 0);
        assert_eq!(s.percentile_cycles(90.0), 0);
        assert_eq!(s.percentile_cycles(95.0), 7); // bucket [4, 8) upper edge
        assert_eq!(s.percentile_cycles(100.0), 114); // exact: top bucket clamps to max
    }

    #[test]
    fn hw_tail_aggregates_into_last_bucket() {
        let mut s = LatencyStats::default();
        s.record(15, 1);
        s.record(40, 1);
        assert_eq!(s.hw_histogram()[HW_BUCKETS - 1], 2);
    }
}
