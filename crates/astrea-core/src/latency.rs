//! The hardware cycle and latency model (paper §5.4).

/// The paper's FPGA clock frequency in MHz.
pub const DEFAULT_FREQ_MHZ: f64 = 250.0;

/// Cycles Astrea spends fetching weights from the GWT into the weight
/// array: `HW + 1` (§5.4), e.g. 11 cycles for a Hamming-weight-10 syndrome.
pub fn astrea_fetch_cycles(hamming_weight: usize) -> u64 {
    if hamming_weight <= 2 {
        0 // Trivial syndromes are decoded without touching the weight array.
    } else {
        hamming_weight as u64 + 1
    }
}

/// Cycles Astrea's matcher spends after the fetch: 1 cycle for HW 3–6
/// (single HW6Decoder pass), 11 for HW 7–8 (7 pre-match accesses plus
/// pipeline overhead), 103 for HW 9–10 (63 accesses plus overhead), per
/// §5.4. Hamming weights 0–2 are trivial and free.
///
/// # Panics
///
/// Panics above Hamming weight 10 — Astrea does not decode such syndromes.
pub fn astrea_decode_cycles(hamming_weight: usize) -> u64 {
    match hamming_weight {
        0..=2 => 0,
        3..=6 => 1,
        7..=8 => 11,
        9..=10 => 103,
        _ => panic!("Astrea decodes only up to Hamming weight 10, got {hamming_weight}"),
    }
}

/// A decoder clock model for converting cycles to wall-clock latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl Default for CycleModel {
    fn default() -> CycleModel {
        CycleModel {
            freq_mhz: DEFAULT_FREQ_MHZ,
        }
    }
}

impl CycleModel {
    /// Nanoseconds per cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e3 / self.freq_mhz
    }

    /// Converts a cycle count to nanoseconds.
    pub fn to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.ns_per_cycle()
    }

    /// The number of whole cycles available within a real-time budget of
    /// `ns` nanoseconds (1 µs → 250 cycles at 250 MHz).
    pub fn cycles_within_ns(&self, ns: f64) -> u64 {
        (ns / self.ns_per_cycle()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_matches_paper() {
        // §5.4: 103 + 11 = 114 cycles for HW 10 → 456 ns at 250 MHz.
        let total = astrea_decode_cycles(10) + astrea_fetch_cycles(10);
        assert_eq!(total, 114);
        assert_eq!(CycleModel::default().to_ns(total), 456.0);
    }

    #[test]
    fn trivial_syndromes_are_free() {
        for hw in 0..=2 {
            assert_eq!(astrea_decode_cycles(hw) + astrea_fetch_cycles(hw), 0);
        }
    }

    #[test]
    fn decode_cycle_bands() {
        assert_eq!(astrea_decode_cycles(3), 1);
        assert_eq!(astrea_decode_cycles(6), 1);
        assert_eq!(astrea_decode_cycles(7), 11);
        assert_eq!(astrea_decode_cycles(8), 11);
        assert_eq!(astrea_decode_cycles(9), 103);
        assert_eq!(astrea_decode_cycles(10), 103);
    }

    #[test]
    #[should_panic(expected = "up to Hamming weight 10")]
    fn rejects_hw_beyond_10() {
        astrea_decode_cycles(11);
    }

    #[test]
    fn real_time_budget_is_250_cycles() {
        assert_eq!(CycleModel::default().cycles_within_ns(1000.0), 250);
    }
}
