//! Astrea and Astrea-G: practical real-time MWPM decoding for surface codes.
//!
//! This crate implements the Astrea paper's contributions as
//! cycle-modeled software equivalents of the proposed FPGA designs:
//!
//! * [`AstreaDecoder`] (§5) — brute-force MWPM for syndromes of Hamming
//!   weight ≤ 10, built from the combinational [`hw6`] block exactly like
//!   the hardware: HW 3–6 decode in one pass, HW 7–8 pre-match one pair
//!   (7 HW6 accesses), HW 9–10 pre-match two pairs (63 accesses). The cycle
//!   model reproduces the paper's 114-cycle worst case (456 ns at 250 MHz).
//! * [`AstreaGDecoder`] (§7) — the greedy pipeline for higher Hamming
//!   weights: a weight-threshold-filtered Local Weight Table, `F` priority
//!   queues of `E` pre-matchings scored by weight-per-matched-bit, a
//!   Fetch/Sort/Commit pipeline, and the HW6 block to finish each
//!   pre-matching, all under a 1 µs (250-cycle) real-time budget.
//! * [`LutDecoder`] (§2.3.2) — a LILLIPUT-style lookup-table decoder.
//! * [`CliqueDecoder`] (§2.3.4) — a Clique-style hierarchical pre-decoder
//!   with software-MWPM fallback.
//! * [`overheads`] — the storage and bandwidth models behind Tables 6–7.
//!
//! Bulk decoding runs through the [`batch`] engine (persistent
//! [`BatchDecoder`] worker pool) or, fastest, the streaming [`pipeline`]:
//! packed syndrome tiles flow from sampler producers over a bounded
//! channel into consumers that screen shots word-parallel ([`screen`])
//! and only materialize sparse detector lists for Hamming weight ≥ 3.
//!
//! ```
//! use astrea_core::{AstreaDecoder, AstreaGDecoder};
//! use decoding_graph::{Decoder, DecodingContext};
//! use qec_circuit::NoiseModel;
//! use surface_code::SurfaceCode;
//!
//! let code = SurfaceCode::new(3)?;
//! let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
//! let mut astrea = AstreaDecoder::new(ctx.gwt());
//! let p = astrea.decode(&[0, 1, 4, 5]);
//! assert!(p.latency_ns(250.0) <= 456.0);
//! # Ok::<(), surface_code::InvalidDistance>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod astrea;
mod astrea_g;
pub mod batch;
mod clique;
pub mod compression;
pub mod hw6;
mod latency;
mod lut;
pub mod overheads;
pub mod pipeline;
pub mod screen;

pub use astrea::{AstreaConfig, AstreaDecoder};
pub use astrea_g::{AstreaGConfig, AstreaGDecoder};
pub use batch::{
    decode_slice, shot_seed, BatchDecoder, BatchDecoderFactory, BatchResult, SliceOutcome,
    SyndromeBatch, SyndromeBatchBuilder,
};
pub use clique::CliqueDecoder;
pub use compression::SyndromeCompressor;
pub use latency::{
    astrea_decode_cycles, astrea_fetch_cycles, CycleModel, LatencyStats, CYCLE_BUCKETS,
    DEFAULT_FREQ_MHZ, HW_BUCKETS,
};
pub use lut::{lilliput_table_bytes, LutDecoder, MAX_LUT_BITS};
pub use pipeline::{
    consume_tiles, decode_tile, decode_tile_reference, decode_tile_with_predictions, tile_channel,
    PipelineCounters, StreamOutcome, TileQueue, TileScratch, DEFAULT_CHANNEL_DEPTH,
    DEFAULT_HARD_CACHE_ENTRIES, DEFAULT_TILE_WORDS,
};
pub use screen::{
    HardSyndromeCache, ScreenCache, TileScreen, HARD_CACHE_MAX_HW, HARD_CACHE_MIN_HW,
};
