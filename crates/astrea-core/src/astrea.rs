//! The Astrea brute-force decoder (paper §5).

use crate::hw6::{decode_hw6, winning_pairs};
use crate::latency::{astrea_decode_cycles, astrea_fetch_cycles};
use blossom_mwpm::MatchingSolution;
use decoding_graph::{Decoder, GlobalWeightTable, Prediction};

/// Configuration of the [`AstreaDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstreaConfig {
    /// Syndromes above this Hamming weight are not decoded (the paper's
    /// design point is 10; higher weights occur less often than the
    /// logical error rate at `d ≤ 7`, `p = 10⁻⁴` — Table 2).
    pub max_hamming_weight: usize,
}

impl Default for AstreaConfig {
    fn default() -> AstreaConfig {
        AstreaConfig {
            max_hamming_weight: 10,
        }
    }
}

/// A node in the active (to-be-matched) set: a fired detector, or the
/// virtual boundary node used to even out odd syndromes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Node {
    Real(u32),
    Boundary,
}

/// The active set of one decode call, with the paper's effective-weight
/// reduction: `w'ᵢⱼ = min(wᵢⱼ, bᵢ + bⱼ)` folds "match both to the
/// boundary" into pair selection, and one virtual boundary node absorbs
/// the odd detector. A perfect matching over these nodes under `w'` is
/// exactly a minimum-weight matching-with-boundary.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet<'a> {
    gwt: &'a GlobalWeightTable,
    pub(crate) nodes: Vec<Node>,
}

impl<'a> ActiveSet<'a> {
    pub(crate) fn new(gwt: &'a GlobalWeightTable, detectors: &[u32]) -> ActiveSet<'a> {
        let mut nodes: Vec<Node> = detectors.iter().map(|&d| Node::Real(d)).collect();
        if nodes.len() % 2 == 1 {
            nodes.push(Node::Boundary);
        }
        ActiveSet { gwt, nodes }
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Effective quantized weight between local node indices.
    pub(crate) fn weight(&self, i: usize, j: usize) -> u32 {
        match (self.nodes[i], self.nodes[j]) {
            (Node::Real(a), Node::Real(b)) => {
                let direct = self.gwt.pair_weight_q(a, b) as u32;
                let via =
                    self.gwt.boundary_weight_q(a) as u32 + self.gwt.boundary_weight_q(b) as u32;
                direct.min(via)
            }
            (Node::Real(a), Node::Boundary) | (Node::Boundary, Node::Real(a)) => {
                self.gwt.boundary_weight_q(a) as u32
            }
            (Node::Boundary, Node::Boundary) => 0,
        }
    }

    /// Observable parity of the effective pairing between local indices.
    pub(crate) fn obs(&self, i: usize, j: usize) -> u32 {
        match (self.nodes[i], self.nodes[j]) {
            (Node::Real(a), Node::Real(b)) => {
                let direct = self.gwt.pair_weight_q(a, b) as u32;
                let via =
                    self.gwt.boundary_weight_q(a) as u32 + self.gwt.boundary_weight_q(b) as u32;
                if direct <= via {
                    self.gwt.pair_obs(a, b)
                } else {
                    self.gwt.boundary_obs(a) ^ self.gwt.boundary_obs(b)
                }
            }
            (Node::Real(a), Node::Boundary) | (Node::Boundary, Node::Real(a)) => {
                self.gwt.boundary_obs(a)
            }
            (Node::Boundary, Node::Boundary) => 0,
        }
    }

    /// Restricts the active set to a subset of its local node indices
    /// (used by Astrea-G to hand the unmatched tail to the HW6 block).
    pub(crate) fn restrict(&self, indices: &[usize]) -> ActiveSet<'a> {
        ActiveSet {
            gwt: self.gwt,
            nodes: indices.iter().map(|&i| self.nodes[i]).collect(),
        }
    }

    /// Resolves an effective pairing of local indices into solution pairs
    /// and boundary assignments.
    pub(crate) fn resolve_into(&self, i: usize, j: usize, solution: &mut MatchingSolution) {
        match (self.nodes[i], self.nodes[j]) {
            (Node::Real(a), Node::Real(b)) => {
                let direct = self.gwt.pair_weight_q(a, b) as u32;
                let via =
                    self.gwt.boundary_weight_q(a) as u32 + self.gwt.boundary_weight_q(b) as u32;
                if direct <= via {
                    solution.pairs.push((a.min(b), a.max(b)));
                    solution.observables ^= self.gwt.pair_obs(a, b);
                    solution.weight += self.gwt.pair_weight(a, b);
                } else {
                    solution.to_boundary.push(a);
                    solution.to_boundary.push(b);
                    solution.observables ^= self.gwt.boundary_obs(a) ^ self.gwt.boundary_obs(b);
                    solution.weight += self.gwt.boundary_weight(a) + self.gwt.boundary_weight(b);
                }
            }
            (Node::Real(a), Node::Boundary) | (Node::Boundary, Node::Real(a)) => {
                solution.to_boundary.push(a);
                solution.observables ^= self.gwt.boundary_obs(a);
                solution.weight += self.gwt.boundary_weight(a);
            }
            (Node::Boundary, Node::Boundary) => {}
        }
    }
}

/// The Astrea real-time brute-force MWPM decoder (paper §5).
///
/// Mirrors the hardware exactly: the quantized GWT weights feed the
/// [`HW6Decoder`](crate::hw6) block directly for Hamming weights up to 6,
/// through one pre-match stage for weights 7–8 (7 HW6 accesses) and two
/// pre-match stages for weights 9–10 (63 accesses). Hamming weights 0–2
/// are trivial. Syndromes beyond [`AstreaConfig::max_hamming_weight`] are
/// *not* decoded ([`Prediction::deferred`] is set) — the paper shows they
/// are rarer than the logical error rate in Astrea's target regime.
#[derive(Debug, Clone)]
pub struct AstreaDecoder<'a> {
    gwt: &'a GlobalWeightTable,
    config: AstreaConfig,
}

impl<'a> AstreaDecoder<'a> {
    /// Creates a decoder with the paper's default design point.
    pub fn new(gwt: &'a GlobalWeightTable) -> AstreaDecoder<'a> {
        AstreaDecoder::with_config(gwt, AstreaConfig::default())
    }

    /// Creates a decoder with a custom configuration.
    pub fn with_config(gwt: &'a GlobalWeightTable, config: AstreaConfig) -> AstreaDecoder<'a> {
        AstreaDecoder { gwt, config }
    }

    /// The configured Hamming-weight ceiling.
    pub fn config(&self) -> AstreaConfig {
        self.config
    }

    /// Decodes a syndrome and returns the full matching. Returns `None` if
    /// the Hamming weight exceeds the decoder's ceiling.
    pub fn decode_full(&self, detectors: &[u32]) -> Option<MatchingSolution> {
        let hw = detectors.len();
        if hw > self.config.max_hamming_weight {
            return None;
        }
        if hw == 0 {
            return Some(MatchingSolution::default());
        }
        let set = ActiveSet::new(self.gwt, detectors);
        let (pairs, _) = best_matching(&set);
        let mut solution = MatchingSolution::default();
        for (i, j) in pairs {
            set.resolve_into(i, j, &mut solution);
        }
        Some(solution)
    }
}

/// Exhaustively finds the minimum effective-weight perfect matching over an
/// active set of 2–10 nodes, using the HW6 block exactly as the hardware
/// composes it. Returns the local-index pairs and the total weight.
pub(crate) fn best_matching(set: &ActiveSet<'_>) -> (Vec<(usize, usize)>, u32) {
    let n = set.len();
    let w = |i: usize, j: usize| set.weight(i, j);
    match n {
        2 | 4 | 6 => {
            let r = decode_hw6(n, w);
            (winning_pairs(n, r).to_vec(), r.weight)
        }
        8 => {
            // Pre-match node 0 with each candidate; HW6 the rest (7 accesses).
            let mut best: Option<(Vec<(usize, usize)>, u32)> = None;
            for c in 1..8 {
                let rest: Vec<usize> = (1..8).filter(|&x| x != c).collect();
                let r = decode_hw6(6, |a, b| w(rest[a], rest[b]));
                let total = w(0, c) + r.weight;
                if best.as_ref().is_none_or(|(_, bw)| total < *bw) {
                    let mut pairs = vec![(0, c)];
                    pairs.extend(winning_pairs(6, r).iter().map(|&(a, b)| (rest[a], rest[b])));
                    best = Some((pairs, total));
                }
            }
            best.expect("eight-node syndromes always have matchings")
        }
        10 => {
            // Two pre-match stages: 9 × 7 = 63 HW6 accesses.
            let mut best: Option<(Vec<(usize, usize)>, u32)> = None;
            for c1 in 1..10 {
                let rest1: Vec<usize> = (1..10).filter(|&x| x != c1).collect();
                let first = rest1[0];
                for c2 in &rest1[1..] {
                    let rest2: Vec<usize> =
                        rest1[1..].iter().copied().filter(|&x| x != *c2).collect();
                    let r = decode_hw6(6, |a, b| w(rest2[a], rest2[b]));
                    let total = w(0, c1) + w(first, *c2) + r.weight;
                    if best.as_ref().is_none_or(|(_, bw)| total < *bw) {
                        let mut pairs = vec![(0, c1), (first, *c2)];
                        pairs.extend(
                            winning_pairs(6, r)
                                .iter()
                                .map(|&(a, b)| (rest2[a], rest2[b])),
                        );
                        best = Some((pairs, total));
                    }
                }
            }
            best.expect("ten-node syndromes always have matchings")
        }
        _ => panic!("Astrea matcher handles 2–10 nodes, got {n}"),
    }
}

impl Decoder for AstreaDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        let hw = detectors.len();
        if hw > self.config.max_hamming_weight {
            // The paper's Astrea ignores such syndromes entirely.
            return Prediction {
                observables: 0,
                cycles: 0,
                deferred: true,
            };
        }
        let cycles = astrea_fetch_cycles(hw) + astrea_decode_cycles(hw);
        if hw == 0 {
            return Prediction::identity();
        }
        if hw <= 2 {
            // Trivial: a single effective pairing.
            let set = ActiveSet::new(self.gwt, detectors);
            return Prediction {
                observables: set.obs(0, 1),
                cycles,
                deferred: false,
            };
        }
        let set = ActiveSet::new(self.gwt, detectors);
        let mut observables = 0;
        let (pairs, _) = best_matching(&set);
        for (i, j) in pairs {
            observables ^= set.obs(i, j);
        }
        Prediction {
            observables,
            cycles,
            deferred: false,
        }
    }

    fn name(&self) -> &'static str {
        "Astrea"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_mwpm::subset_dp;
    use decoding_graph::DecodingContext;
    use qec_circuit::{DemSampler, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let ctx = ctx(3, 1e-3);
        let mut dec = AstreaDecoder::new(ctx.gwt());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn ignores_beyond_max_hamming_weight() {
        let ctx = ctx(5, 1e-3);
        let mut dec = AstreaDecoder::new(ctx.gwt());
        let dets: Vec<u32> = (0..11).collect();
        let p = dec.decode(&dets);
        assert!(p.deferred);
        assert_eq!(p.cycles, 0);
    }

    #[test]
    fn cycle_counts_follow_the_paper() {
        let ctx = ctx(5, 1e-3);
        let mut dec = AstreaDecoder::new(ctx.gwt());
        // (hw, expected cycles = fetch + decode)
        for (hw, expected) in [
            (1usize, 0u64),
            (2, 0),
            (3, 4 + 1),
            (4, 5 + 1),
            (6, 7 + 1),
            (7, 8 + 11),
            (8, 9 + 11),
            (9, 10 + 103),
            (10, 11 + 103),
        ] {
            let dets: Vec<u32> = (0..hw as u32).collect();
            let p = dec.decode(&dets);
            assert_eq!(p.cycles, expected, "hw={hw}");
            assert!(p.latency_ns(250.0) <= 456.0);
        }
    }

    #[test]
    fn matches_exact_dp_on_quantized_weights() {
        // The crux: Astrea's staged brute force is exact MWPM over the
        // quantized weight table, for every sampled syndrome it accepts.
        let ctx = ctx(5, 8e-3);
        let gwt = ctx.gwt();
        let dec = AstreaDecoder::new(gwt);
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(7);
        let mut checked = 0;
        for _ in 0..3000 {
            let shot = sampler.sample(&mut rng);
            let hw = shot.detectors.len();
            if hw == 0 || hw > 10 {
                continue;
            }
            let astrea = dec.decode_full(&shot.detectors).unwrap();
            let dets = &shot.detectors;
            let (_, dp_cost) = subset_dp::solve(
                hw,
                |i, j| {
                    let direct = gwt.pair_weight_q(dets[i], dets[j]) as f64;
                    let via = gwt.boundary_weight_q(dets[i]) as f64
                        + gwt.boundary_weight_q(dets[j]) as f64;
                    direct.min(via)
                },
                |i| gwt.boundary_weight_q(dets[i]) as f64,
            );
            // Recompute Astrea's weight in the same quantized units.
            let mut astrea_cost = 0.0;
            for &(a, b) in &astrea.pairs {
                astrea_cost += gwt.pair_weight_q(a, b) as f64;
            }
            for &a in &astrea.to_boundary {
                astrea_cost += gwt.boundary_weight_q(a) as f64;
            }
            assert_eq!(
                astrea_cost, dp_cost,
                "Astrea suboptimal on {dets:?} (hw {hw})"
            );
            assert!(astrea.is_perfect_over(dets));
            checked += 1;
        }
        assert!(checked > 300, "only {checked} syndromes checked");
    }

    #[test]
    fn agrees_with_quantized_mwpm_predictions() {
        // Predictions must agree with the quantized software MWPM in the
        // overwhelming majority of cases (ties may break differently).
        use blossom_mwpm::MwpmDecoder;
        let ctx = ctx(5, 5e-3);
        let mut astrea = AstreaDecoder::new(ctx.gwt());
        let mut mwpm = MwpmDecoder::with_quantized_weights(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(3);
        let (mut total, mut agree) = (0u32, 0u32);
        for _ in 0..2000 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.is_empty() || shot.detectors.len() > 10 {
                continue;
            }
            let a = astrea.decode(&shot.detectors);
            let m = mwpm.decode(&shot.detectors);
            total += 1;
            agree += (a.observables == m.observables) as u32;
        }
        assert!(total > 200);
        assert!(
            agree as f64 / total as f64 > 0.99,
            "agreement {agree}/{total}"
        );
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = AstreaDecoder::new(ctx.gwt());
        assert_eq!(dec.name(), "Astrea");
    }
}
