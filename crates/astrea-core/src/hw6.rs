//! The HW6Decoder combinational block (paper §5.2.3, Figure 7a) and the
//! perfect-matching enumeration tables behind it.
//!
//! The hardware loads the 15 pair weights of up to 6 syndrome bits into a
//! weight array and combines them through a 30-adder network into the 15
//! possible perfect matchings, selecting the minimum in one cycle. This
//! module mirrors that structure: fixed pairing tables plus a
//! minimum-selection pass.

/// The number of perfect matchings of `2k` nodes: `(2k)! / (2^k · k!)`.
///
/// ```
/// use astrea_core::hw6::num_perfect_matchings;
/// assert_eq!(num_perfect_matchings(4), 3);
/// assert_eq!(num_perfect_matchings(6), 15);
/// assert_eq!(num_perfect_matchings(8), 105);
/// assert_eq!(num_perfect_matchings(10), 945);
/// ```
pub fn num_perfect_matchings(n: usize) -> u64 {
    assert!(
        n.is_multiple_of(2),
        "perfect matchings need an even node count"
    );
    let mut r = 1u64;
    let mut k = n as u64;
    while k > 1 {
        r *= k - 1;
        k -= 2;
    }
    r
}

/// The 3 perfect matchings of 4 nodes, as index pairs.
pub const PAIRINGS_4: [[(usize, usize); 2]; 3] =
    [[(0, 1), (2, 3)], [(0, 2), (1, 3)], [(0, 3), (1, 2)]];

/// The 15 perfect matchings of 6 nodes, as index pairs.
///
/// Node 0 pairs with each of the five others; the remaining four nodes
/// contribute their 3 matchings each — exactly the structure of the
/// hardware's adder network.
pub const PAIRINGS_6: [[(usize, usize); 3]; 15] = [
    [(0, 1), (2, 3), (4, 5)],
    [(0, 1), (2, 4), (3, 5)],
    [(0, 1), (2, 5), (3, 4)],
    [(0, 2), (1, 3), (4, 5)],
    [(0, 2), (1, 4), (3, 5)],
    [(0, 2), (1, 5), (3, 4)],
    [(0, 3), (1, 2), (4, 5)],
    [(0, 3), (1, 4), (2, 5)],
    [(0, 3), (1, 5), (2, 4)],
    [(0, 4), (1, 2), (3, 5)],
    [(0, 4), (1, 3), (2, 5)],
    [(0, 4), (1, 5), (2, 3)],
    [(0, 5), (1, 2), (3, 4)],
    [(0, 5), (1, 3), (2, 4)],
    [(0, 5), (1, 4), (2, 3)],
];

/// Result of one HW6Decoder evaluation: the winning matching and its
/// aggregate weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hw6Result {
    /// Index into [`PAIRINGS_6`] (or [`PAIRINGS_4`] for 4 nodes) of the
    /// minimum-weight matching.
    pub matching_index: usize,
    /// Aggregate weight of the winning matching, in quantized sub-units.
    pub weight: u32,
}

/// Evaluates the HW6Decoder on up to 6 nodes: finds the minimum-weight
/// perfect matching given a pair-weight oracle over local node indices.
///
/// `n` must be 2, 4, or 6 (pad odd inputs with a virtual boundary node
/// before calling, as the enclosing decoders do).
///
/// # Panics
///
/// Panics if `n` is not 2, 4, or 6.
pub fn decode_hw6(n: usize, mut weight: impl FnMut(usize, usize) -> u32) -> Hw6Result {
    match n {
        2 => Hw6Result {
            matching_index: 0,
            weight: weight(0, 1),
        },
        4 => {
            let mut best = Hw6Result {
                matching_index: 0,
                weight: u32::MAX,
            };
            for (idx, pairs) in PAIRINGS_4.iter().enumerate() {
                let w = pairs.iter().map(|&(a, b)| weight(a, b)).sum();
                if w < best.weight {
                    best = Hw6Result {
                        matching_index: idx,
                        weight: w,
                    };
                }
            }
            best
        }
        6 => {
            let mut best = Hw6Result {
                matching_index: 0,
                weight: u32::MAX,
            };
            for (idx, pairs) in PAIRINGS_6.iter().enumerate() {
                let w = pairs.iter().map(|&(a, b)| weight(a, b)).sum();
                if w < best.weight {
                    best = Hw6Result {
                        matching_index: idx,
                        weight: w,
                    };
                }
            }
            best
        }
        _ => panic!("HW6Decoder handles 2, 4, or 6 nodes, got {n}"),
    }
}

/// The pairs of the winning matching for an [`Hw6Result`] over `n` nodes.
pub fn winning_pairs(n: usize, result: Hw6Result) -> &'static [(usize, usize)] {
    match n {
        2 => &[(0, 1)],
        4 => &PAIRINGS_4[result.matching_index],
        6 => &PAIRINGS_6[result.matching_index],
        _ => panic!("HW6Decoder handles 2, 4, or 6 nodes, got {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn matching_counts_match_equation_2() {
        // Paper equation (2): w!/(2^(w/2) · (w/2)!).
        assert_eq!(num_perfect_matchings(2), 1);
        assert_eq!(num_perfect_matchings(4), 3);
        assert_eq!(num_perfect_matchings(6), 15);
        assert_eq!(num_perfect_matchings(8), 105);
        assert_eq!(num_perfect_matchings(10), 945);
        assert_eq!(num_perfect_matchings(20), 654_729_075);
    }

    #[test]
    fn pairing_tables_are_valid_perfect_matchings() {
        let mut seen = BTreeSet::new();
        for m in &PAIRINGS_4 {
            let mut used = BTreeSet::new();
            for &(a, b) in m {
                assert!(a < b && b < 4);
                assert!(used.insert(a) && used.insert(b));
            }
            assert!(seen.insert(*m), "duplicate matching in PAIRINGS_4");
        }
        let mut seen = BTreeSet::new();
        for m in &PAIRINGS_6 {
            let mut used = BTreeSet::new();
            for &(a, b) in m {
                assert!(a < b && b < 6);
                assert!(used.insert(a) && used.insert(b));
            }
            assert_eq!(used.len(), 6);
            assert!(seen.insert(*m), "duplicate matching in PAIRINGS_6");
        }
    }

    #[test]
    fn decode_hw6_finds_planted_minimum() {
        // Plant a cheap matching and check it wins.
        for (target_idx, target) in PAIRINGS_6.iter().enumerate() {
            let result = decode_hw6(6, |a, b| {
                if target.contains(&(a.min(b), a.max(b))) {
                    1
                } else {
                    100
                }
            });
            assert_eq!(result.matching_index, target_idx);
            assert_eq!(result.weight, 3);
        }
    }

    #[test]
    fn decode_hw6_exhaustive_agrees_with_brute_force() {
        // Pseudo-random weights: the block must equal a brute-force min.
        for seed in 0..50u32 {
            let w = |a: usize, b: usize| {
                let (a, b) = (a.min(b) as u32, a.max(b) as u32);
                (a * 37 + b * 101 + seed * 7919) % 255 + 1
            };
            let result = decode_hw6(6, w);
            let brute = PAIRINGS_6
                .iter()
                .map(|m| m.iter().map(|&(a, b)| w(a, b)).sum::<u32>())
                .min()
                .unwrap();
            assert_eq!(result.weight, brute);
        }
    }

    #[test]
    fn decode_hw6_handles_two_and_four_nodes() {
        assert_eq!(decode_hw6(2, |_, _| 9).weight, 9);
        let r = decode_hw6(4, |a, b| {
            if (a, b) == (0, 2) || (a, b) == (1, 3) {
                1
            } else {
                50
            }
        });
        assert_eq!(r.weight, 2);
        assert_eq!(winning_pairs(4, r), &[(0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "HW6Decoder handles")]
    fn decode_hw6_rejects_odd_sizes() {
        decode_hw6(5, |_, _| 1);
    }
}
