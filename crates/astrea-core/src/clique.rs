//! A Clique-style hierarchical decoder (paper §2.3.4).
//!
//! The Clique decoder (Ravi et al.) splits error events in two: *trivial*
//! events — isolated single-error patterns — are corrected by a tiny local
//! pre-decoder in hardware, and everything else is deferred to a software
//! MWPM decoder. The paper criticizes this design on two counts that this
//! model reproduces: the deferred fraction is decoded off the real-time
//! path (dominating the critical path), and the local pre-decoder
//! occasionally misclassifies coincidentally adjacent errors, inflating
//! the logical error rate relative to pure MWPM.

use blossom_mwpm::MwpmDecoder;
use decoding_graph::{Decoder, GlobalWeightTable, MatchingGraph, Prediction};
use std::collections::HashMap;

/// The hierarchical Clique + software-MWPM decoder.
#[derive(Debug, Clone)]
pub struct CliqueDecoder<'a> {
    /// For each detector, its 1-hop neighbors and the connecting edge's
    /// observable mask.
    neighbors: Vec<Vec<(u32, u32)>>,
    /// Boundary-edge observable mask per detector, if it has one.
    boundary: Vec<Option<u32>>,
    fallback: MwpmDecoder<'a>,
}

impl<'a> CliqueDecoder<'a> {
    /// Builds the pre-decoder tables from the matching graph and wires the
    /// software MWPM fallback to the weight table.
    pub fn new(graph: &MatchingGraph, gwt: &'a GlobalWeightTable) -> CliqueDecoder<'a> {
        let n = graph.num_detectors();
        let mut neighbors = vec![Vec::new(); n];
        let mut boundary = vec![None; n];
        for e in graph.edges() {
            match e.v {
                Some(v) => {
                    neighbors[e.u as usize].push((v, e.observables));
                    neighbors[v as usize].push((e.u, e.observables));
                }
                None => boundary[e.u as usize] = Some(e.observables),
            }
        }
        CliqueDecoder {
            neighbors,
            boundary,
            fallback: MwpmDecoder::new(gwt),
        }
    }

    /// Attempts the local pre-decode. Returns the observable mask if every
    /// active detector is part of an unambiguous isolated event.
    fn predecode(&self, detectors: &[u32]) -> Option<u32> {
        let active: HashMap<u32, ()> = detectors.iter().map(|&d| (d, ())).collect();
        let mut obs = 0u32;
        let mut handled = vec![false; detectors.len()];
        for (idx, &d) in detectors.iter().enumerate() {
            if handled[idx] {
                continue;
            }
            // Active 1-hop neighbors of d.
            let active_nbrs: Vec<(u32, u32)> = self.neighbors[d as usize]
                .iter()
                .copied()
                .filter(|(v, _)| active.contains_key(v))
                .collect();
            match active_nbrs.len() {
                0 => {
                    // Isolated: must be a boundary-adjacent single error.
                    obs ^= self.boundary[d as usize]?;
                    handled[idx] = true;
                }
                1 => {
                    let (v, edge_obs) = active_nbrs[0];
                    // The partner must reciprocate exclusively.
                    let partner_nbrs = self.neighbors[v as usize]
                        .iter()
                        .filter(|(u, _)| active.contains_key(u))
                        .count();
                    if partner_nbrs != 1 {
                        return None;
                    }
                    let vidx = detectors.iter().position(|&x| x == v)?;
                    if handled[vidx] {
                        continue;
                    }
                    obs ^= edge_obs;
                    handled[idx] = true;
                    handled[vidx] = true;
                }
                _ => return None, // Ambiguous neighborhood: defer.
            }
        }
        Some(obs)
    }
}

impl Decoder for CliqueDecoder<'_> {
    fn decode(&mut self, detectors: &[u32]) -> Prediction {
        if detectors.is_empty() {
            return Prediction::identity();
        }
        if let Some(observables) = self.predecode(detectors) {
            return Prediction {
                observables,
                cycles: 1,
                deferred: false,
            };
        }
        // Hard event: defer to software MWPM (off the real-time path).
        let p = self.fallback.decode(detectors);
        Prediction {
            observables: p.observables,
            cycles: 0,
            deferred: true,
        }
    }

    fn name(&self) -> &'static str {
        "Clique+MWPM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decoding_graph::DecodingContext;
    use qec_circuit::{DemSampler, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> DecodingContext {
        let code = SurfaceCode::new(d).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p))
    }

    #[test]
    fn empty_syndrome_is_identity() {
        let ctx = ctx(3, 1e-3);
        let mut dec = CliqueDecoder::new(ctx.graph(), ctx.gwt());
        assert_eq!(dec.decode(&[]), Prediction::identity());
    }

    #[test]
    fn single_mechanism_syndromes_decode_locally_and_correctly() {
        let ctx = ctx(5, 1e-3);
        let mut dec = CliqueDecoder::new(ctx.graph(), ctx.gwt());
        for e in ctx.graph().edges() {
            let (dets, expected) = match e.v {
                Some(v) => (vec![e.u.min(v), e.u.max(v)], e.observables),
                None => (vec![e.u], e.observables),
            };
            let p = dec.decode(&dets);
            assert!(!p.deferred, "trivial event {dets:?} was deferred");
            assert_eq!(p.observables, expected, "wrong correction for {dets:?}");
            assert_eq!(p.cycles, 1);
        }
    }

    #[test]
    fn most_low_p_syndromes_avoid_the_fallback() {
        // At low physical error rate the pre-decoder handles the common
        // case, which is Clique's whole premise.
        let ctx = ctx(5, 1e-4);
        let mut dec = CliqueDecoder::new(ctx.graph(), ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(23);
        let (mut nonzero, mut local) = (0u32, 0u32);
        for _ in 0..20_000 {
            let shot = sampler.sample(&mut rng);
            if shot.detectors.is_empty() {
                continue;
            }
            nonzero += 1;
            local += !dec.decode(&shot.detectors).deferred as u32;
        }
        assert!(nonzero > 100);
        assert!(
            local as f64 / nonzero as f64 > 0.8,
            "only {local}/{nonzero} decoded locally"
        );
    }

    #[test]
    fn deferred_syndromes_agree_with_mwpm() {
        let ctx = ctx(5, 5e-3);
        let mut clique = CliqueDecoder::new(ctx.graph(), ctx.gwt());
        let mut mwpm = MwpmDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..500 {
            let shot = sampler.sample(&mut rng);
            let p = clique.decode(&shot.detectors);
            if p.deferred {
                assert_eq!(p.observables, mwpm.decode(&shot.detectors).observables);
            }
        }
    }

    #[test]
    fn decoder_name() {
        let ctx = ctx(3, 1e-3);
        let dec = CliqueDecoder::new(ctx.graph(), ctx.gwt());
        assert_eq!(dec.name(), "Clique+MWPM");
    }
}
