//! Streaming sampler→decoder pipeline over packed syndrome tiles.
//!
//! The barrier path (`sample → SyndromeBatch → decode`) materializes
//! every shot as a sparse detector list before any decoder runs, and
//! sampling finishes before decoding starts. This module streams instead:
//! producer threads emit fixed-size packed [`SyndromeTile`]s over a
//! bounded channel, and consumers pull tiles as they arrive, screen them
//! word-parallel (the bit-sliced adder of
//! [`TileScreen`](crate::screen::TileScreen), fused inline with
//! extraction into one pass over the packed columns), and only
//! build sparse lists for shots of Hamming weight ≥ 3 ([`decode_tile`]).
//! Sampling and decoding overlap end-to-end, and the ~99% of shots that
//! are trivial or HW ≤ 2 at low physical error rate never touch a batch
//! structure at all.
//!
//! # The packed easy tier
//!
//! Shots stay bit-packed *through decode*, not just through screening,
//! for every tier that admits it:
//!
//! * **Trivial** shots are popcounted; their failures read off a
//!   word-parallel OR of the observable rows.
//! * **HW-1 / HW-2** shots are decided per *distinct syndrome key per
//!   word*, not per lane: during the extraction sweep the lane mask
//!   `row(d)[w] & hw1_mask` names every shot of the word whose only
//!   fired detector is `d`, so one [`ScreenCache`] lookup covers them
//!   all. Predictions are accumulated as per-observable-bit planes and
//!   failures fall out of one XOR + popcount against the packed
//!   observable rows — no per-lane `actual` gather, no per-lane cache
//!   probe. The [`PipelineCounters`] `hw1_key_lookups`/`hw2_key_lookups`
//!   fields count the key resolutions so benches can see the dedup.
//! * **Closed forms (HW 3–4)** are grouped per tile by weight and
//!   dispatched through [`Decoder::decode_same_weight_batch`], which
//!   lets the MWPM decoder stage its weight-table gathers contiguously.
//! * The word sweeps themselves (ripple adder, observable OR-fold,
//!   bucket extraction) run over 4-word chunks (`[u64; 4]` lanes that
//!   stable rustc autovectorizes) with the `det.row(d)` slice hoisted
//!   out of the per-word loop.
//!
//! The per-lane path this replaces is retained as
//! [`decode_tile_reference`] and exercised by the differential tests:
//! both paths must agree bit-for-bit on predictions, accounting, and the
//! shot-partition counters.
//!
//! # Exactness
//!
//! The streamed path reproduces the barrier path *bit-identically*, for
//! every tile size, producer count, and consumer count:
//!
//! * tiles inherit the `column_seed` contract (see `qec_circuit::tiles`),
//!   so the sampled shot stream is one fixed function of `(seed, shot)`;
//! * every per-shot quantity the barrier path accounts (Hamming weight,
//!   predicted observables, modeled cycles, deferral) is reproduced
//!   exactly — trivial shots by word-parallel counting, HW ≤ 2 shots by
//!   replaying the decoder through a [`ScreenCache`], hard shots by the
//!   same `decode_with_scratch` call (batched closed forms must match it
//!   by the [`Decoder::decode_same_weight_batch`] contract);
//! * all accounting ([`StreamOutcome`], [`LatencyStats`]) is sums and
//!   maxima, so any interleaving of tiles across consumers merges to the
//!   same totals.
//!
//! Consumers share one [`TileQueue`], so a tile is decoded by whichever
//! worker is free — there is no static shot-to-worker assignment to
//! imbalance. The cost is that per-shot predictions are not returned in
//! order (use [`BatchDecoder::decode_batch`](crate::BatchDecoder) when
//! predictions matter); LER estimation only needs the totals.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};

use crate::latency::LatencyStats;
use crate::screen::{HardSyndromeCache, ScreenCache};
use decoding_graph::{
    DecodeScratch, Decoder, GraphPdStats, LocalWeightStats, OndemandStats, Prediction,
};
use qec_circuit::{BitTable, SyndromeTile};

/// Default tile size in packed words (8192 shots): large enough to
/// amortize channel traffic, small enough that a tile's detector table
/// stays cache-resident through screening and extraction.
pub const DEFAULT_TILE_WORDS: usize = 128;

/// Default bound on the tile channel: producers run at most this many
/// tiles ahead of the consumers, capping pipeline memory at
/// `depth + producers + consumers` tiles in flight.
pub const DEFAULT_CHANNEL_DEPTH: usize = 8;

/// Default per-worker capacity of the hard-syndrome prediction cache
/// (predictions, not bytes; ~40 bytes each). Sized to stay L2-resident.
/// On cold i.i.d. sampled streams distinct hard syndromes dominate and
/// hits stay near zero whatever the size — that is a workload property,
/// not a defect — but replayed, correlated, or long-running streams hit
/// in proportion to the retention window, so the default keeps 4k
/// predictions (≈4× the pre-widening size, matching the HW ≤ 10 band).
pub const DEFAULT_HARD_CACHE_ENTRIES: usize = 4096;

/// Largest Hamming weight the `MwpmDecoder` still routes to the subset
/// DP; everything above goes to blossom. Mirrors
/// [`blossom_mwpm::DP_NODE_LIMIT`] — the counters classify hard shots
/// by the band they land in.
const DP_BAND_MAX: usize = blossom_mwpm::DP_NODE_LIMIT;

/// Words per chunk of the widened sweeps: classification, observable
/// OR-fold, and extraction process `[u64; CHUNK_WORDS]` lanes at a time
/// (256 shots), sized so stable rustc autovectorizes the lane loops.
const CHUNK_WORDS: usize = 4;

/// Most-recently-used screen/hard-cache contexts a [`TileScratch`]
/// retains before evicting the coldest — bounds worker memory when a
/// service hosts many decoding contexts.
const MAX_SCREEN_CONTEXTS: usize = 8;

/// Per-stage shot counters for the screened decode path: how many shots
/// each stage of the hard-shot fast path absorbed.
///
/// Kept separate from [`LatencyStats`] / [`StreamOutcome`] on purpose:
/// those are part of the bit-identity contract between the streamed and
/// barrier paths (compared with `==` in tests and the harness), while
/// these counters describe *stages that only exist on the streamed
/// path*. They accumulate in the worker's [`TileScratch`] and are
/// summed across workers by the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineCounters {
    /// Shots classified by the word-parallel screen (every shot).
    pub shots_screened: u64,
    /// Shots with an all-zero syndrome (counted, never materialized).
    pub trivial_shots: u64,
    /// Shots decided by the HW-1 lookup cache.
    pub hw1_shots: u64,
    /// Shots decided by the HW-2 lookup cache.
    pub hw2_shots: u64,
    /// Hard shots (HW 3–4) decided by the GWT-direct closed form.
    pub closed_form_shots: u64,
    /// Hard shots served from the [`HardSyndromeCache`].
    pub hard_cache_hits: u64,
    /// Cacheable hard shots that missed and paid a real decode.
    pub hard_cache_misses: u64,
    /// Hard shots decoded by the subset DP band (HW 5..=11, cache
    /// misses included).
    pub dp_shots: u64,
    /// Hard shots beyond the DP band (HW ≥ 12), solved by the sparse
    /// scratch-reusing blossom solver on the arena path.
    pub sparse_blossom_shots: u64,
    /// Distinct HW-1 syndrome keys the packed easy tier resolved (one
    /// [`ScreenCache`] probe may cover many lanes of a word). Zero on
    /// the per-lane [`decode_tile_reference`] path; diagnostic only —
    /// excluded from the shot-partition identity.
    pub hw1_key_lookups: u64,
    /// Distinct HW-2 `(first, second)` detector-pair keys the packed
    /// easy tier resolved. Zero on the per-lane reference path.
    pub hw2_key_lookups: u64,
    /// Work counters of the on-demand deep-tail staging engine
    /// (GWT-free backends only; idle on the GWT path). Diagnostic —
    /// excluded from the shot-partition identity.
    pub ondemand: OndemandStats,
    /// Work counters of the local weight provider's staged path
    /// (GWT-free backends only; idle on the GWT path). Diagnostic —
    /// excluded from the shot-partition identity.
    pub local_weights: LocalWeightStats,
    /// Work counters of the opt-in graph-native primal-dual deep-tail
    /// engine (idle unless `DeepBackend::GraphPd` is selected on a
    /// GWT-free backend). Diagnostic — excluded from the shot-partition
    /// identity.
    pub graphpd: GraphPdStats,
}

impl PipelineCounters {
    /// Folds another worker's counters in (order-independent).
    pub fn merge(&mut self, other: &PipelineCounters) {
        self.shots_screened += other.shots_screened;
        self.trivial_shots += other.trivial_shots;
        self.hw1_shots += other.hw1_shots;
        self.hw2_shots += other.hw2_shots;
        self.closed_form_shots += other.closed_form_shots;
        self.hard_cache_hits += other.hard_cache_hits;
        self.hard_cache_misses += other.hard_cache_misses;
        self.dp_shots += other.dp_shots;
        self.sparse_blossom_shots += other.sparse_blossom_shots;
        self.hw1_key_lookups += other.hw1_key_lookups;
        self.hw2_key_lookups += other.hw2_key_lookups;
        self.ondemand.merge(&other.ondemand);
        self.local_weights.merge(&other.local_weights);
        self.graphpd.merge(&other.graphpd);
    }

    /// The nine shot-accounting fields as one array — everything except
    /// the packed-path key-resolution diagnostics. The packed and
    /// per-lane reference paths must agree on exactly these.
    pub fn shot_partition(&self) -> [u64; 9] {
        [
            self.shots_screened,
            self.trivial_shots,
            self.hw1_shots,
            self.hw2_shots,
            self.closed_form_shots,
            self.hard_cache_hits,
            self.hard_cache_misses,
            self.dp_shots,
            self.sparse_blossom_shots,
        ]
    }

    /// Sum of the per-tier shot counters; equals [`shots_screened`]
    /// (`dp_shots` already includes the hard-cache misses, so misses are
    /// not added separately).
    ///
    /// [`shots_screened`]: PipelineCounters::shots_screened
    pub fn tier_sum(&self) -> u64 {
        self.trivial_shots
            + self.hw1_shots
            + self.hw2_shots
            + self.closed_form_shots
            + self.hard_cache_hits
            + self.dp_shots
            + self.sparse_blossom_shots
    }
}

/// Creates the bounded tile channel connecting producers to consumers.
pub fn tile_channel(depth: usize) -> (SyncSender<SyndromeTile>, Receiver<SyndromeTile>) {
    mpsc::sync_channel(depth.max(1))
}

/// The consumer end of a tile channel, shareable across decode workers.
///
/// Workers pull tiles whenever they finish one — dynamic load balancing
/// with no assignment step. The queue yields `None` once every producer
/// has dropped its sender and the channel drained.
#[derive(Clone)]
pub struct TileQueue {
    shared: Arc<Mutex<Receiver<SyndromeTile>>>,
}

impl TileQueue {
    /// Wraps a channel receiver for shared consumption.
    pub fn new(tiles: Receiver<SyndromeTile>) -> TileQueue {
        TileQueue {
            shared: Arc::new(Mutex::new(tiles)),
        }
    }

    /// Blocks for the next tile; `None` when the stream is exhausted.
    pub fn next_tile(&self) -> Option<SyndromeTile> {
        self.shared.lock().expect("tile queue poisoned").recv().ok()
    }
}

/// The accounting produced by streaming tiles through a decoder: exactly
/// the totals `estimate_ler` needs, without per-shot predictions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Latency statistics over every consumed shot (trivial included).
    pub stats: LatencyStats,
    /// Shots whose predicted observable mask missed the actual one.
    pub failures: u64,
    /// Shots the decoder declined to decode in real time.
    pub deferred: u64,
}

impl StreamOutcome {
    /// Folds another partial outcome in (order-independent).
    pub fn merge(&mut self, other: &StreamOutcome) {
        self.stats.merge(&other.stats);
        self.failures += other.failures;
        self.deferred += other.deferred;
    }
}

/// One hard shot staged for HW-sorted dispatch: its detector list lives
/// in the scratch's flat arena at `dets_start..dets_start + hw`,
/// `actual` is the shot's true observable-flip mask, and `shot` is its
/// index within the tile (for routing per-shot predictions).
#[derive(Debug, Clone, Copy)]
struct HardShot {
    dets_start: u32,
    hw: u32,
    actual: u32,
    shot: u32,
}

/// Number of Hamming-weight dispatch buckets; the last one collects the
/// whole tail.
const HW_DISPATCH_BUCKETS: usize = 16;

/// One warm decoding context in a [`TileScratch`]: the lazy HW ≤ 2
/// [`ScreenCache`] and the bounded [`HardSyndromeCache`], keyed by the
/// detector count they were built for.
#[derive(Debug)]
struct ScreenContext {
    cache: ScreenCache,
    hard_cache: HardSyndromeCache,
}

/// Reusable per-worker scratch for tile decoding: the per-detector-count
/// [`ScreenCache`] + [`HardSyndromeCache`] contexts (kept warm in an MRU
/// list, so a service hosting several distances does not rebuild caches
/// on every context switch), the flat hard-shot staging arena, the
/// closed-form batch buffers, and the per-stage [`PipelineCounters`].
/// (Screening itself is fused into [`decode_tile`]'s word loop and needs
/// no buffers — see [`TileScreen`](crate::screen::TileScreen) for the
/// standalone reference implementation.)
///
/// Keep one per consumer thread; the caches warm and the counters
/// accumulate across tiles and batches.
#[derive(Debug)]
pub struct TileScratch {
    /// Warm screen/hard-cache contexts, most recently used first.
    contexts: Vec<ScreenContext>,
    hard_cache_entries: usize,
    /// Per-lane detector lists for the chunk being extracted
    /// (`CHUNK_WORDS × 64` lanes).
    buckets: Vec<Vec<u32>>,
    /// Flat arena of hard-shot detector lists for the tile in flight —
    /// one growable buffer reused across words and tiles instead of
    /// per-word allocations.
    hard_dets: Vec<u32>,
    /// Hard shots staged for dispatch, indexing into `hard_dets`.
    hard_shots: Vec<HardShot>,
    /// Dispatch order: indices into `hard_shots`, bucketed by Hamming
    /// weight so same-weight shots decode back-to-back.
    by_hw: Vec<Vec<u32>>,
    /// Concatenated same-weight detector lists staged for one
    /// [`Decoder::decode_same_weight_batch`] call.
    cf_dets: Vec<u32>,
    /// Prediction slots for the staged closed-form batch.
    cf_preds: Vec<Prediction>,
    counters: PipelineCounters,
    /// Weight-backend counter totals at the last harvest: the decoder
    /// and decode scratch accumulate across the worker's whole life, so
    /// each tile's contribution is the delta against these snapshots.
    last_ondemand: OndemandStats,
    last_local: LocalWeightStats,
    last_graphpd: GraphPdStats,
}

impl Default for TileScratch {
    fn default() -> TileScratch {
        TileScratch::with_hard_cache(DEFAULT_HARD_CACHE_ENTRIES)
    }
}

impl TileScratch {
    /// Empty scratch; buffers and caches size to the first tile decoded.
    pub fn new() -> TileScratch {
        TileScratch::default()
    }

    /// Empty scratch whose hard-syndrome cache holds at most `entries`
    /// predictions (0 disables it).
    pub fn with_hard_cache(entries: usize) -> TileScratch {
        TileScratch {
            contexts: Vec::new(),
            hard_cache_entries: entries,
            buckets: Vec::new(),
            hard_dets: Vec::new(),
            hard_shots: Vec::new(),
            by_hw: Vec::new(),
            cf_dets: Vec::new(),
            cf_preds: Vec::new(),
            counters: PipelineCounters::default(),
            last_ondemand: OndemandStats::default(),
            last_local: LocalWeightStats::default(),
            last_graphpd: GraphPdStats::default(),
        }
    }

    /// The warmed HW ≤ 2 prediction cache of the most recently decoded
    /// context (`None` before the first tile).
    pub fn cache(&self) -> Option<&ScreenCache> {
        self.contexts.first().map(|c| &c.cache)
    }

    /// Warm contexts currently retained (one per distinct detector
    /// count seen, capped at an internal MRU bound).
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Per-stage counters accumulated over every tile this scratch
    /// decoded.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// Moves the context for `num_detectors` to the front of the MRU
    /// list, creating it on first sight and evicting the coldest beyond
    /// [`MAX_SCREEN_CONTEXTS`].
    fn touch_context(&mut self, num_detectors: usize) {
        match self
            .contexts
            .iter()
            .position(|c| c.cache.num_detectors() == num_detectors)
        {
            Some(0) => {}
            Some(p) => {
                let ctx = self.contexts.remove(p);
                self.contexts.insert(0, ctx);
            }
            None => {
                self.contexts.insert(
                    0,
                    ScreenContext {
                        cache: ScreenCache::new(num_detectors),
                        hard_cache: HardSyndromeCache::new(self.hard_cache_entries, num_detectors),
                    },
                );
                self.contexts.truncate(MAX_SCREEN_CONTEXTS);
            }
        }
    }
}

/// Screens and decodes one packed tile, folding the accounting into
/// `out`.
///
/// Classification and extraction are **fused into one pass over the
/// packed columns**, widened to [`CHUNK_WORDS`]-word chunks: per chunk,
/// a register-resident bit-sliced ripple add over `[u64; 4]` lanes
/// classifies 256 shots by Hamming weight (the same adder as
/// [`TileScreen`](crate::screen::TileScreen), without its buffers), and
/// the extraction micro-sweep immediately re-reads the same columns —
/// still L1-hot — with the `det.row(d)` slice hoisted out of the word
/// loop. Trivial shots are popcounted (their failures read off a
/// word-level observable OR) without being materialized.
///
/// HW ≤ 2 shots never leave the packed domain: each distinct syndrome
/// key is resolved once per word through the scratch's [`ScreenCache`]
/// and applied to its whole lane mask, with failures accumulated as
/// per-observable-bit prediction planes XORed against the packed
/// observable rows (see the module docs). HW ≥ 3 shots are staged into
/// a flat arena and dispatched *after* the sweep in ascending
/// Hamming-weight order: HW 3–4 as per-weight batches through
/// [`Decoder::decode_same_weight_batch`], cacheable DP weights through
/// the [`HardSyndromeCache`], then the deep tail.
///
/// Every prediction still comes from the decoder itself (caches only
/// replay it, batches must match `decode_with_scratch` by contract) and
/// all accounting is sums and maxima, so the result is bit-identical to
/// pushing the tile through a [`SyndromeBatch`](crate::SyndromeBatch)
/// and [`decode_slice`](crate::batch::decode_slice) — dispatch order and
/// cache hits never show through. The per-lane
/// [`decode_tile_reference`] path checks this in the differential
/// tests.
pub fn decode_tile(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
) {
    decode_tile_inner(decoder, scratch, tile_scratch, tile, out, None);
}

/// [`decode_tile`], additionally writing each shot's [`Prediction`] into
/// `predictions` by its index within the tile — the serving path's entry
/// point, where callers need per-shot corrections routed back to clients
/// rather than aggregate totals only.
///
/// Trivial shots receive [`Prediction::identity`]; every other slot is
/// the decoder's own prediction (caches only replay it), so
/// `predictions[i]` is bit-identical to what
/// [`decode_slice`](crate::batch::decode_slice) would have produced for
/// the same shot. Packed HW ≤ 2 tiers fan one per-key resolution out to
/// every matching lane's slot. The aggregate accounting in `out` is
/// unchanged from [`decode_tile`].
///
/// # Panics
///
/// Panics if `predictions.len() != tile.num_shots()`.
pub fn decode_tile_with_predictions(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
    predictions: &mut [Prediction],
) {
    assert_eq!(
        predictions.len(),
        tile.num_shots(),
        "prediction buffer does not match tile shot count"
    );
    decode_tile_inner(decoder, scratch, tile_scratch, tile, out, Some(predictions));
}

fn decode_tile_inner(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
    mut predictions: Option<&mut [Prediction]>,
) {
    let det = tile.detectors();
    let obs = tile.observables();
    if tile.num_shots() == 0 {
        return;
    }
    tile_scratch.touch_context(det.num_bits());
    let TileScratch {
        contexts,
        buckets,
        hard_dets,
        hard_shots,
        by_hw,
        cf_dets,
        cf_preds,
        counters,
        last_ondemand,
        last_local,
        last_graphpd,
        ..
    } = tile_scratch;
    let ScreenContext { cache, hard_cache } = &mut contexts[0];
    buckets.resize_with(CHUNK_WORDS * 64, Vec::new);
    by_hw.resize_with(HW_DISPATCH_BUCKETS, Vec::new);
    hard_dets.clear();
    hard_shots.clear();
    for bucket in by_hw.iter_mut() {
        bucket.clear();
    }
    counters.shots_screened += tile.num_shots() as u64;

    let words = det.num_words();
    let mut c = 0;
    while c < words {
        let len = (words - c).min(CHUNK_WORDS);
        decode_chunk(
            decoder,
            scratch,
            cache,
            buckets,
            hard_dets,
            hard_shots,
            by_hw,
            counters,
            out,
            &mut predictions,
            det,
            obs,
            c,
            len,
        );
        c += len;
    }

    // Hard dispatch, one Hamming-weight band at a time.
    for (band, bucket) in by_hw.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        if band <= 4 {
            // GWT-direct closed forms, batched: every shot in this band
            // has exactly `band` detectors (the bucket index saturates
            // only at the tail band), so one same-weight batch call lets
            // the decoder stage its weight gathers contiguously.
            let k = band;
            cf_dets.clear();
            for &idx in bucket.iter() {
                let shot = &hard_shots[idx as usize];
                cf_dets.extend_from_slice(&hard_dets[shot.dets_start as usize..][..k]);
            }
            cf_preds.clear();
            cf_preds.resize(bucket.len(), Prediction::identity());
            decoder.decode_same_weight_batch(k, cf_dets, cf_preds, scratch);
            counters.closed_form_shots += bucket.len() as u64;
            for (&idx, &p) in bucket.iter().zip(cf_preds.iter()) {
                let shot = hard_shots[idx as usize];
                if let Some(preds) = predictions.as_deref_mut() {
                    preds[shot.shot as usize] = p;
                }
                out.stats.record(k, p.cycles);
                out.deferred += u64::from(p.deferred);
                out.failures += u64::from(p.observables != shot.actual);
            }
            continue;
        }
        for &idx in bucket.iter() {
            let shot = hard_shots[idx as usize];
            let k = shot.hw as usize;
            let dets = &hard_dets[shot.dets_start as usize..shot.dets_start as usize + k];
            let p = if hard_cache.caches(k) {
                let (p, hit) = hard_cache.get_or_decode(dets, decoder, scratch);
                if hit {
                    counters.hard_cache_hits += 1;
                } else {
                    counters.hard_cache_misses += 1;
                    counters.dp_shots += 1;
                }
                p
            } else {
                if k <= DP_BAND_MAX {
                    counters.dp_shots += 1;
                } else {
                    counters.sparse_blossom_shots += 1;
                }
                decoder.decode_with_scratch(dets, scratch)
            };
            if let Some(preds) = predictions.as_deref_mut() {
                preds[shot.shot as usize] = p;
            }
            out.stats.record(k, p.cycles);
            out.deferred += u64::from(p.deferred);
            out.failures += u64::from(p.observables != shot.actual);
        }
    }

    // Attribute the weight-backend work this tile triggered: the decode
    // scratch and the decoder's provider count cumulatively across the
    // worker's life, so the tile's share is the delta since the last
    // harvest.
    let od = scratch.ondemand.stats;
    counters.ondemand.merge(&od.delta_since(last_ondemand));
    *last_ondemand = od;
    let gp = scratch.graphpd.stats;
    counters.graphpd.merge(&gp.delta_since(last_graphpd));
    *last_graphpd = gp;
    if let Some(lw) = decoder.local_weight_stats() {
        counters.local_weights.merge(&lw.delta_since(last_local));
        *last_local = lw;
    }
}

/// Screens and decodes one `len ≤ CHUNK_WORDS`-word chunk of a tile:
/// wide classification, packed easy-tier resolution, hard-shot staging.
#[allow(clippy::too_many_arguments)]
fn decode_chunk(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    cache: &mut ScreenCache,
    buckets: &mut [Vec<u32>],
    hard_dets: &mut Vec<u32>,
    hard_shots: &mut Vec<HardShot>,
    by_hw: &mut [Vec<u32>],
    counters: &mut PipelineCounters,
    out: &mut StreamOutcome,
    predictions: &mut Option<&mut [Prediction]>,
    det: &BitTable,
    obs: &BitTable,
    c: usize,
    len: usize,
) {
    debug_assert!((1..=CHUNK_WORDS).contains(&len));
    let num_dets = det.num_bits();
    let num_obs = obs.num_bits();

    // Wide classification: one register-resident bit-sliced 2-bit
    // ripple add over the chunk's detector columns, all lanes at once.
    // This is the only cache-cold traversal of the columns — the
    // extraction sweep below rereads them from L1.
    let mut ones = [0u64; CHUNK_WORDS];
    let mut twos = [0u64; CHUNK_WORDS];
    let mut fours = [0u64; CHUNK_WORDS];
    if len == CHUNK_WORDS {
        // Full chunks take the fixed-width path so the lane loop
        // autovectorizes; the ragged tail below is at most one chunk.
        for d in 0..num_dets {
            let bits = <&[u64; CHUNK_WORDS]>::try_from(&det.row(d)[c..c + CHUNK_WORDS]).unwrap();
            for i in 0..CHUNK_WORDS {
                let carry1 = ones[i] & bits[i];
                ones[i] ^= bits[i];
                let carry2 = twos[i] & carry1;
                twos[i] ^= carry1;
                fours[i] |= carry2;
            }
        }
    } else {
        for d in 0..num_dets {
            for (i, &bits) in det.row(d)[c..c + len].iter().enumerate() {
                let carry1 = ones[i] & bits;
                ones[i] ^= bits;
                let carry2 = twos[i] & carry1;
                twos[i] ^= carry1;
                fours[i] |= carry2;
            }
        }
    }

    // Word-parallel observable OR-fold, chunk-wide: a trivial shot fails
    // iff any observable flipped with no syndrome.
    let mut obs_any = [0u64; CHUNK_WORDS];
    if len == CHUNK_WORDS {
        for b in 0..num_obs {
            let bits = <&[u64; CHUNK_WORDS]>::try_from(&obs.row(b)[c..c + CHUNK_WORDS]).unwrap();
            for i in 0..CHUNK_WORDS {
                obs_any[i] |= bits[i];
            }
        }
    } else {
        for b in 0..num_obs {
            for (i, &bits) in obs.row(b)[c..c + len].iter().enumerate() {
                obs_any[i] |= bits;
            }
        }
    }

    // Per-word tier masks, trivial accounting, and hard-bucket reset.
    let mut hw1 = [0u64; CHUNK_WORDS];
    let mut hw2 = [0u64; CHUNK_WORDS];
    let mut hard = [0u64; CHUNK_WORDS];
    let mut sweep = [0u64; CHUNK_WORDS];
    let mut need_sweep = false;
    for i in 0..len {
        let valid = det.valid_lanes(c + i);
        let nonzero = (ones[i] | twos[i] | fours[i]) & valid;
        hw1[i] = ones[i] & !twos[i] & !fours[i] & valid;
        hw2[i] = twos[i] & !ones[i] & !fours[i] & valid;
        hard[i] = nonzero & !hw1[i] & !hw2[i];
        sweep[i] = nonzero;
        need_sweep |= nonzero != 0;

        let trivial = !nonzero & valid;
        let tcount = u64::from(trivial.count_ones());
        out.stats.record_many(0, 0, tcount);
        out.failures += u64::from((trivial & obs_any[i]).count_ones());
        counters.trivial_shots += tcount;
        if let Some(preds) = predictions.as_deref_mut() {
            let mut m = trivial;
            while m != 0 {
                preds[(c + i) * 64 + m.trailing_zeros() as usize] = Prediction::identity();
                m &= m - 1;
            }
        }
        let mut m = hard[i];
        while m != 0 {
            buckets[i * 64 + m.trailing_zeros() as usize].clear();
            m &= m - 1;
        }
    }
    if !need_sweep {
        return;
    }

    // Packed easy-tier state for the sweep: per-observable-bit
    // prediction planes, and the first-detector memo for HW-2 lanes.
    let mut planes = [[0u64; 32]; CHUNK_WORDS];
    let mut hw2_seen = [0u64; CHUNK_WORDS];
    let mut hw2_first = [[0u32; 64]; CHUNK_WORDS];

    // Fused extraction + packed easy resolution: one AND sweep over the
    // detector rows, the whole chunk per row read, row slice hoisted.
    for d in 0..num_dets {
        let row = &det.row(d)[c..c + len];
        let mut any = 0u64;
        for (i, &bits) in row.iter().enumerate() {
            any |= bits & sweep[i];
        }
        if any == 0 {
            continue;
        }
        for (i, &bits) in row.iter().enumerate() {
            // Hard lanes: collect this detector into their buckets.
            let mut mh = bits & hard[i];
            while mh != 0 {
                buckets[i * 64 + mh.trailing_zeros() as usize].push(d as u32);
                mh &= mh - 1;
            }

            // HW-1 lanes firing d have syndrome exactly {d}: resolve the
            // key once, apply to the whole lane group.
            let m1 = bits & hw1[i];
            if m1 != 0 {
                let p = cache.single(d as u32, decoder, scratch);
                counters.hw1_key_lookups += 1;
                counters.hw1_shots += u64::from(m1.count_ones());
                apply_packed_prediction(p, m1, 1, c + i, &mut planes[i], out, predictions);
            }

            // HW-2 lanes: the first detector seen per lane is memoized;
            // when the second (this `d`) arrives, lanes sharing the same
            // first detector form one group with syndrome {first, d} —
            // `row(first)` restricted to the finished lanes names the
            // group, because a finished lane's bits are exactly its two
            // detectors.
            let m2 = bits & hw2[i];
            if m2 != 0 {
                let newly = m2 & !hw2_seen[i];
                let mut t = newly;
                while t != 0 {
                    hw2_first[i][t.trailing_zeros() as usize] = d as u32;
                    t &= t - 1;
                }
                hw2_seen[i] |= newly;
                let mut done = m2 & !newly;
                while done != 0 {
                    let lane = done.trailing_zeros() as usize;
                    let a = hw2_first[i][lane];
                    // Group membership needs a random row(first) load;
                    // skip it when this lane is the only candidate.
                    let group = if done & (done - 1) == 0 {
                        done
                    } else {
                        det.row(a as usize)[c + i] & done
                    };
                    let p = cache.pair(a, d as u32, decoder, scratch);
                    counters.hw2_key_lookups += 1;
                    counters.hw2_shots += u64::from(group.count_ones());
                    apply_packed_prediction(p, group, 2, c + i, &mut planes[i], out, predictions);
                    done &= !group;
                }
            }
        }
    }

    // Easy-tier failure accounting, word-parallel: a lane fails iff any
    // observable bit of its applied prediction disagrees with the packed
    // actual row — one XOR + popcount per plane, no per-lane gather.
    // Hard lanes then stage per-lane as before, in (word, lane) order so
    // the hard-cache access pattern is unchanged.
    for i in 0..len {
        let easy = hw1[i] | hw2[i];
        if easy != 0 {
            let mut mismatch = 0u64;
            for (b, plane) in planes[i].iter().enumerate() {
                let actual = if b < num_obs { obs.word(b, c + i) } else { 0 };
                mismatch |= plane ^ actual;
            }
            // Observables beyond the plane width can never be predicted;
            // any actual flip there is a mismatch (unreachable for real
            // codes — Prediction caps observables at 32 bits).
            for b in 32..num_obs {
                mismatch |= obs.word(b, c + i);
            }
            out.failures += u64::from((mismatch & easy).count_ones());
        }

        let mut m = hard[i];
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let dets = &buckets[i * 64 + lane];
            let mut actual = 0u32;
            for b in 0..num_obs {
                actual |= ((obs.word(b, c + i) >> lane & 1) as u32) << b;
            }
            let start = hard_dets.len() as u32;
            hard_dets.extend_from_slice(dets);
            by_hw[dets.len().min(HW_DISPATCH_BUCKETS - 1)].push(hard_shots.len() as u32);
            hard_shots.push(HardShot {
                dets_start: start,
                hw: dets.len() as u32,
                actual,
                shot: ((c + i) * 64 + lane) as u32,
            });
        }
    }
}

/// Applies one resolved easy-tier prediction to every lane in `group`
/// of tile word `word`: accounting by lane count, observable bits
/// scattered into the word's prediction planes, and (when routing
/// per-shot predictions) one store per lane.
fn apply_packed_prediction(
    p: Prediction,
    group: u64,
    hw: usize,
    word: usize,
    planes: &mut [u64; 32],
    out: &mut StreamOutcome,
    predictions: &mut Option<&mut [Prediction]>,
) {
    let n = u64::from(group.count_ones());
    out.stats.record_many(hw, p.cycles, n);
    out.deferred += u64::from(p.deferred) * n;
    let mut ob = p.observables;
    while ob != 0 {
        planes[ob.trailing_zeros() as usize] |= group;
        ob &= ob - 1;
    }
    if let Some(preds) = predictions.as_deref_mut() {
        let mut m = group;
        while m != 0 {
            preds[word * 64 + m.trailing_zeros() as usize] = p;
            m &= m - 1;
        }
    }
}

/// The per-lane reference implementation of [`decode_tile`] /
/// [`decode_tile_with_predictions`] (pass `None` / `Some` predictions):
/// one word at a time, every nontrivial shot peeled into its own
/// bucket, every easy shot resolved by its own cache probe, every
/// closed form decoded by its own `decode_with_scratch` call.
///
/// This is the pre-packing decode path, kept as the differential oracle:
/// the packed path must reproduce its predictions, [`StreamOutcome`],
/// and shot-partition counters bit-for-bit (only the `*_key_lookups`
/// diagnostics differ — they stay zero here). It shares the
/// [`TileScratch`] caches, so mixing the two paths on one worker is
/// also exact. Not used on any hot path.
pub fn decode_tile_reference(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
    mut predictions: Option<&mut [Prediction]>,
) {
    if let Some(preds) = predictions.as_deref_mut() {
        assert_eq!(
            preds.len(),
            tile.num_shots(),
            "prediction buffer does not match tile shot count"
        );
    }
    let det = tile.detectors();
    let obs = tile.observables();
    if tile.num_shots() == 0 {
        return;
    }
    tile_scratch.touch_context(det.num_bits());
    let TileScratch {
        contexts,
        buckets,
        hard_dets,
        hard_shots,
        by_hw,
        counters,
        last_ondemand,
        last_local,
        last_graphpd,
        ..
    } = tile_scratch;
    let ScreenContext { cache, hard_cache } = &mut contexts[0];
    buckets.resize_with(CHUNK_WORDS * 64, Vec::new);
    by_hw.resize_with(HW_DISPATCH_BUCKETS, Vec::new);
    hard_dets.clear();
    hard_shots.clear();
    for bucket in by_hw.iter_mut() {
        bucket.clear();
    }
    counters.shots_screened += tile.num_shots() as u64;

    let words = det.num_words();
    for w in 0..words {
        let (mut ones, mut twos, mut fours) = (0u64, 0u64, 0u64);
        for d in 0..det.num_bits() {
            let bits = det.row(d)[w];
            let carry1 = ones & bits;
            ones ^= bits;
            let carry2 = twos & carry1;
            twos ^= carry1;
            fours |= carry2;
        }

        let valid = det.valid_lanes(w);
        let mut obs_any = 0u64;
        for i in 0..obs.num_bits() {
            obs_any |= obs.word(i, w);
        }
        let nonzero = ones | twos | fours;
        let trivial = !nonzero & valid;
        out.stats.record_many(0, 0, u64::from(trivial.count_ones()));
        out.failures += u64::from((trivial & obs_any).count_ones());
        counters.trivial_shots += u64::from(trivial.count_ones());
        if let Some(preds) = predictions.as_deref_mut() {
            let mut m = trivial;
            while m != 0 {
                preds[w * 64 + m.trailing_zeros() as usize] = Prediction::identity();
                m &= m - 1;
            }
        }

        let mask = nonzero & valid;
        if mask == 0 {
            continue;
        }
        let mut m = mask;
        while m != 0 {
            buckets[m.trailing_zeros() as usize].clear();
            m &= m - 1;
        }
        for d in 0..det.num_bits() {
            let mut m = det.row(d)[w] & mask;
            while m != 0 {
                buckets[m.trailing_zeros() as usize].push(d as u32);
                m &= m - 1;
            }
        }

        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let dets = &buckets[lane];
            let mut actual = 0u32;
            for b in 0..obs.num_bits() {
                actual |= ((obs.word(b, w) >> lane & 1) as u32) << b;
            }
            let p = match dets[..] {
                [d] => {
                    counters.hw1_shots += 1;
                    cache.single(d, decoder, scratch)
                }
                [a, b] => {
                    counters.hw2_shots += 1;
                    cache.pair(a, b, decoder, scratch)
                }
                _ => {
                    let start = hard_dets.len() as u32;
                    hard_dets.extend_from_slice(dets);
                    by_hw[dets.len().min(HW_DISPATCH_BUCKETS - 1)].push(hard_shots.len() as u32);
                    hard_shots.push(HardShot {
                        dets_start: start,
                        hw: dets.len() as u32,
                        actual,
                        shot: (w * 64 + lane) as u32,
                    });
                    continue;
                }
            };
            if let Some(preds) = predictions.as_deref_mut() {
                preds[w * 64 + lane] = p;
            }
            out.stats.record(dets.len(), p.cycles);
            out.deferred += u64::from(p.deferred);
            out.failures += u64::from(p.observables != actual);
        }
    }

    for bucket in by_hw.iter() {
        for &idx in bucket {
            let shot = hard_shots[idx as usize];
            let k = shot.hw as usize;
            let dets = &hard_dets[shot.dets_start as usize..shot.dets_start as usize + k];
            let p = if k <= 4 {
                counters.closed_form_shots += 1;
                decoder.decode_with_scratch(dets, scratch)
            } else if hard_cache.caches(k) {
                let (p, hit) = hard_cache.get_or_decode(dets, decoder, scratch);
                if hit {
                    counters.hard_cache_hits += 1;
                } else {
                    counters.hard_cache_misses += 1;
                    counters.dp_shots += 1;
                }
                p
            } else {
                if k <= DP_BAND_MAX {
                    counters.dp_shots += 1;
                } else {
                    counters.sparse_blossom_shots += 1;
                }
                decoder.decode_with_scratch(dets, scratch)
            };
            if let Some(preds) = predictions.as_deref_mut() {
                preds[shot.shot as usize] = p;
            }
            out.stats.record(k, p.cycles);
            out.deferred += u64::from(p.deferred);
            out.failures += u64::from(p.observables != shot.actual);
        }
    }

    // Same weight-backend harvest as the packed path (diagnostic only —
    // tier routing differs between the paths, so these are not part of
    // the bit-identity contract).
    let od = scratch.ondemand.stats;
    counters.ondemand.merge(&od.delta_since(last_ondemand));
    *last_ondemand = od;
    let gp = scratch.graphpd.stats;
    counters.graphpd.merge(&gp.delta_since(last_graphpd));
    *last_graphpd = gp;
    if let Some(lw) = decoder.local_weight_stats() {
        counters.local_weights.merge(&lw.delta_since(last_local));
        *last_local = lw;
    }
}

/// Drains `queue` through one decoder, returning the aggregate outcome —
/// the consumer loop every streamed decode path runs (the
/// [`BatchDecoder`](crate::BatchDecoder) pool workers and the scoped
/// harness consumers in `astrea-experiments` alike).
pub fn consume_tiles(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    queue: &TileQueue,
) -> StreamOutcome {
    let mut out = StreamOutcome::default();
    while let Some(tile) = queue.next_tile() {
        decode_tile(decoder, scratch, tile_scratch, &tile, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{decode_slice, SyndromeBatch};
    use crate::AstreaDecoder;
    use blossom_mwpm::MwpmDecoder;
    use decoding_graph::DecodingContext;
    use qec_circuit::tiles::{PackedSyndromeSource, TileLayout};
    use qec_circuit::{BatchDemSampler, NoiseModel};
    use std::sync::Arc;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> Arc<DecodingContext> {
        let code = SurfaceCode::new(d).unwrap();
        Arc::new(DecodingContext::for_memory_experiment(
            &code,
            NoiseModel::depolarizing(p),
        ))
    }

    /// Barrier reference: same tiles, pushed through a batch and
    /// `decode_slice`.
    fn barrier_reference(ctx: &DecodingContext, shots: usize, seed: u64) -> StreamOutcome {
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(seed, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let s = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());
        StreamOutcome {
            stats: s.stats,
            failures: s.failures,
            deferred: s.deferred,
        }
    }

    #[test]
    fn decode_tile_matches_barrier_for_any_tile_size() {
        let ctx = ctx(3, 8e-3);
        let shots = 700;
        let reference = barrier_reference(&ctx, shots, 5);
        for tile_words in [1usize, 7, 64] {
            let layout = TileLayout::new(shots, tile_words);
            let mut sampler = BatchDemSampler::new(ctx.dem());
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            let mut out = StreamOutcome::default();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(5, &layout, t);
                decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
            }
            assert_eq!(out, reference, "tile_words {tile_words}");
        }
    }

    #[test]
    fn decode_tile_predictions_match_decode_slice_per_shot() {
        // Per-shot predictions routed out of the fused tile path must be
        // bit-identical to the barrier path's, trivial shots included,
        // for every decoder family (caches only replay the decoder).
        let ctx = ctx(3, 1.5e-2);
        let shots = 450;
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(31, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);

        for astrea in [false, true] {
            let mut decoder: Box<dyn Decoder> = if astrea {
                Box::new(AstreaDecoder::new(ctx.gwt()))
            } else {
                Box::new(MwpmDecoder::new(ctx.gwt()))
            };
            let mut scratch = DecodeScratch::new();
            let reference = decode_slice(decoder.as_mut(), &mut scratch, &batch, 0..batch.len());

            let layout = TileLayout::new(shots, 3);
            let mut sampler = BatchDemSampler::new(ctx.dem());
            let mut decoder: Box<dyn Decoder> = if astrea {
                Box::new(AstreaDecoder::new(ctx.gwt()))
            } else {
                Box::new(MwpmDecoder::new(ctx.gwt()))
            };
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            let mut out = StreamOutcome::default();
            let mut preds = Vec::new();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(31, &layout, t);
                let mut tile_preds = vec![Prediction::identity(); tile.num_shots()];
                decode_tile_with_predictions(
                    decoder.as_mut(),
                    &mut scratch,
                    &mut ts,
                    &tile,
                    &mut out,
                    &mut tile_preds,
                );
                preds.extend_from_slice(&tile_preds);
            }
            assert_eq!(preds, reference.predictions, "astrea={astrea}");
            assert_eq!(out.stats, reference.stats);
            assert_eq!(out.failures, reference.failures);
            assert_eq!(out.deferred, reference.deferred);
        }
    }

    #[test]
    fn packed_path_matches_per_lane_reference() {
        // The tentpole's differential contract, checked in-crate at a
        // rate high enough to exercise every tier: packed easy-tier
        // decode must reproduce the per-lane reference path's
        // predictions, outcome, and shot-partition counters exactly,
        // with the key-lookup diagnostics bounded by the shots they
        // dedupe. (p chosen so the mix spans trivial through the DP
        // band — at 2e-2 the easy tiers are empty at this distance.)
        let ctx = ctx(5, 5e-3);
        let shots = 1800;
        let layout = TileLayout::new(shots, 4);
        let run = |packed: bool| {
            let mut sampler = BatchDemSampler::new(ctx.dem());
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            let mut out = StreamOutcome::default();
            let mut preds = Vec::new();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(17, &layout, t);
                let mut tile_preds = vec![Prediction::identity(); tile.num_shots()];
                if packed {
                    decode_tile_with_predictions(
                        &mut decoder,
                        &mut scratch,
                        &mut ts,
                        &tile,
                        &mut out,
                        &mut tile_preds,
                    );
                } else {
                    decode_tile_reference(
                        &mut decoder,
                        &mut scratch,
                        &mut ts,
                        &tile,
                        &mut out,
                        Some(&mut tile_preds),
                    );
                }
                preds.extend_from_slice(&tile_preds);
            }
            (preds, out, *ts.counters())
        };
        let (preds_packed, out_packed, c_packed) = run(true);
        let (preds_ref, out_ref, c_ref) = run(false);
        assert_eq!(preds_packed, preds_ref);
        assert_eq!(out_packed, out_ref);
        assert_eq!(c_packed.shot_partition(), c_ref.shot_partition());
        assert_eq!(c_packed.tier_sum(), c_packed.shots_screened);
        assert_eq!(c_ref.hw1_key_lookups + c_ref.hw2_key_lookups, 0);
        assert!(
            c_packed.hw1_shots > 0 && c_packed.hw2_shots > 0,
            "{c_packed:?}"
        );
        assert!(c_packed.hw1_key_lookups > 0 && c_packed.hw1_key_lookups <= c_packed.hw1_shots);
        assert!(c_packed.hw2_key_lookups > 0 && c_packed.hw2_key_lookups <= c_packed.hw2_shots);
    }

    #[test]
    fn alternating_contexts_keep_caches_warm() {
        // A worker serving two decoding contexts must not rebuild its
        // screen/hard caches on every switch: replaying context A's
        // tiles after an interleaved B stream must still hit A's hard
        // cache, and the outcomes must equal the uninterleaved run.
        let ctx_a = ctx(5, 2e-2);
        let ctx_b = ctx(3, 2e-2);
        let shots = 1200;
        let layout = TileLayout::new(shots, 4);
        let mut decoder_a = MwpmDecoder::new(ctx_a.gwt());
        let mut decoder_b = MwpmDecoder::new(ctx_b.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut passes = [StreamOutcome::default(), StreamOutcome::default()];
        for out in passes.iter_mut() {
            let mut sampler = BatchDemSampler::new(ctx_a.dem());
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(23, &layout, t);
                decode_tile(&mut decoder_a, &mut scratch, &mut ts, &tile, out);
            }
            // Interleave the other context between the passes; before
            // the per-detector-count keying this wiped A's caches.
            let mut sampler = BatchDemSampler::new(ctx_b.dem());
            let mut out_b = StreamOutcome::default();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(29, &layout, t);
                decode_tile(&mut decoder_b, &mut scratch, &mut ts, &tile, &mut out_b);
            }
        }
        assert_eq!(ts.num_contexts(), 2);
        let c = ts.counters();
        assert!(
            c.hard_cache_hits > 0,
            "context switch evicted the warm hard cache: {c:?}"
        );
        assert_eq!(passes[0], passes[1], "warm caches must replay exactly");
    }

    #[test]
    fn decode_tile_accounts_astrea_cycles_and_deferrals_exactly() {
        // Astrea models nonzero cycles for HW ≤ 2 lookups and defers
        // beyond HW 10; both must survive the screened path bit-for-bit.
        let ctx = ctx(3, 2e-2);
        let shots = 600;
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(3, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        let mut decoder = AstreaDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let s = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());

        let layout = TileLayout::new(shots, 3);
        let mut sampler = BatchDemSampler::new(ctx.dem());
        let mut decoder = AstreaDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut out = StreamOutcome::default();
        for t in 0..layout.num_tiles() {
            let tile = sampler.sample_tile(3, &layout, t);
            decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
        }
        assert_eq!(out.stats, s.stats);
        assert_eq!(out.failures, s.failures);
        assert_eq!(out.deferred, s.deferred);
        assert!(out.deferred > 0 || out.stats.max_cycles > 0);
    }

    #[test]
    fn hard_cache_hits_on_a_repeated_syndrome_stream() {
        // Regression for the dead-cache symptom (hard_cache_hits: 0 in
        // every profiled point): drive the *same* tiles through one
        // worker twice — a repeated-syndrome stream — and require real
        // hits the second time around, with accounting bit-identical to
        // the first (cached) pass, hit or miss.
        let ctx = ctx(5, 2e-2);
        let shots = 1500;
        let layout = TileLayout::new(shots, 4);
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut passes = [StreamOutcome::default(), StreamOutcome::default()];
        for out in passes.iter_mut() {
            let mut sampler = BatchDemSampler::new(ctx.dem());
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(23, &layout, t);
                decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, out);
            }
        }
        let c = ts.counters();
        assert!(
            c.hard_cache_hits > 0,
            "repeated stream produced no cache hits: {c:?}"
        );
        assert!(c.hard_cache_misses > 0);
        assert_eq!(
            passes[0], passes[1],
            "cache hits must replay the decoder bit-for-bit"
        );
    }

    #[test]
    fn counters_account_for_every_screened_shot() {
        // Error rate high enough to populate every stage, including the
        // deep sparse-blossom band; the per-stage counters must sum back
        // to the number of screened shots.
        let ctx = ctx(5, 3e-2);
        let shots = 4000;
        let layout = TileLayout::new(shots, 8);
        let mut sampler = BatchDemSampler::new(ctx.dem());
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut out = StreamOutcome::default();
        for t in 0..layout.num_tiles() {
            let tile = sampler.sample_tile(29, &layout, t);
            decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
        }
        let c = *ts.counters();
        assert_eq!(c.shots_screened, shots as u64);
        assert_eq!(
            c.tier_sum(),
            c.shots_screened,
            "stage counters do not partition the stream: {c:?}"
        );
        assert!(
            c.sparse_blossom_shots > 0,
            "no deep-tail shots at p = 3e-2: {c:?}"
        );
        // Deep shots that decompose into small clusters are solved by the
        // per-cluster DP, so solves need not reach sparse_blossom_shots —
        // but the arena must have engaged on this stream.
        assert!(
            scratch.sparse.solves > 0,
            "sparse solver arena never engaged on this stream — every deep \
             shot decomposed into sub-blossom clusters, so the test no \
             longer covers the blossom band: {c:?}"
        );
    }

    #[test]
    fn queue_distributes_every_tile_exactly_once() {
        let ctx = ctx(3, 5e-3);
        let shots = 1000;
        let reference = barrier_reference(&ctx, shots, 11);
        let layout = TileLayout::new(shots, 2);
        let (tx, rx) = tile_channel(4);
        let queue = TileQueue::new(rx);
        let outcome: StreamOutcome = std::thread::scope(|scope| {
            let producer_ctx = Arc::clone(&ctx);
            scope.spawn(move || {
                let mut sampler = BatchDemSampler::new(producer_ctx.dem());
                for t in 0..layout.num_tiles() {
                    tx.send(sampler.sample_tile(11, &layout, t)).unwrap();
                }
            });
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let queue = queue.clone();
                    let ctx = Arc::clone(&ctx);
                    scope.spawn(move || {
                        let mut decoder = MwpmDecoder::new(ctx.gwt());
                        let mut scratch = DecodeScratch::new();
                        let mut ts = TileScratch::new();
                        consume_tiles(&mut decoder, &mut scratch, &mut ts, &queue)
                    })
                })
                .collect();
            let mut total = StreamOutcome::default();
            for c in consumers {
                total.merge(&c.join().unwrap());
            }
            total
        });
        assert_eq!(outcome, reference);
        assert_eq!(outcome.stats.shots, shots as u64);
    }
}
