//! Streaming sampler→decoder pipeline over packed syndrome tiles.
//!
//! The barrier path (`sample → SyndromeBatch → decode`) materializes
//! every shot as a sparse detector list before any decoder runs, and
//! sampling finishes before decoding starts. This module streams instead:
//! producer threads emit fixed-size packed [`SyndromeTile`]s over a
//! bounded channel, and consumers pull tiles as they arrive, screen them
//! word-parallel (the bit-sliced adder of
//! [`TileScreen`](crate::screen::TileScreen), fused inline with
//! extraction into one pass over the packed columns), and only
//! build sparse lists for shots of Hamming weight ≥ 3 ([`decode_tile`]).
//! Sampling and decoding overlap end-to-end, and the ~99% of shots that
//! are trivial or HW ≤ 2 at low physical error rate never touch a batch
//! structure at all.
//!
//! # Exactness
//!
//! The streamed path reproduces the barrier path *bit-identically*, for
//! every tile size, producer count, and consumer count:
//!
//! * tiles inherit the `column_seed` contract (see `qec_circuit::tiles`),
//!   so the sampled shot stream is one fixed function of `(seed, shot)`;
//! * every per-shot quantity the barrier path accounts (Hamming weight,
//!   predicted observables, modeled cycles, deferral) is reproduced
//!   exactly — trivial shots by word-parallel counting, HW ≤ 2 shots by
//!   replaying the decoder through a [`ScreenCache`], hard shots by the
//!   same `decode_with_scratch` call;
//! * all accounting ([`StreamOutcome`], [`LatencyStats`]) is sums and
//!   maxima, so any interleaving of tiles across consumers merges to the
//!   same totals.
//!
//! Consumers share one [`TileQueue`], so a tile is decoded by whichever
//! worker is free — there is no static shot-to-worker assignment to
//! imbalance. The cost is that per-shot predictions are not returned in
//! order (use [`BatchDecoder::decode_batch`](crate::BatchDecoder) when
//! predictions matter); LER estimation only needs the totals.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};

use crate::latency::LatencyStats;
use crate::screen::{HardSyndromeCache, ScreenCache};
use decoding_graph::{DecodeScratch, Decoder, Prediction};
use qec_circuit::SyndromeTile;

/// Default tile size in packed words (8192 shots): large enough to
/// amortize channel traffic, small enough that a tile's detector table
/// stays cache-resident through screening and extraction.
pub const DEFAULT_TILE_WORDS: usize = 128;

/// Default bound on the tile channel: producers run at most this many
/// tiles ahead of the consumers, capping pipeline memory at
/// `depth + producers + consumers` tiles in flight.
pub const DEFAULT_CHANNEL_DEPTH: usize = 8;

/// Default per-worker capacity of the hard-syndrome prediction cache
/// (predictions, not bytes; ~40 bytes each). Sized to stay L2-resident.
/// On cold i.i.d. sampled streams distinct hard syndromes dominate and
/// hits stay near zero whatever the size — that is a workload property,
/// not a defect — but replayed, correlated, or long-running streams hit
/// in proportion to the retention window, so the default keeps 4k
/// predictions (≈4× the pre-widening size, matching the HW ≤ 10 band).
pub const DEFAULT_HARD_CACHE_ENTRIES: usize = 4096;

/// Largest Hamming weight the `MwpmDecoder` still routes to the subset
/// DP; everything above goes to blossom. Mirrors
/// [`blossom_mwpm::DP_NODE_LIMIT`] — the counters classify hard shots
/// by the band they land in.
const DP_BAND_MAX: usize = blossom_mwpm::DP_NODE_LIMIT;

/// Per-stage shot counters for the screened decode path: how many shots
/// each stage of the hard-shot fast path absorbed.
///
/// Kept separate from [`LatencyStats`] / [`StreamOutcome`] on purpose:
/// those are part of the bit-identity contract between the streamed and
/// barrier paths (compared with `==` in tests and the harness), while
/// these counters describe *stages that only exist on the streamed
/// path*. They accumulate in the worker's [`TileScratch`] and are
/// summed across workers by the harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineCounters {
    /// Shots classified by the word-parallel screen (every shot).
    pub shots_screened: u64,
    /// Shots with an all-zero syndrome (counted, never materialized).
    pub trivial_shots: u64,
    /// Shots decided by the HW-1 lookup cache.
    pub hw1_shots: u64,
    /// Shots decided by the HW-2 lookup cache.
    pub hw2_shots: u64,
    /// Hard shots (HW 3–4) decided by the GWT-direct closed form.
    pub closed_form_shots: u64,
    /// Hard shots served from the [`HardSyndromeCache`].
    pub hard_cache_hits: u64,
    /// Cacheable hard shots that missed and paid a real decode.
    pub hard_cache_misses: u64,
    /// Hard shots decoded by the subset DP band (HW 5..=11, cache
    /// misses included).
    pub dp_shots: u64,
    /// Hard shots beyond the DP band (HW ≥ 12), solved by the sparse
    /// scratch-reusing blossom solver on the arena path.
    pub sparse_blossom_shots: u64,
}

impl PipelineCounters {
    /// Folds another worker's counters in (order-independent).
    pub fn merge(&mut self, other: &PipelineCounters) {
        self.shots_screened += other.shots_screened;
        self.trivial_shots += other.trivial_shots;
        self.hw1_shots += other.hw1_shots;
        self.hw2_shots += other.hw2_shots;
        self.closed_form_shots += other.closed_form_shots;
        self.hard_cache_hits += other.hard_cache_hits;
        self.hard_cache_misses += other.hard_cache_misses;
        self.dp_shots += other.dp_shots;
        self.sparse_blossom_shots += other.sparse_blossom_shots;
    }
}

/// Creates the bounded tile channel connecting producers to consumers.
pub fn tile_channel(depth: usize) -> (SyncSender<SyndromeTile>, Receiver<SyndromeTile>) {
    mpsc::sync_channel(depth.max(1))
}

/// The consumer end of a tile channel, shareable across decode workers.
///
/// Workers pull tiles whenever they finish one — dynamic load balancing
/// with no assignment step. The queue yields `None` once every producer
/// has dropped its sender and the channel drained.
#[derive(Clone)]
pub struct TileQueue {
    shared: Arc<Mutex<Receiver<SyndromeTile>>>,
}

impl TileQueue {
    /// Wraps a channel receiver for shared consumption.
    pub fn new(tiles: Receiver<SyndromeTile>) -> TileQueue {
        TileQueue {
            shared: Arc::new(Mutex::new(tiles)),
        }
    }

    /// Blocks for the next tile; `None` when the stream is exhausted.
    pub fn next_tile(&self) -> Option<SyndromeTile> {
        self.shared.lock().expect("tile queue poisoned").recv().ok()
    }
}

/// The accounting produced by streaming tiles through a decoder: exactly
/// the totals `estimate_ler` needs, without per-shot predictions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Latency statistics over every consumed shot (trivial included).
    pub stats: LatencyStats,
    /// Shots whose predicted observable mask missed the actual one.
    pub failures: u64,
    /// Shots the decoder declined to decode in real time.
    pub deferred: u64,
}

impl StreamOutcome {
    /// Folds another partial outcome in (order-independent).
    pub fn merge(&mut self, other: &StreamOutcome) {
        self.stats.merge(&other.stats);
        self.failures += other.failures;
        self.deferred += other.deferred;
    }
}

/// One hard shot staged for HW-sorted dispatch: its detector list lives
/// in the scratch's flat arena at `dets_start..dets_start + hw`,
/// `actual` is the shot's true observable-flip mask, and `shot` is its
/// index within the tile (for routing per-shot predictions).
#[derive(Debug, Clone, Copy)]
struct HardShot {
    dets_start: u32,
    hw: u32,
    actual: u32,
    shot: u32,
}

/// Number of Hamming-weight dispatch buckets; the last one collects the
/// whole tail.
const HW_DISPATCH_BUCKETS: usize = 16;

/// Reusable per-worker scratch for tile decoding: the lazy HW ≤ 2
/// [`ScreenCache`], the bounded [`HardSyndromeCache`], the flat
/// hard-shot staging arena, and the per-stage [`PipelineCounters`].
/// (Screening itself is fused into [`decode_tile`]'s word loop and needs
/// no buffers — see [`TileScreen`](crate::screen::TileScreen) for the
/// standalone reference implementation.)
///
/// Keep one per consumer thread; the caches warm and the counters
/// accumulate across tiles and batches.
#[derive(Debug)]
pub struct TileScratch {
    cache: ScreenCache,
    /// Bounded hard-shot memo, sized lazily on the first tile (like
    /// `cache`) from `hard_cache_entries`.
    hard_cache: HardSyndromeCache,
    hard_cache_entries: usize,
    /// Per-lane detector lists for the word being extracted (64 lanes).
    buckets: Vec<Vec<u32>>,
    /// Flat arena of hard-shot detector lists for the tile in flight —
    /// one growable buffer reused across words and tiles instead of
    /// per-word allocations.
    hard_dets: Vec<u32>,
    /// Hard shots staged for dispatch, indexing into `hard_dets`.
    hard_shots: Vec<HardShot>,
    /// Dispatch order: indices into `hard_shots`, bucketed by Hamming
    /// weight so same-weight shots decode back-to-back.
    by_hw: Vec<Vec<u32>>,
    counters: PipelineCounters,
}

impl Default for TileScratch {
    fn default() -> TileScratch {
        TileScratch::with_hard_cache(DEFAULT_HARD_CACHE_ENTRIES)
    }
}

impl TileScratch {
    /// Empty scratch; buffers and caches size to the first tile decoded.
    pub fn new() -> TileScratch {
        TileScratch::default()
    }

    /// Empty scratch whose hard-syndrome cache holds at most `entries`
    /// predictions (0 disables it).
    pub fn with_hard_cache(entries: usize) -> TileScratch {
        TileScratch {
            cache: ScreenCache::new(0),
            hard_cache: HardSyndromeCache::new(0, 0),
            hard_cache_entries: entries,
            buckets: Vec::new(),
            hard_dets: Vec::new(),
            hard_shots: Vec::new(),
            by_hw: Vec::new(),
            counters: PipelineCounters::default(),
        }
    }

    /// The warmed HW ≤ 2 prediction cache.
    pub fn cache(&self) -> &ScreenCache {
        &self.cache
    }

    /// Per-stage counters accumulated over every tile this scratch
    /// decoded.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }
}

/// Screens and decodes one packed tile, folding the accounting into
/// `out`.
///
/// Classification and extraction are **fused into one pass over the
/// packed columns**: per 64-shot word, a register-resident bit-sliced
/// ripple add classifies the lanes by Hamming weight (the same adder as
/// [`TileScreen`](crate::screen::TileScreen), without its buffers), and
/// the extraction micro-sweep immediately re-reads the same word column
/// — still L1-hot — into per-lane detector buckets. The former two
/// full-tile row passes (screen, then extraction) touched every packed
/// word twice from cache-cold memory; the fused loop streams the tile
/// through memory exactly once. Trivial shots are popcounted (their
/// failures read off a word-level observable OR) without being
/// materialized; extracted lists arrive shot-grouped with detectors
/// ascending, so no sort is needed.
///
/// HW ≤ 2 shots are decided by the scratch's [`ScreenCache`] (replaying
/// the decoder exactly) as they are extracted; HW ≥ 3 shots are staged
/// into a flat arena and dispatched *after* the sweep in ascending
/// Hamming-weight order, so same-weight shots decode back-to-back
/// (closed form, then cacheable DP weights, then the deep tail) and
/// cacheable ones consult the [`HardSyndromeCache`] first.
///
/// Every prediction still comes from the decoder itself (caches only
/// replay it) and all accounting is sums and maxima, so the result is
/// bit-identical to pushing the tile through a
/// [`SyndromeBatch`](crate::SyndromeBatch) and
/// [`decode_slice`](crate::batch::decode_slice) — dispatch order and
/// cache hits never show through.
pub fn decode_tile(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
) {
    decode_tile_inner(decoder, scratch, tile_scratch, tile, out, None);
}

/// [`decode_tile`], additionally writing each shot's [`Prediction`] into
/// `predictions` by its index within the tile — the serving path's entry
/// point, where callers need per-shot corrections routed back to clients
/// rather than aggregate totals only.
///
/// Trivial shots receive [`Prediction::identity`]; every other slot is
/// the decoder's own prediction (caches only replay it), so
/// `predictions[i]` is bit-identical to what
/// [`decode_slice`](crate::batch::decode_slice) would have produced for
/// the same shot. The aggregate accounting in `out` is unchanged from
/// [`decode_tile`].
///
/// # Panics
///
/// Panics if `predictions.len() != tile.num_shots()`.
pub fn decode_tile_with_predictions(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
    predictions: &mut [Prediction],
) {
    assert_eq!(
        predictions.len(),
        tile.num_shots(),
        "prediction buffer does not match tile shot count"
    );
    decode_tile_inner(decoder, scratch, tile_scratch, tile, out, Some(predictions));
}

fn decode_tile_inner(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    tile: &SyndromeTile,
    out: &mut StreamOutcome,
    mut predictions: Option<&mut [Prediction]>,
) {
    let det = tile.detectors();
    let obs = tile.observables();
    if tile.num_shots() == 0 {
        return;
    }
    if tile_scratch.cache.num_detectors() != det.num_bits() {
        tile_scratch.cache = ScreenCache::new(det.num_bits());
        tile_scratch.hard_cache =
            HardSyndromeCache::new(tile_scratch.hard_cache_entries, det.num_bits());
    }
    let TileScratch {
        cache,
        hard_cache,
        buckets,
        hard_dets,
        hard_shots,
        by_hw,
        counters,
        ..
    } = tile_scratch;
    buckets.resize_with(64, Vec::new);
    by_hw.resize_with(HW_DISPATCH_BUCKETS, Vec::new);
    hard_dets.clear();
    hard_shots.clear();
    for bucket in by_hw.iter_mut() {
        bucket.clear();
    }
    counters.shots_screened += tile.num_shots() as u64;

    let words = det.num_words();
    for w in 0..words {
        // Fused classification: one register-resident bit-sliced 2-bit
        // ripple add over this word's detector column. This is the only
        // cache-cold traversal of the column — the extraction sweep
        // below rereads it from L1.
        let (mut ones, mut twos, mut fours) = (0u64, 0u64, 0u64);
        for d in 0..det.num_bits() {
            let bits = det.row(d)[w];
            let carry1 = ones & bits;
            ones ^= bits;
            let carry2 = twos & carry1;
            twos ^= carry1;
            fours |= carry2;
        }

        // Word-parallel accounting of trivial shots: count them, and
        // read their failures (actual observable flip with no syndrome)
        // off an OR of the packed observable rows.
        let valid = det.valid_lanes(w);
        let mut obs_any = 0u64;
        for i in 0..obs.num_bits() {
            obs_any |= obs.word(i, w);
        }
        let nonzero = ones | twos | fours;
        let trivial = !nonzero & valid;
        out.stats.record_many(0, 0, u64::from(trivial.count_ones()));
        out.failures += u64::from((trivial & obs_any).count_ones());
        counters.trivial_shots += u64::from(trivial.count_ones());
        if let Some(preds) = predictions.as_deref_mut() {
            let mut m = trivial;
            while m != 0 {
                preds[w * 64 + m.trailing_zeros() as usize] = Prediction::identity();
                m &= m - 1;
            }
        }

        // Sparse extraction of this word's nontrivial lanes into
        // per-lane buckets: one AND per detector row, detectors arrive
        // in ascending order per lane.
        let mask = nonzero & valid;
        if mask == 0 {
            continue;
        }
        let mut m = mask;
        while m != 0 {
            buckets[m.trailing_zeros() as usize].clear();
            m &= m - 1;
        }
        for d in 0..det.num_bits() {
            let mut m = det.row(d)[w] & mask;
            while m != 0 {
                buckets[m.trailing_zeros() as usize].push(d as u32);
                m &= m - 1;
            }
        }

        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let dets = &buckets[lane];
            let mut actual = 0u32;
            for b in 0..obs.num_bits() {
                actual |= ((obs.word(b, w) >> lane & 1) as u32) << b;
            }
            let p = match dets[..] {
                [d] => {
                    counters.hw1_shots += 1;
                    cache.single(d, decoder, scratch)
                }
                [a, b] => {
                    counters.hw2_shots += 1;
                    cache.pair(a, b, decoder, scratch)
                }
                _ => {
                    // Hard shot: stage it in the flat arena for the
                    // weight-sorted dispatch below.
                    let start = hard_dets.len() as u32;
                    hard_dets.extend_from_slice(dets);
                    by_hw[dets.len().min(HW_DISPATCH_BUCKETS - 1)].push(hard_shots.len() as u32);
                    hard_shots.push(HardShot {
                        dets_start: start,
                        hw: dets.len() as u32,
                        actual,
                        shot: (w * 64 + lane) as u32,
                    });
                    continue;
                }
            };
            if let Some(preds) = predictions.as_deref_mut() {
                preds[w * 64 + lane] = p;
            }
            out.stats.record(dets.len(), p.cycles);
            out.deferred += u64::from(p.deferred);
            out.failures += u64::from(p.observables != actual);
        }
    }

    // Hard dispatch, one Hamming-weight band at a time.
    for bucket in by_hw.iter() {
        for &idx in bucket {
            let shot = hard_shots[idx as usize];
            let k = shot.hw as usize;
            let dets = &hard_dets[shot.dets_start as usize..shot.dets_start as usize + k];
            let p = if k <= 4 {
                // GWT-direct closed form inside the decoder — no weight
                // matrix, no DP table.
                counters.closed_form_shots += 1;
                decoder.decode_with_scratch(dets, scratch)
            } else if hard_cache.caches(k) {
                let (p, hit) = hard_cache.get_or_decode(dets, decoder, scratch);
                if hit {
                    counters.hard_cache_hits += 1;
                } else {
                    counters.hard_cache_misses += 1;
                    counters.dp_shots += 1;
                }
                p
            } else {
                if k <= DP_BAND_MAX {
                    counters.dp_shots += 1;
                } else {
                    counters.sparse_blossom_shots += 1;
                }
                decoder.decode_with_scratch(dets, scratch)
            };
            if let Some(preds) = predictions.as_deref_mut() {
                preds[shot.shot as usize] = p;
            }
            out.stats.record(k, p.cycles);
            out.deferred += u64::from(p.deferred);
            out.failures += u64::from(p.observables != shot.actual);
        }
    }
}

/// Drains `queue` through one decoder, returning the aggregate outcome —
/// the consumer loop every streamed decode path runs (the
/// [`BatchDecoder`](crate::BatchDecoder) pool workers and the scoped
/// harness consumers in `astrea-experiments` alike).
pub fn consume_tiles(
    decoder: &mut dyn Decoder,
    scratch: &mut DecodeScratch,
    tile_scratch: &mut TileScratch,
    queue: &TileQueue,
) -> StreamOutcome {
    let mut out = StreamOutcome::default();
    while let Some(tile) = queue.next_tile() {
        decode_tile(decoder, scratch, tile_scratch, &tile, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{decode_slice, SyndromeBatch};
    use crate::AstreaDecoder;
    use blossom_mwpm::MwpmDecoder;
    use decoding_graph::DecodingContext;
    use qec_circuit::tiles::{PackedSyndromeSource, TileLayout};
    use qec_circuit::{BatchDemSampler, NoiseModel};
    use std::sync::Arc;
    use surface_code::SurfaceCode;

    fn ctx(d: usize, p: f64) -> Arc<DecodingContext> {
        let code = SurfaceCode::new(d).unwrap();
        Arc::new(DecodingContext::for_memory_experiment(
            &code,
            NoiseModel::depolarizing(p),
        ))
    }

    /// Barrier reference: same tiles, pushed through a batch and
    /// `decode_slice`.
    fn barrier_reference(ctx: &DecodingContext, shots: usize, seed: u64) -> StreamOutcome {
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(seed, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let s = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());
        StreamOutcome {
            stats: s.stats,
            failures: s.failures,
            deferred: s.deferred,
        }
    }

    #[test]
    fn decode_tile_matches_barrier_for_any_tile_size() {
        let ctx = ctx(3, 8e-3);
        let shots = 700;
        let reference = barrier_reference(&ctx, shots, 5);
        for tile_words in [1usize, 7, 64] {
            let layout = TileLayout::new(shots, tile_words);
            let mut sampler = BatchDemSampler::new(ctx.dem());
            let mut decoder = MwpmDecoder::new(ctx.gwt());
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            let mut out = StreamOutcome::default();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(5, &layout, t);
                decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
            }
            assert_eq!(out, reference, "tile_words {tile_words}");
        }
    }

    #[test]
    fn decode_tile_predictions_match_decode_slice_per_shot() {
        // Per-shot predictions routed out of the fused tile path must be
        // bit-identical to the barrier path's, trivial shots included,
        // for every decoder family (caches only replay the decoder).
        let ctx = ctx(3, 1.5e-2);
        let shots = 450;
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(31, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);

        for astrea in [false, true] {
            let mut decoder: Box<dyn Decoder> = if astrea {
                Box::new(AstreaDecoder::new(ctx.gwt()))
            } else {
                Box::new(MwpmDecoder::new(ctx.gwt()))
            };
            let mut scratch = DecodeScratch::new();
            let reference = decode_slice(decoder.as_mut(), &mut scratch, &batch, 0..batch.len());

            let layout = TileLayout::new(shots, 3);
            let mut sampler = BatchDemSampler::new(ctx.dem());
            let mut decoder: Box<dyn Decoder> = if astrea {
                Box::new(AstreaDecoder::new(ctx.gwt()))
            } else {
                Box::new(MwpmDecoder::new(ctx.gwt()))
            };
            let mut scratch = DecodeScratch::new();
            let mut ts = TileScratch::new();
            let mut out = StreamOutcome::default();
            let mut preds = Vec::new();
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(31, &layout, t);
                let mut tile_preds = vec![Prediction::identity(); tile.num_shots()];
                decode_tile_with_predictions(
                    decoder.as_mut(),
                    &mut scratch,
                    &mut ts,
                    &tile,
                    &mut out,
                    &mut tile_preds,
                );
                preds.extend_from_slice(&tile_preds);
            }
            assert_eq!(preds, reference.predictions, "astrea={astrea}");
            assert_eq!(out.stats, reference.stats);
            assert_eq!(out.failures, reference.failures);
            assert_eq!(out.deferred, reference.deferred);
        }
    }

    #[test]
    fn decode_tile_accounts_astrea_cycles_and_deferrals_exactly() {
        // Astrea models nonzero cycles for HW ≤ 2 lookups and defers
        // beyond HW 10; both must survive the screened path bit-for-bit.
        let ctx = ctx(3, 2e-2);
        let shots = 600;
        let sampler = BatchDemSampler::new(ctx.dem());
        let (det, obs) = sampler.sample(3, shots);
        let batch = SyndromeBatch::from_packed(&det, &obs);
        let mut decoder = AstreaDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let s = decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len());

        let layout = TileLayout::new(shots, 3);
        let mut sampler = BatchDemSampler::new(ctx.dem());
        let mut decoder = AstreaDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut out = StreamOutcome::default();
        for t in 0..layout.num_tiles() {
            let tile = sampler.sample_tile(3, &layout, t);
            decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
        }
        assert_eq!(out.stats, s.stats);
        assert_eq!(out.failures, s.failures);
        assert_eq!(out.deferred, s.deferred);
        assert!(out.deferred > 0 || out.stats.max_cycles > 0);
    }

    #[test]
    fn hard_cache_hits_on_a_repeated_syndrome_stream() {
        // Regression for the dead-cache symptom (hard_cache_hits: 0 in
        // every profiled point): drive the *same* tiles through one
        // worker twice — a repeated-syndrome stream — and require real
        // hits the second time around, with accounting bit-identical to
        // the first (cached) pass, hit or miss.
        let ctx = ctx(5, 2e-2);
        let shots = 1500;
        let layout = TileLayout::new(shots, 4);
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut passes = [StreamOutcome::default(), StreamOutcome::default()];
        for out in passes.iter_mut() {
            let mut sampler = BatchDemSampler::new(ctx.dem());
            for t in 0..layout.num_tiles() {
                let tile = sampler.sample_tile(23, &layout, t);
                decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, out);
            }
        }
        let c = ts.counters();
        assert!(
            c.hard_cache_hits > 0,
            "repeated stream produced no cache hits: {c:?}"
        );
        assert!(c.hard_cache_misses > 0);
        assert_eq!(
            passes[0], passes[1],
            "cache hits must replay the decoder bit-for-bit"
        );
    }

    #[test]
    fn counters_account_for_every_screened_shot() {
        // Error rate high enough to populate every stage, including the
        // deep sparse-blossom band; the per-stage counters must sum back
        // to the number of screened shots.
        let ctx = ctx(5, 3e-2);
        let shots = 4000;
        let layout = TileLayout::new(shots, 8);
        let mut sampler = BatchDemSampler::new(ctx.dem());
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        let mut ts = TileScratch::new();
        let mut out = StreamOutcome::default();
        for t in 0..layout.num_tiles() {
            let tile = sampler.sample_tile(29, &layout, t);
            decode_tile(&mut decoder, &mut scratch, &mut ts, &tile, &mut out);
        }
        let c = *ts.counters();
        assert_eq!(c.shots_screened, shots as u64);
        assert_eq!(
            c.trivial_shots
                + c.hw1_shots
                + c.hw2_shots
                + c.closed_form_shots
                + c.hard_cache_hits
                + c.hard_cache_misses
                + (c.dp_shots - c.hard_cache_misses)
                + c.sparse_blossom_shots,
            c.shots_screened,
            "stage counters do not partition the stream: {c:?}"
        );
        assert!(
            c.sparse_blossom_shots > 0,
            "no deep-tail shots at p = 3e-2: {c:?}"
        );
        // Deep shots that decompose into small clusters are solved by the
        // per-cluster DP, so solves need not reach sparse_blossom_shots —
        // but the arena must have engaged on this stream.
        assert!(
            scratch.sparse.solves > 0,
            "sparse solver arena unused on the blossom band"
        );
    }

    #[test]
    fn queue_distributes_every_tile_exactly_once() {
        let ctx = ctx(3, 5e-3);
        let shots = 1000;
        let reference = barrier_reference(&ctx, shots, 11);
        let layout = TileLayout::new(shots, 2);
        let (tx, rx) = tile_channel(4);
        let queue = TileQueue::new(rx);
        let outcome: StreamOutcome = std::thread::scope(|scope| {
            let producer_ctx = Arc::clone(&ctx);
            scope.spawn(move || {
                let mut sampler = BatchDemSampler::new(producer_ctx.dem());
                for t in 0..layout.num_tiles() {
                    tx.send(sampler.sample_tile(11, &layout, t)).unwrap();
                }
            });
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let queue = queue.clone();
                    let ctx = Arc::clone(&ctx);
                    scope.spawn(move || {
                        let mut decoder = MwpmDecoder::new(ctx.gwt());
                        let mut scratch = DecodeScratch::new();
                        let mut ts = TileScratch::new();
                        consume_tiles(&mut decoder, &mut scratch, &mut ts, &queue)
                    })
                })
                .collect();
            let mut total = StreamOutcome::default();
            for c in consumers {
                total.merge(&c.join().unwrap());
            }
            total
        });
        assert_eq!(outcome, reference);
        assert_eq!(outcome.stats.shots, shots as u64);
    }
}
