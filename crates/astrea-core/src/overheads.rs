//! Storage and bandwidth models for Astrea-G (paper Tables 6 and 7).
//!
//! The paper's FPGA synthesis numbers (Tables 3 and 8: LUT/FF/BRAM
//! utilization) require Vivado and real hardware and are *not* reproduced;
//! this module reproduces the parts that are pure arithmetic — the SRAM
//! budget of every data structure (Table 6) and the syndrome-transmission
//! bandwidth analysis (Table 7's independent variables).

use surface_code::CodeResources;

/// SRAM overheads of an Astrea-G instance for one stabilizer basis
/// (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramOverheads {
    /// Code distance.
    pub distance: usize,
    /// Global Weight Table: `ℓ²` one-byte entries.
    pub gwt_bytes: usize,
    /// Local Weight Table: active-bit rows of filtered candidates.
    pub lwt_bytes: usize,
    /// Priority queues: `F × E` pre-matching entries.
    pub priority_queue_bytes: usize,
    /// Pipeline latches between the Fetch/Sort/Commit stages.
    pub pipeline_latch_bytes: usize,
    /// MWPM register: the best complete matching.
    pub mwpm_register_bytes: usize,
}

/// Parameters of the storage model. Defaults follow the paper's design
/// point (`F = 2`, `E = 8`, up to 24 active syndrome bits tracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageModel {
    /// Fetch width `F`.
    pub fetch_width: usize,
    /// Priority-queue capacity `E`.
    pub queue_capacity: usize,
    /// Maximum tracked active syndrome bits (matching-register capacity
    /// is half of this in pairs).
    pub max_active_bits: usize,
    /// Candidate partners kept per LWT row.
    pub lwt_partners: usize,
}

impl Default for StorageModel {
    fn default() -> StorageModel {
        StorageModel {
            fetch_width: 2,
            queue_capacity: 8,
            max_active_bits: 24,
            lwt_partners: 16,
        }
    }
}

impl StorageModel {
    /// Bits needed to address one syndrome bit as a (stabilizer, round)
    /// pair — the encoding that reproduces the paper's register sizes
    /// (24 B at `d = 7`, 30 B at `d = 9`).
    pub fn id_bits(&self, distance: usize) -> usize {
        let res = CodeResources::for_distance(distance);
        let stab_bits = usize::BITS as usize - (res.parity_qubits_z - 1).leading_zeros() as usize;
        let round_bits = usize::BITS as usize - distance.leading_zeros() as usize;
        stab_bits + round_bits
    }

    /// Computes the Table 6 row for a given distance.
    pub fn overheads(&self, distance: usize) -> SramOverheads {
        let res = CodeResources::for_distance(distance);
        let len = res.syndrome_len_per_basis;
        let id_bits = self.id_bits(distance);

        // One pre-matching: up to max_active_bits/2 pairs of ids, a 16-bit
        // cumulative weight, and a bit count.
        let prematching_bits = self.max_active_bits * id_bits + 16 + 8;
        let pq_entries = self.fetch_width * self.queue_capacity;

        // LWT row: per active bit, `lwt_partners` candidates of
        // (8-bit weight, local index). 16 partners × 2 B × 16 rows = 512 B,
        // matching the paper's distance-independent 512 B.
        let lwt_bytes = 16 * self.lwt_partners * 2;

        SramOverheads {
            distance,
            gwt_bytes: len * len,
            lwt_bytes,
            priority_queue_bytes: (pq_entries * prematching_bits).div_ceil(8)
                + pq_entries * self.max_active_bits, // per-entry matched-bit masks
            pipeline_latch_bytes: (3 * self.fetch_width * prematching_bits).div_ceil(8)
                + self.fetch_width * len, // staged candidate rows
            mwpm_register_bytes: (self.max_active_bits * id_bits).div_ceil(8),
        }
    }
}

impl SramOverheads {
    /// Total SRAM bytes.
    pub fn total_bytes(&self) -> usize {
        self.gwt_bytes
            + self.lwt_bytes
            + self.priority_queue_bytes
            + self.pipeline_latch_bytes
            + self.mwpm_register_bytes
    }
}

/// Syndrome-transmission bandwidth needed to deliver one round's
/// `(d² − 1)/2` syndrome bits per basis — in fact the paper counts all
/// `d² − 1` parity bits — within `transmission_ns` nanoseconds, in MB/s
/// (paper §7.6: 80 bits in 100 ns → 100 MBps at `d = 9`).
pub fn required_bandwidth_mbps(distance: usize, transmission_ns: f64) -> f64 {
    assert!(transmission_ns > 0.0, "transmission time must be positive");
    let bits = (distance * distance - 1) as f64;
    // bytes per second = bits / 8 / (ns × 1e-9); in MB/s divide by 1e6.
    bits / 8.0 / transmission_ns * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gwt_bytes_match_paper_table_6() {
        let model = StorageModel::default();
        assert_eq!(model.overheads(7).gwt_bytes, 36_864); // 36 KB
        assert_eq!(model.overheads(9).gwt_bytes, 160_000); // the paper's "156KB" (KiB)
    }

    #[test]
    fn register_bytes_match_paper_table_6() {
        // 24 B at d = 7 (8-bit ids × 24), 30 B at d = 9 (10-bit ids × 24).
        let model = StorageModel::default();
        assert_eq!(model.id_bits(7), 8);
        assert_eq!(model.id_bits(9), 10);
        assert_eq!(model.overheads(7).mwpm_register_bytes, 24);
        assert_eq!(model.overheads(9).mwpm_register_bytes, 30);
    }

    #[test]
    fn lwt_is_512_bytes_at_both_distances() {
        let model = StorageModel::default();
        assert_eq!(model.overheads(7).lwt_bytes, 512);
        assert_eq!(model.overheads(9).lwt_bytes, 512);
    }

    #[test]
    fn totals_are_dominated_by_the_gwt() {
        let model = StorageModel::default();
        for d in [7, 9] {
            let o = model.overheads(d);
            assert!(
                o.gwt_bytes * 2 > o.total_bytes(),
                "GWT should dominate at d={d}"
            );
        }
    }

    #[test]
    fn queue_and_latch_sizes_are_kilobyte_scale() {
        // The paper reports 3.4 KB / 2.3 KB at d = 7; the parametric model
        // must land in the same few-KB regime.
        let model = StorageModel::default();
        let o = model.overheads(7);
        assert!(o.priority_queue_bytes > 512 && o.priority_queue_bytes < 8192);
        assert!(o.pipeline_latch_bytes > 256 && o.pipeline_latch_bytes < 8192);
    }

    #[test]
    fn bandwidth_matches_paper_table_7() {
        // d = 9: 80 syndrome bits. 100 ns → 100 MBps; 200 ns → 50 MBps;
        // 500 ns → 20 MBps.
        assert_eq!(required_bandwidth_mbps(9, 100.0), 100.0);
        assert_eq!(required_bandwidth_mbps(9, 200.0), 50.0);
        assert_eq!(required_bandwidth_mbps(9, 500.0), 20.0);
        assert_eq!(required_bandwidth_mbps(9, 400.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_zero_time() {
        required_bandwidth_mbps(9, 0.0);
    }
}
