//! Property tests of Astrea's staged brute force against the independent
//! subset-DP optimum over **arbitrary programmable weight tables**, not
//! just tables derived from a noise model — the §8.2 reprogramming path
//! means any symmetric table is a legal input.

use astrea_core::AstreaDecoder;
use blossom_mwpm::subset_dp;
use decoding_graph::GlobalWeightTable;
use proptest::prelude::*;

/// Random symmetric ℓ×ℓ weight tables with boundary diagonals.
fn random_table(len: usize) -> impl Strategy<Value = GlobalWeightTable> {
    prop::collection::vec(0.0f64..30.0, len * (len + 1) / 2).prop_map(move |tri| {
        let mut exact = vec![0.0; len * len];
        let mut k = 0;
        for i in 0..len {
            for j in i..len {
                exact[i * len + j] = tri[k];
                exact[j * len + i] = tri[k];
                k += 1;
            }
        }
        // Observable bits: deterministic pseudo-random but symmetric.
        let mut obs = vec![0u32; len * len];
        for i in 0..len {
            for j in i..len {
                let bit = ((i * 31 + j * 17) % 3 == 0) as u32;
                obs[i * len + j] = bit;
                obs[j * len + i] = bit;
            }
        }
        GlobalWeightTable::from_parts(len, exact, obs, 8.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn astrea_is_optimal_on_arbitrary_tables(
        table in random_table(12),
        hw in 1usize..=10,
    ) {
        let dets: Vec<u32> = (0..hw as u32).collect();
        let astrea = AstreaDecoder::new(&table);
        let solution = astrea.decode_full(&dets).expect("within ceiling");
        prop_assert!(solution.is_perfect_over(&dets));

        // Recompute Astrea's quantized cost and compare with the DP
        // optimum over the same quantized effective weights.
        let qw = |i: u32, j: u32| {
            let direct = table.pair_weight_q(i, j) as f64;
            let via = table.boundary_weight_q(i) as f64 + table.boundary_weight_q(j) as f64;
            direct.min(via)
        };
        let (_, dp_cost) = subset_dp::solve(
            hw,
            |i, j| qw(dets[i], dets[j]),
            |i| table.boundary_weight_q(dets[i]) as f64,
        );
        let astrea_cost: f64 = solution
            .pairs
            .iter()
            .map(|&(a, b)| table.pair_weight_q(a, b) as f64)
            .chain(
                solution
                    .to_boundary
                    .iter()
                    .map(|&a| table.boundary_weight_q(a) as f64),
            )
            .sum();
        prop_assert_eq!(astrea_cost, dp_cost, "hw {}", hw);
    }

    #[test]
    fn from_parts_round_trips_weights(table in random_table(6)) {
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i == j {
                    prop_assert!(table.boundary_weight(i) >= 0.0);
                } else {
                    prop_assert_eq!(table.pair_weight(i, j), table.pair_weight(j, i));
                    prop_assert_eq!(table.pair_obs(i, j), table.pair_obs(j, i));
                }
            }
        }
    }
}

#[test]
#[should_panic(expected = "symmetric")]
fn from_parts_rejects_asymmetric_tables() {
    let mut exact = vec![1.0; 4];
    exact[1] = 2.0; // (0,1) ≠ (1,0)
    GlobalWeightTable::from_parts(2, exact, vec![0; 4], 8.0);
}

#[test]
#[should_panic(expected = "ℓ×ℓ")]
fn from_parts_rejects_wrong_shape() {
    GlobalWeightTable::from_parts(3, vec![1.0; 4], vec![0; 9], 8.0);
}
