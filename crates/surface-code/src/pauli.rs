//! Elementary Pauli algebra and lattice coordinates.

use std::fmt;
use std::ops::Mul;

/// A single-qubit Pauli operator, ignoring global phase.
///
/// Multiplication is the group product up to phase, so `Pauli::X * Pauli::Z`
/// yields [`Pauli::Y`].
///
/// ```
/// use surface_code::Pauli;
///
/// assert_eq!(Pauli::X * Pauli::Z, Pauli::Y);
/// assert!(Pauli::X.anticommutes_with(Pauli::Z));
/// assert!(!Pauli::X.anticommutes_with(Pauli::X));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The bit-flip operator.
    X,
    /// The combined bit- and phase-flip operator.
    Y,
    /// The phase-flip operator.
    Z,
}

impl Pauli {
    /// All four Pauli operators, in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Pauli operators, in `X, Y, Z` order.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns `true` if this Pauli has an X component (`X` or `Y`).
    ///
    /// A Pauli with an X component flips the outcome of a Z-basis
    /// measurement.
    #[inline]
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Returns `true` if this Pauli has a Z component (`Z` or `Y`).
    #[inline]
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Builds a Pauli from its X and Z components.
    ///
    /// ```
    /// use surface_code::Pauli;
    /// assert_eq!(Pauli::from_xz(true, true), Pauli::Y);
    /// assert_eq!(Pauli::from_xz(false, false), Pauli::I);
    /// ```
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns `true` if the two Paulis anticommute.
    #[inline]
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        self != Pauli::I && other != Pauli::I && self != other
    }
}

impl Mul for Pauli {
    type Output = Pauli;

    #[inline]
    fn mul(self, rhs: Pauli) -> Pauli {
        Pauli::from_xz(self.has_x() ^ rhs.has_x(), self.has_z() ^ rhs.has_z())
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pauli::I => "I",
            Pauli::X => "X",
            Pauli::Y => "Y",
            Pauli::Z => "Z",
        };
        f.write_str(s)
    }
}

/// The measurement basis of a stabilizer (or a memory experiment).
///
/// Z-type stabilizers detect X errors and vice versa. The Astrea paper runs
/// Z-basis memory experiments and decodes the Z-stabilizer graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Basis {
    /// The X basis.
    X,
    /// The Z basis.
    Z,
}

impl Basis {
    /// The opposite basis.
    ///
    /// ```
    /// use surface_code::Basis;
    /// assert_eq!(Basis::X.conjugate(), Basis::Z);
    /// ```
    #[inline]
    pub fn conjugate(self) -> Basis {
        match self {
            Basis::X => Basis::Z,
            Basis::Z => Basis::X,
        }
    }

    /// The Pauli error type *detected* by stabilizers of this basis.
    ///
    /// Z stabilizers detect X errors, X stabilizers detect Z errors.
    #[inline]
    pub fn detected_error(self) -> Pauli {
        match self {
            Basis::X => Pauli::Z,
            Basis::Z => Pauli::X,
        }
    }
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basis::X => f.write_str("X"),
            Basis::Z => f.write_str("Z"),
        }
    }
}

/// A position on the doubled lattice.
///
/// Data qubits sit at odd/odd coordinates; stabilizer ancillas sit at
/// even/even coordinates. Using doubled coordinates keeps all positions
/// integral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Doubled row coordinate.
    pub row: i32,
    /// Doubled column coordinate.
    pub col: i32,
}

impl Coord {
    /// Creates a coordinate.
    #[inline]
    pub fn new(row: i32, col: i32) -> Coord {
        Coord { row, col }
    }

    /// Offsets this coordinate by `(dr, dc)`.
    #[inline]
    pub fn offset(self, dr: i32, dc: i32) -> Coord {
        Coord::new(self.row + dr, self.col + dc)
    }

    /// Manhattan (L1) distance to another coordinate.
    ///
    /// ```
    /// use surface_code::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(2, -3)), 5);
    /// ```
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Returns `true` if this is a data-qubit position (odd/odd).
    #[inline]
    pub fn is_data(self) -> bool {
        self.row.rem_euclid(2) == 1 && self.col.rem_euclid(2) == 1
    }

    /// Returns `true` if this is an ancilla position (even/even).
    #[inline]
    pub fn is_ancilla(self) -> bool {
        self.row.rem_euclid(2) == 0 && self.col.rem_euclid(2) == 0
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_group_product() {
        use Pauli::*;
        assert_eq!(X * X, I);
        assert_eq!(Y * Y, I);
        assert_eq!(Z * Z, I);
        assert_eq!(X * Z, Y);
        assert_eq!(Z * X, Y);
        assert_eq!(X * Y, Z);
        assert_eq!(Y * Z, X);
        for p in Pauli::ALL {
            assert_eq!(p * I, p);
            assert_eq!(I * p, p);
        }
    }

    #[test]
    fn pauli_commutation() {
        use Pauli::*;
        assert!(X.anticommutes_with(Z));
        assert!(X.anticommutes_with(Y));
        assert!(Y.anticommutes_with(Z));
        for p in Pauli::ALL {
            assert!(!p.anticommutes_with(p));
            assert!(!p.anticommutes_with(I));
            assert!(!I.anticommutes_with(p));
        }
    }

    #[test]
    fn pauli_xz_roundtrip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_xz(p.has_x(), p.has_z()), p);
        }
    }

    #[test]
    fn basis_conjugate_is_involutive() {
        assert_eq!(Basis::X.conjugate().conjugate(), Basis::X);
        assert_eq!(Basis::Z.conjugate().conjugate(), Basis::Z);
    }

    #[test]
    fn basis_detected_error() {
        assert_eq!(Basis::Z.detected_error(), Pauli::X);
        assert_eq!(Basis::X.detected_error(), Pauli::Z);
    }

    #[test]
    fn coord_parity_helpers() {
        assert!(Coord::new(1, 3).is_data());
        assert!(!Coord::new(1, 2).is_data());
        assert!(Coord::new(2, 4).is_ancilla());
        assert!(!Coord::new(2, 3).is_ancilla());
    }

    #[test]
    fn coord_manhattan_is_symmetric() {
        let a = Coord::new(1, 5);
        let b = Coord::new(4, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(Pauli::Y.to_string(), "Y");
        assert_eq!(Basis::Z.to_string(), "Z");
        assert_eq!(Coord::new(2, 3).to_string(), "(2, 3)");
    }
}
