//! Rotated surface code lattices, stabilizer schedules, and logical operators.
//!
//! This crate models the *static* structure of a rotated surface code of odd
//! distance `d`: the placement of data and parity (ancilla) qubits, the X/Z
//! stabilizer supports, the four-step CNOT schedule used during syndrome
//! extraction, and the supports of the logical operators.
//!
//! The conventions follow the Astrea paper (ISCA 2023) and the standard
//! rotated-code literature:
//!
//! * `d * d` data qubits on a square grid, at doubled coordinates
//!   `(2r + 1, 2c + 1)` for `r, c ∈ [0, d)`.
//! * `d² − 1` stabilizers on the cell corners at doubled coordinates
//!   `(2r, 2c)`, half X-type and half Z-type in a checkerboard.
//! * X-type weight-2 stabilizers live on the **left/right** boundaries,
//!   Z-type weight-2 stabilizers on the **top/bottom** boundaries.
//! * Logical Z is a Z string along data **column 0**; logical X is an X
//!   string along data **row 0**.
//!
//! # Examples
//!
//! ```
//! use surface_code::SurfaceCode;
//!
//! let code = SurfaceCode::new(5).unwrap();
//! assert_eq!(code.num_data_qubits(), 25);
//! assert_eq!(code.num_stabilizers(), 24);
//! assert_eq!(code.z_stabilizers().count(), 12);
//! // Table 1 of the paper: syndrome-vector length for the Z graph.
//! assert_eq!(code.resources().syndrome_len_per_basis, 72);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf2;
mod lattice;
mod pauli;
mod repetition;
mod resources;

pub use lattice::{Stabilizer, SurfaceCode, SCHEDULE_STEPS};
pub use pauli::{Basis, Coord, Pauli};
pub use repetition::RepetitionCode;
pub use resources::CodeResources;

use std::error::Error;
use std::fmt;

/// Error returned when constructing a [`SurfaceCode`] with an invalid distance.
///
/// Rotated surface codes require an odd distance of at least 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDistance(pub usize);

impl fmt::Display for InvalidDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid surface code distance {}: must be odd and at least 3",
            self.0
        )
    }
}

impl Error for InvalidDistance {}
