//! Resource accounting for surface code logical qubits (the paper's Table 1).

use std::fmt;

/// Physical resources required by one surface-code logical qubit, and the
/// length of the per-basis syndrome vector a decoder must handle.
///
/// This reproduces Table 1 of the Astrea paper:
///
/// ```
/// use surface_code::CodeResources;
///
/// let r = CodeResources::for_distance(7);
/// assert_eq!(r.data_qubits, 49);
/// assert_eq!(r.parity_qubits_x, 24);
/// assert_eq!(r.parity_qubits_z, 24);
/// assert_eq!(r.total_qubits, 97);
/// assert_eq!(r.syndrome_len_per_basis, 192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeResources {
    /// Code distance `d`.
    pub distance: usize,
    /// Number of data qubits, `d²`.
    pub data_qubits: usize,
    /// Number of X-type parity qubits, `(d² − 1) / 2`.
    pub parity_qubits_x: usize,
    /// Number of Z-type parity qubits, `(d² − 1) / 2`.
    pub parity_qubits_z: usize,
    /// Total physical qubits, `2d² − 1`.
    pub total_qubits: usize,
    /// Length of the syndrome vector per basis: `(d² − 1)/2` detectors per
    /// round × `(d + 1)` layers (`d` measurement rounds plus the final
    /// data-measurement layer).
    pub syndrome_len_per_basis: usize,
}

impl CodeResources {
    /// Computes the resource row for a distance-`d` rotated surface code.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is even or less than 3 (such codes do not exist
    /// in the rotated family).
    pub fn for_distance(distance: usize) -> CodeResources {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "distance must be odd and ≥ 3, got {distance}"
        );
        let d2 = distance * distance;
        let per_basis = (d2 - 1) / 2;
        CodeResources {
            distance,
            data_qubits: d2,
            parity_qubits_x: per_basis,
            parity_qubits_z: per_basis,
            total_qubits: 2 * d2 - 1,
            syndrome_len_per_basis: per_basis * (distance + 1),
        }
    }
}

impl fmt::Display for CodeResources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={}: {} data + {} parity ({} X + {} Z) = {} qubits, syndrome length {}/{} (X/Z)",
            self.distance,
            self.data_qubits,
            self.parity_qubits_x + self.parity_qubits_z,
            self.parity_qubits_x,
            self.parity_qubits_z,
            self.total_qubits,
            self.syndrome_len_per_basis,
            self.syndrome_len_per_basis,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_1() {
        // (d, data, parity_total, total, syndrome_len)
        let rows = [
            (3, 9, 8, 17, 16),
            (5, 25, 24, 49, 72),
            (7, 49, 48, 97, 192),
            (9, 81, 80, 161, 400),
        ];
        for (d, data, parity, total, synd) in rows {
            let r = CodeResources::for_distance(d);
            assert_eq!(r.data_qubits, data);
            assert_eq!(r.parity_qubits_x + r.parity_qubits_z, parity);
            assert_eq!(r.total_qubits, total);
            assert_eq!(r.syndrome_len_per_basis, synd);
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn rejects_even_distance() {
        CodeResources::for_distance(4);
    }

    #[test]
    fn display_mentions_distance() {
        let s = CodeResources::for_distance(5).to_string();
        assert!(s.contains("d=5"));
        assert!(s.contains("72"));
    }
}
