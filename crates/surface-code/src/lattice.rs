//! Rotated surface code lattice construction.

use crate::pauli::{Basis, Coord};
use crate::resources::CodeResources;
use crate::InvalidDistance;

/// Number of CNOT time-steps in one syndrome-extraction round.
pub const SCHEDULE_STEPS: usize = 4;

/// Offsets (in doubled coordinates) from an ancilla to its data neighbors,
/// in the order the **X stabilizers** interact with them.
///
/// X stabilizers sweep vertically first (NW, SW, NE, SE) so that hook errors
/// on the ancilla spread to a vertical pair of data qubits, perpendicular to
/// the horizontal logical-X string — preserving the code distance.
const X_SCHEDULE: [(i32, i32); SCHEDULE_STEPS] = [(-1, -1), (1, -1), (-1, 1), (1, 1)];

/// Offsets for the **Z stabilizers**, which sweep horizontally first
/// (NW, NE, SW, SE) so Z-hook errors spread to a horizontal pair,
/// perpendicular to the vertical logical-Z string.
const Z_SCHEDULE: [(i32, i32); SCHEDULE_STEPS] = [(-1, -1), (-1, 1), (1, -1), (1, 1)];

/// One stabilizer (parity check) of the rotated surface code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// X-type or Z-type.
    pub basis: Basis,
    /// Position of the measurement ancilla on the doubled lattice.
    pub ancilla: Coord,
    /// Indices (into [`SurfaceCode::data_coords`]) of the 2 or 4 data qubits
    /// in the stabilizer's support.
    pub data: Vec<usize>,
    /// For each of the four schedule steps, the data-qubit index this
    /// stabilizer interacts with at that step (`None` if the neighbor falls
    /// outside the lattice).
    pub schedule: [Option<usize>; SCHEDULE_STEPS],
}

impl Stabilizer {
    /// The weight (number of data qubits) of this stabilizer: 2 on a
    /// boundary, 4 in the bulk.
    pub fn weight(&self) -> usize {
        self.data.len()
    }
}

/// A rotated surface code of odd distance `d ≥ 3`.
///
/// See the [crate docs](crate) for layout conventions. Construction is `O(d²)`
/// and validated by internal invariants (stabilizer counts, commutation).
///
/// ```
/// use surface_code::{Basis, SurfaceCode};
///
/// let code = SurfaceCode::new(3)?;
/// assert_eq!(code.distance(), 3);
/// assert_eq!(code.stabilizers().len(), 8);
/// assert!(code.stabilizers().iter().all(|s| s.weight() == 2 || s.weight() == 4));
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurfaceCode {
    distance: usize,
    data_coords: Vec<Coord>,
    stabilizers: Vec<Stabilizer>,
}

impl SurfaceCode {
    /// Builds the rotated surface code of the given distance.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistance`] unless `distance` is odd and at least 3.
    pub fn new(distance: usize) -> Result<SurfaceCode, InvalidDistance> {
        if distance < 3 || distance.is_multiple_of(2) {
            return Err(InvalidDistance(distance));
        }
        let d = distance as i32;

        // Data qubit (r, c) lives at doubled coordinate (2r + 1, 2c + 1) and
        // has index r * d + c.
        let mut data_coords = Vec::with_capacity(distance * distance);
        for r in 0..d {
            for c in 0..d {
                data_coords.push(Coord::new(2 * r + 1, 2 * c + 1));
            }
        }

        let data_index = |r: i32, c: i32| -> Option<usize> {
            (r >= 0 && r < d && c >= 0 && c < d).then(|| (r * d + c) as usize)
        };

        // Stabilizer cells live on the corner grid (r, c) ∈ [0, d]².
        // Z-type iff (r + c) is even. Interior cells are always kept;
        // boundary cells are kept only when their type matches the boundary
        // (Z on top/bottom rows, X on left/right columns); corners are never
        // kept.
        let mut stabilizers = Vec::with_capacity(distance * distance - 1);
        for r in 0..=d {
            for c in 0..=d {
                let basis = if (r + c) % 2 == 0 { Basis::Z } else { Basis::X };
                let on_row_boundary = r == 0 || r == d;
                let on_col_boundary = c == 0 || c == d;
                let keep = match (on_row_boundary, on_col_boundary) {
                    (false, false) => true,
                    (true, true) => false,
                    (true, false) => basis == Basis::Z,
                    (false, true) => basis == Basis::X,
                };
                if !keep {
                    continue;
                }

                let schedule_offsets = match basis {
                    Basis::X => &X_SCHEDULE,
                    Basis::Z => &Z_SCHEDULE,
                };
                let mut schedule = [None; SCHEDULE_STEPS];
                for (slot, (dr, dc)) in schedule.iter_mut().zip(schedule_offsets) {
                    // Ancilla (2r, 2c) + offset (±1, ±1) is the data qubit at
                    // grid position (r − 1 or r, c − 1 or c).
                    *slot = data_index(r + (dr - 1) / 2, c + (dc - 1) / 2);
                }
                let data: Vec<usize> = schedule.iter().flatten().copied().collect();
                debug_assert!(data.len() == 2 || data.len() == 4);

                stabilizers.push(Stabilizer {
                    basis,
                    ancilla: Coord::new(2 * r, 2 * c),
                    data,
                    schedule,
                });
            }
        }

        let code = SurfaceCode {
            distance,
            data_coords,
            stabilizers,
        };
        debug_assert_eq!(code.num_stabilizers(), distance * distance - 1);
        Ok(code)
    }

    /// The code distance `d`.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits, `d²`.
    pub fn num_data_qubits(&self) -> usize {
        self.data_coords.len()
    }

    /// Number of stabilizers (parity qubits), `d² − 1`.
    pub fn num_stabilizers(&self) -> usize {
        self.stabilizers.len()
    }

    /// Doubled-lattice coordinates of every data qubit, indexed by
    /// `row * d + col`.
    pub fn data_coords(&self) -> &[Coord] {
        &self.data_coords
    }

    /// All stabilizers, X and Z interleaved in lattice order.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabilizers
    }

    /// Iterator over the Z-type stabilizers with their global stabilizer
    /// indices, in lattice order.
    pub fn z_stabilizers(&self) -> impl Iterator<Item = (usize, &Stabilizer)> {
        self.stabilizers_of(Basis::Z)
    }

    /// Iterator over the X-type stabilizers with their global stabilizer
    /// indices, in lattice order.
    pub fn x_stabilizers(&self) -> impl Iterator<Item = (usize, &Stabilizer)> {
        self.stabilizers_of(Basis::X)
    }

    /// Iterator over the stabilizers of one basis with their global indices.
    pub fn stabilizers_of(&self, basis: Basis) -> impl Iterator<Item = (usize, &Stabilizer)> {
        self.stabilizers
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.basis == basis)
    }

    /// Data-qubit indices in the support of logical Z (data column 0).
    ///
    /// An X-error chain crossing this column flips the logical Z outcome.
    pub fn logical_z_support(&self) -> Vec<usize> {
        (0..self.distance).map(|r| r * self.distance).collect()
    }

    /// Data-qubit indices in the support of logical X (data row 0).
    pub fn logical_x_support(&self) -> Vec<usize> {
        (0..self.distance).collect()
    }

    /// Resource summary for this code (the paper's Table 1 row).
    pub fn resources(&self) -> CodeResources {
        CodeResources::for_distance(self.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_distances() -> impl Iterator<Item = SurfaceCode> {
        [3usize, 5, 7, 9, 11]
            .into_iter()
            .map(|d| SurfaceCode::new(d).unwrap())
    }

    #[test]
    fn rejects_invalid_distances() {
        assert_eq!(SurfaceCode::new(0).unwrap_err(), InvalidDistance(0));
        assert!(SurfaceCode::new(1).is_err());
        assert!(SurfaceCode::new(2).is_err());
        assert!(SurfaceCode::new(4).is_err());
        assert!(SurfaceCode::new(3).is_ok());
    }

    #[test]
    fn stabilizer_counts_match_table_1() {
        for code in all_distances() {
            let d = code.distance();
            assert_eq!(code.num_data_qubits(), d * d);
            assert_eq!(code.num_stabilizers(), d * d - 1);
            assert_eq!(code.z_stabilizers().count(), (d * d - 1) / 2);
            assert_eq!(code.x_stabilizers().count(), (d * d - 1) / 2);
        }
    }

    #[test]
    fn stabilizer_weights_are_2_or_4() {
        for code in all_distances() {
            for s in code.stabilizers() {
                assert!(
                    s.weight() == 2 || s.weight() == 4,
                    "stabilizer at {} has weight {}",
                    s.ancilla,
                    s.weight()
                );
            }
        }
    }

    #[test]
    fn bulk_stabilizers_have_weight_4() {
        for code in all_distances() {
            let d = 2 * code.distance() as i32;
            for s in code.stabilizers() {
                let interior = s.ancilla.row > 0
                    && s.ancilla.row < d
                    && s.ancilla.col > 0
                    && s.ancilla.col < d;
                if interior {
                    assert_eq!(s.weight(), 4, "bulk stabilizer at {}", s.ancilla);
                }
            }
        }
    }

    #[test]
    fn weight_2_x_stabilizers_only_on_left_right() {
        for code in all_distances() {
            let d = 2 * code.distance() as i32;
            for (_, s) in code.x_stabilizers() {
                if s.weight() == 2 {
                    assert!(
                        s.ancilla.col == 0 || s.ancilla.col == d,
                        "weight-2 X stabilizer not on a vertical boundary: {}",
                        s.ancilla
                    );
                }
            }
            for (_, s) in code.z_stabilizers() {
                if s.weight() == 2 {
                    assert!(
                        s.ancilla.row == 0 || s.ancilla.row == d,
                        "weight-2 Z stabilizer not on a horizontal boundary: {}",
                        s.ancilla
                    );
                }
            }
        }
    }

    #[test]
    fn x_and_z_stabilizers_commute() {
        // Every X stabilizer must overlap every Z stabilizer on an even
        // number of data qubits.
        for code in all_distances() {
            for (_, x) in code.x_stabilizers() {
                for (_, z) in code.z_stabilizers() {
                    let overlap = x.data.iter().filter(|q| z.data.contains(q)).count();
                    assert_eq!(
                        overlap % 2,
                        0,
                        "X at {} and Z at {} overlap on {} qubits",
                        x.ancilla,
                        z.ancilla,
                        overlap
                    );
                }
            }
        }
    }

    #[test]
    fn logical_z_commutes_with_all_x_stabilizers() {
        for code in all_distances() {
            let zl = code.logical_z_support();
            assert_eq!(zl.len(), code.distance());
            for (_, x) in code.x_stabilizers() {
                let overlap = x.data.iter().filter(|q| zl.contains(q)).count();
                assert_eq!(
                    overlap % 2,
                    0,
                    "logical Z anticommutes with X at {}",
                    x.ancilla
                );
            }
        }
    }

    #[test]
    fn logical_x_commutes_with_all_z_stabilizers() {
        for code in all_distances() {
            let xl = code.logical_x_support();
            assert_eq!(xl.len(), code.distance());
            for (_, z) in code.z_stabilizers() {
                let overlap = z.data.iter().filter(|q| xl.contains(q)).count();
                assert_eq!(
                    overlap % 2,
                    0,
                    "logical X anticommutes with Z at {}",
                    z.ancilla
                );
            }
        }
    }

    #[test]
    fn logical_x_and_z_anticommute() {
        // They overlap only on data qubit (0, 0): odd overlap.
        for code in all_distances() {
            let zl = code.logical_z_support();
            let xl = code.logical_x_support();
            let overlap = xl.iter().filter(|q| zl.contains(q)).count();
            assert_eq!(overlap, 1);
        }
    }

    #[test]
    fn schedule_has_no_data_qubit_conflicts() {
        // At every time step, each data qubit interacts with at most one
        // ancilla.
        for code in all_distances() {
            for step in 0..SCHEDULE_STEPS {
                let mut seen = vec![false; code.num_data_qubits()];
                for s in code.stabilizers() {
                    if let Some(q) = s.schedule[step] {
                        assert!(
                            !seen[q],
                            "data qubit {q} touched twice at step {step} (d={})",
                            code.distance()
                        );
                        seen[q] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_covers_exactly_the_support() {
        for code in all_distances() {
            for s in code.stabilizers() {
                let scheduled: Vec<usize> = s.schedule.iter().flatten().copied().collect();
                assert_eq!(scheduled, s.data);
            }
        }
    }

    #[test]
    fn every_data_qubit_is_checked_by_both_bases() {
        // Each data qubit must be in the support of at least one X and one Z
        // stabilizer (otherwise errors on it would be undetectable).
        for code in all_distances() {
            for q in 0..code.num_data_qubits() {
                let x = code.x_stabilizers().any(|(_, s)| s.data.contains(&q));
                let z = code.z_stabilizers().any(|(_, s)| s.data.contains(&q));
                assert!(x, "data qubit {q} unchecked by X stabilizers");
                assert!(z, "data qubit {q} unchecked by Z stabilizers");
            }
        }
    }

    #[test]
    fn data_coords_are_odd_and_unique() {
        for code in all_distances() {
            let mut coords = code.data_coords().to_vec();
            assert!(coords.iter().all(|c| c.is_data()));
            coords.sort();
            coords.dedup();
            assert_eq!(coords.len(), code.num_data_qubits());
        }
    }

    #[test]
    fn ancilla_coords_are_even_and_unique() {
        for code in all_distances() {
            let mut coords: Vec<Coord> = code.stabilizers().iter().map(|s| s.ancilla).collect();
            assert!(coords.iter().all(|c| c.is_ancilla()));
            coords.sort();
            coords.dedup();
            assert_eq!(coords.len(), code.num_stabilizers());
        }
    }

    #[test]
    fn single_x_error_flips_at_most_two_z_stabilizers() {
        for code in all_distances() {
            for q in 0..code.num_data_qubits() {
                let flips = code
                    .z_stabilizers()
                    .filter(|(_, s)| s.data.contains(&q))
                    .count();
                assert!(
                    (1..=2).contains(&flips),
                    "X error on data {q} flips {flips} Z stabilizers"
                );
            }
        }
    }
}

#[cfg(test)]
mod group_structure_tests {
    //! GF(2) validation of the code's group structure: the d² − 1
    //! stabilizers are independent, and the logical operators are not
    //! products of stabilizers (they genuinely act on the logical qubit).

    use super::*;
    use crate::gf2::BinaryMatrix;

    fn stabilizer_matrix(code: &SurfaceCode, basis: Basis) -> BinaryMatrix {
        BinaryMatrix::from_supports(
            code.stabilizers_of(basis).map(|(_, s)| s.data.clone()),
            code.num_data_qubits(),
        )
    }

    #[test]
    fn stabilizers_are_independent() {
        // d² − 1 independent stabilizers over d² qubits leave exactly one
        // logical qubit — the defining count.
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::new(d).unwrap();
            let per_basis = (d * d - 1) / 2;
            assert_eq!(
                stabilizer_matrix(&code, Basis::X).rank(),
                per_basis,
                "X rank, d={d}"
            );
            assert_eq!(
                stabilizer_matrix(&code, Basis::Z).rank(),
                per_basis,
                "Z rank, d={d}"
            );
        }
    }

    #[test]
    fn logicals_are_outside_the_stabilizer_group() {
        for d in [3usize, 5, 7] {
            let code = SurfaceCode::new(d).unwrap();
            let z_stabs = stabilizer_matrix(&code, Basis::Z);
            let x_stabs = stabilizer_matrix(&code, Basis::X);
            assert!(
                !z_stabs.row_space_contains(code.logical_z_support()),
                "logical Z is a stabilizer product at d={d}"
            );
            assert!(
                !x_stabs.row_space_contains(code.logical_x_support()),
                "logical X is a stabilizer product at d={d}"
            );
        }
    }

    #[test]
    fn logical_z_times_z_stabilizers_stays_nontrivial() {
        // Multiplying logical Z by any stabilizer gives another
        // representative of the same logical class — never the identity.
        let code = SurfaceCode::new(5).unwrap();
        let z_stabs = stabilizer_matrix(&code, Basis::Z);
        let zl = code.logical_z_support();
        for (_, s) in code.z_stabilizers() {
            let mut product: Vec<usize> = zl.clone();
            for &q in &s.data {
                if let Some(pos) = product.iter().position(|&x| x == q) {
                    product.remove(pos);
                } else {
                    product.push(q);
                }
            }
            assert!(!product.is_empty());
            assert!(!z_stabs.row_space_contains(product));
        }
    }
}
