//! Repetition codes: the 1-D little sibling of the surface code.
//!
//! Every hardware QEC demonstration the paper builds on ran repetition
//! codes first (Google's 2021 bit-flip experiment; LILLIPUT's evaluation
//! platform), because a distance-d repetition code needs only `2d − 1`
//! qubits and protects against one Pauli species. The decoding problem is
//! the same matching problem in one dimension, so the entire decoder stack
//! in this workspace runs on it unchanged — useful both as a bring-up
//! target and as the simplest non-trivial test of the circuit/DEM/decoder
//! pipeline.

use crate::pauli::{Basis, Coord};
use crate::InvalidDistance;

/// A distance-`d` bit-flip repetition code: `d` data qubits in a line,
/// `d − 1` ZZ parity checks between neighbors.
///
/// ```
/// use surface_code::RepetitionCode;
///
/// let code = RepetitionCode::new(5)?;
/// assert_eq!(code.num_data_qubits(), 5);
/// assert_eq!(code.num_stabilizers(), 4);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct RepetitionCode {
    distance: usize,
}

impl RepetitionCode {
    /// Builds a repetition code of the given distance.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistance`] unless `distance ≥ 2`. (Unlike the
    /// rotated surface code, even distances are legal here.)
    pub fn new(distance: usize) -> Result<RepetitionCode, InvalidDistance> {
        if distance < 2 {
            return Err(InvalidDistance(distance));
        }
        Ok(RepetitionCode { distance })
    }

    /// The code distance `d`.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits, `d`.
    pub fn num_data_qubits(&self) -> usize {
        self.distance
    }

    /// Number of ZZ parity checks, `d − 1`.
    pub fn num_stabilizers(&self) -> usize {
        self.distance - 1
    }

    /// The two data qubits checked by stabilizer `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s ≥ d − 1`.
    pub fn stabilizer_support(&self, s: usize) -> [usize; 2] {
        assert!(s < self.num_stabilizers(), "stabilizer {s} out of range");
        [s, s + 1]
    }

    /// The measurement basis of every check (always Z for the bit-flip
    /// code).
    pub fn basis(&self) -> Basis {
        Basis::Z
    }

    /// Doubled-lattice coordinate of data qubit `q` (a 1-D line).
    pub fn data_coord(&self, q: usize) -> Coord {
        Coord::new(1, 2 * q as i32 + 1)
    }

    /// Doubled-lattice coordinate of the ancilla for stabilizer `s`.
    pub fn ancilla_coord(&self, s: usize) -> Coord {
        Coord::new(0, 2 * s as i32 + 2)
    }

    /// Support of the logical Z operator (any single data qubit
    /// represents it; by convention qubit 0).
    pub fn logical_z_support(&self) -> Vec<usize> {
        vec![0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        for d in [2usize, 3, 5, 9] {
            let c = RepetitionCode::new(d).unwrap();
            assert_eq!(c.num_data_qubits(), d);
            assert_eq!(c.num_stabilizers(), d - 1);
        }
    }

    #[test]
    fn rejects_degenerate_distance() {
        assert!(RepetitionCode::new(0).is_err());
        assert!(RepetitionCode::new(1).is_err());
    }

    #[test]
    fn supports_chain_adjacent_qubits() {
        let c = RepetitionCode::new(4).unwrap();
        assert_eq!(c.stabilizer_support(0), [0, 1]);
        assert_eq!(c.stabilizer_support(2), [2, 3]);
    }

    #[test]
    fn every_qubit_is_checked() {
        let c = RepetitionCode::new(6).unwrap();
        for q in 0..c.num_data_qubits() {
            let checked = (0..c.num_stabilizers()).any(|s| c.stabilizer_support(s).contains(&q));
            assert!(checked, "qubit {q} unchecked");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn support_bounds_checked() {
        RepetitionCode::new(3).unwrap().stabilizer_support(2);
    }
}
