//! GF(2) linear algebra over Pauli supports, used to validate the code's
//! group structure: stabilizer independence, logical operators lying
//! outside the stabilizer group, and the symplectic commutation pairing.

/// A dense GF(2) matrix, rows bit-packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMatrix {
    rows: Vec<Vec<u64>>,
    cols: usize,
}

impl BinaryMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> BinaryMatrix {
        BinaryMatrix {
            rows: vec![vec![0; cols.div_ceil(64)]; rows],
            cols,
        }
    }

    /// Builds a matrix from an iterator of row supports (column indices).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_supports<I, S>(supports: I, cols: usize) -> BinaryMatrix
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = usize>,
    {
        let mut rows = Vec::new();
        for support in supports {
            let mut row = vec![0u64; cols.div_ceil(64)];
            for c in support {
                assert!(c < cols, "column {c} out of range ({cols} columns)");
                row[c / 64] ^= 1 << (c % 64);
            }
            rows.push(row);
        }
        BinaryMatrix { rows, cols }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r][c / 64] >> (c % 64) & 1 == 1
    }

    /// The rank over GF(2) (destructive elimination on a copy).
    pub fn rank(&self) -> usize {
        let mut m = self.rows.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            let (w, b) = (col / 64, col % 64);
            let Some(pivot) = (rank..m.len()).find(|&r| m[r][w] >> b & 1 == 1) else {
                continue;
            };
            m.swap(rank, pivot);
            let pivot_row = m[rank].clone();
            for (r, row) in m.iter_mut().enumerate() {
                if r != rank && row[w] >> b & 1 == 1 {
                    for (a, &p) in row.iter_mut().zip(&pivot_row) {
                        *a ^= p;
                    }
                }
            }
            rank += 1;
            if rank == m.len() {
                break;
            }
        }
        rank
    }

    /// Whether `vector` (a column-index support) lies in the row space.
    pub fn row_space_contains<S: IntoIterator<Item = usize>>(&self, vector: S) -> bool {
        let with = {
            let mut m = self.clone();
            let mut row = vec![0u64; self.cols.div_ceil(64)];
            for c in vector {
                assert!(c < self.cols, "column {c} out of range");
                row[c / 64] ^= 1 << (c % 64);
            }
            m.rows.push(row);
            m
        };
        with.rank() == self.rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_identity() {
        let m = BinaryMatrix::from_supports((0..5).map(|i| [i]), 5);
        assert_eq!(m.rank(), 5);
    }

    #[test]
    fn rank_detects_dependence() {
        // Row 2 = row 0 + row 1.
        let m = BinaryMatrix::from_supports(vec![vec![0, 1], vec![1, 2], vec![0, 2]], 3);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_of_zero_matrix() {
        assert_eq!(BinaryMatrix::zeros(4, 7).rank(), 0);
    }

    #[test]
    fn row_space_membership() {
        let m = BinaryMatrix::from_supports(vec![vec![0, 1], vec![1, 2]], 4);
        assert!(m.row_space_contains(vec![0, 2])); // sum of the two rows
        assert!(m.row_space_contains(vec![0, 1]));
        assert!(!m.row_space_contains(vec![3]));
        assert!(!m.row_space_contains(vec![0]));
    }

    #[test]
    fn wide_matrices_cross_word_boundaries() {
        let m = BinaryMatrix::from_supports(vec![vec![0, 70], vec![70, 130]], 200);
        assert_eq!(m.rank(), 2);
        assert!(m.row_space_contains(vec![0, 130]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_support() {
        BinaryMatrix::from_supports(vec![vec![5]], 5);
    }
}
