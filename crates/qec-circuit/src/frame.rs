//! Exact Pauli-frame Monte-Carlo sampling of a noisy Clifford circuit.

use crate::bittable::BitTable;
use crate::circuit::{Circuit, Op};
use rand::Rng;

/// A Pauli-frame simulator for one [`Circuit`].
///
/// Surface-code memory circuits are stabilizer circuits whose noiseless
/// measurement outcomes are either deterministic or irrelevant to the
/// declared detectors, so the effect of Pauli noise can be tracked exactly
/// by propagating an X/Z error frame through the circuit. A measurement
/// record is flipped precisely when the X frame is set on the measured
/// qubit. This is the same technique Stim uses for bulk sampling.
///
/// The simulator owns reusable buffers; one instance can sample any number
/// of shots.
///
/// ```
/// use qec_circuit::{build_memory_z_circuit, FrameSimulator, NoiseModel};
/// use surface_code::SurfaceCode;
/// use rand::SeedableRng;
///
/// let code = SurfaceCode::new(3)?;
/// let circuit = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
/// let mut sim = FrameSimulator::new(&circuit);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (detectors, obs) = sim.sample(&circuit, &mut rng);
/// assert!(detectors.iter().all(|&b| !b), "noiseless shots trigger nothing");
/// assert_eq!(obs, 0);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameSimulator {
    x_frame: Vec<bool>,
    z_frame: Vec<bool>,
    /// Measurement-record flips of the current shot, bit-packed (bit
    /// `r % 64` of word `r / 64` is record `r`).
    records: Vec<u64>,
    /// Row `d` marks the records detector `d` folds over; detector
    /// outcomes are the AND-popcount parity of a row against `records`.
    det_masks: BitTable,
    /// Row `i` marks the records observable `i` folds over.
    obs_masks: BitTable,
}

impl FrameSimulator {
    /// Creates a simulator sized for the given circuit, precomputing the
    /// packed record masks of its detectors and observables.
    pub fn new(circuit: &Circuit) -> FrameSimulator {
        let mut det_masks = BitTable::new(circuit.num_detectors(), circuit.num_records());
        for (d, det) in circuit.detectors().iter().enumerate() {
            for &r in &det.records {
                det_masks.toggle(d, r as usize);
            }
        }
        let mut obs_masks = BitTable::new(circuit.num_observables(), circuit.num_records());
        for (i, obs) in circuit.observables().iter().enumerate() {
            for &r in obs {
                obs_masks.toggle(i, r as usize);
            }
        }
        FrameSimulator {
            x_frame: vec![false; circuit.num_qubits()],
            z_frame: vec![false; circuit.num_qubits()],
            records: vec![0; circuit.num_records().div_ceil(64)],
            det_masks,
            obs_masks,
        }
    }

    /// Samples one shot, returning the detector outcomes and the observable
    /// flip mask (bit `i` set iff observable `i` flipped).
    ///
    /// Detector folds are word-parallel: each outcome is the parity of a
    /// precomputed record mask ANDed against the packed record words.
    ///
    /// # Panics
    ///
    /// Panics if `circuit`'s qubit, record, detector, or observable counts
    /// don't match the circuit this simulator was created for.
    pub fn sample<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) -> (Vec<bool>, u32) {
        assert_eq!(circuit.num_detectors(), self.det_masks.num_bits());
        assert_eq!(circuit.num_observables(), self.obs_masks.num_bits());
        self.sample_records(circuit, rng);
        let word_parity = |mask: &[u64], recs: &[u64]| {
            mask.iter()
                .zip(recs)
                .map(|(&m, &r)| (m & r).count_ones())
                .sum::<u32>()
                & 1
                == 1
        };
        let detectors = (0..self.det_masks.num_bits())
            .map(|d| word_parity(self.det_masks.row(d), &self.records))
            .collect();
        let mut obs_mask = 0u32;
        for i in 0..self.obs_masks.num_bits() {
            if word_parity(self.obs_masks.row(i), &self.records) {
                obs_mask |= 1 << i;
            }
        }
        (detectors, obs_mask)
    }

    /// Samples one shot and returns the raw measurement-record flips,
    /// bit-packed 64 records per word.
    pub fn sample_records<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) -> &[u64] {
        self.x_frame.fill(false);
        self.z_frame.fill(false);
        self.records.fill(0);
        let mut next_record = 0usize;

        for op in circuit.ops() {
            match *op {
                Op::ResetZ(q) => {
                    self.x_frame[q as usize] = false;
                    self.z_frame[q as usize] = false;
                }
                Op::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut self.x_frame[q], &mut self.z_frame[q]);
                }
                Op::Cnot(c, t) => {
                    let (c, t) = (c as usize, t as usize);
                    if self.x_frame[c] {
                        self.x_frame[t] = !self.x_frame[t];
                    }
                    if self.z_frame[t] {
                        self.z_frame[c] = !self.z_frame[c];
                    }
                }
                Op::MeasureZ(q) => {
                    if self.x_frame[q as usize] {
                        self.records[next_record / 64] |= 1u64 << (next_record % 64);
                    }
                    next_record += 1;
                }
                Op::Depolarize1 { q, p } => {
                    if rng.gen_bool(p) {
                        let q = q as usize;
                        match rng.gen_range(0..3u8) {
                            0 => self.x_frame[q] = !self.x_frame[q],
                            1 => {
                                self.x_frame[q] = !self.x_frame[q];
                                self.z_frame[q] = !self.z_frame[q];
                            }
                            _ => self.z_frame[q] = !self.z_frame[q],
                        }
                    }
                }
                Op::Depolarize2 { a, b, p } => {
                    if rng.gen_bool(p) {
                        // One of the 15 non-identity two-qubit Paulis,
                        // encoded as a nonzero 4-bit pattern
                        // (xa, za, xb, zb).
                        let pattern = rng.gen_range(1..16u8);
                        let (a, b) = (a as usize, b as usize);
                        if pattern & 1 != 0 {
                            self.x_frame[a] = !self.x_frame[a];
                        }
                        if pattern & 2 != 0 {
                            self.z_frame[a] = !self.z_frame[a];
                        }
                        if pattern & 4 != 0 {
                            self.x_frame[b] = !self.x_frame[b];
                        }
                        if pattern & 8 != 0 {
                            self.z_frame[b] = !self.z_frame[b];
                        }
                    }
                }
                Op::XError { q, p } => {
                    if rng.gen_bool(p) {
                        let q = q as usize;
                        self.x_frame[q] = !self.x_frame[q];
                    }
                }
                Op::Tick => {}
            }
        }
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::circuit::DetectorCoord;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA57EA)
    }

    #[test]
    fn noiseless_memory_circuit_is_silent() {
        for d in [3, 5, 7] {
            let code = SurfaceCode::new(d).unwrap();
            let circuit = build_memory_z_circuit(&code, d, NoiseModel::noiseless());
            let mut sim = FrameSimulator::new(&circuit);
            let mut rng = rng();
            for _ in 0..10 {
                let (dets, obs) = sim.sample(&circuit, &mut rng);
                assert!(dets.iter().all(|&b| !b));
                assert_eq!(obs, 0);
            }
        }
    }

    #[test]
    fn deterministic_x_error_flips_expected_records() {
        // X on qubit 0 then measure: record flips. Reset clears the frame.
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(0));
        c.push(Op::XError { q: 0, p: 1.0 });
        c.push(Op::MeasureZ(0));
        c.push(Op::ResetZ(0));
        c.push(Op::MeasureZ(0));
        let mut sim = FrameSimulator::new(&c);
        let recs = sim.sample_records(&c, &mut rng()).to_vec();
        assert_eq!(recs, vec![0b01]);
    }

    #[test]
    fn hadamard_exchanges_x_and_z() {
        // Z error then H: becomes X, so the measurement flips.
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(0));
        // Inject a deterministic Z via two H-conjugated X errors: instead,
        // use H · X · H = Z: X error sandwiched by H leaves measurement
        // unflipped.
        c.push(Op::H(0));
        c.push(Op::XError { q: 0, p: 1.0 });
        c.push(Op::H(0));
        c.push(Op::MeasureZ(0));
        let mut sim = FrameSimulator::new(&c);
        let recs = sim.sample_records(&c, &mut rng()).to_vec();
        // H X H = Z, and Z does not flip a Z-basis measurement.
        assert_eq!(recs, vec![0]);
    }

    #[test]
    fn cnot_propagates_x_from_control_to_target() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(0));
        c.push(Op::ResetZ(1));
        c.push(Op::XError { q: 0, p: 1.0 });
        c.push(Op::Cnot(0, 1));
        c.push(Op::MeasureZ(0));
        c.push(Op::MeasureZ(1));
        let mut sim = FrameSimulator::new(&c);
        let recs = sim.sample_records(&c, &mut rng()).to_vec();
        assert_eq!(recs, vec![0b11]);
    }

    #[test]
    fn cnot_does_not_propagate_x_from_target() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(0));
        c.push(Op::ResetZ(1));
        c.push(Op::XError { q: 1, p: 1.0 });
        c.push(Op::Cnot(0, 1));
        c.push(Op::MeasureZ(0));
        c.push(Op::MeasureZ(1));
        let mut sim = FrameSimulator::new(&c);
        let recs = sim.sample_records(&c, &mut rng()).to_vec();
        assert_eq!(recs, vec![0b10]);
    }

    #[test]
    fn single_data_x_error_flips_at_most_two_detectors_per_layer() {
        // Build a noiseless circuit, then inject one X error on a data qubit
        // in the middle by splicing an XError op after the first round's
        // Tick. Every detector flip pattern must have weight 1 or 2.
        let code = SurfaceCode::new(3).unwrap();
        let clean = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
        for data_q in 0..code.num_data_qubits() {
            let mut c = Circuit::new(clean.num_qubits());
            let mut ticks = 0;
            for op in clean.ops() {
                if let Op::Tick = op {
                    ticks += 1;
                    c.push(*op);
                    if ticks == 2 {
                        c.push(Op::XError {
                            q: data_q as u32,
                            p: 1.0,
                        });
                    }
                } else {
                    c.push(*op);
                }
            }
            for det in clean.detectors() {
                c.push_detector(det.records.clone(), DetectorCoord::default());
            }
            for obs in clean.observables() {
                c.push_observable(obs.clone());
            }
            let mut sim = FrameSimulator::new(&c);
            let (dets, _) = sim.sample(&c, &mut rng());
            let weight = dets.iter().filter(|&&b| b).count();
            assert!(
                (1..=2).contains(&weight),
                "X on data {data_q} flipped {weight} detectors"
            );
        }
    }

    #[test]
    fn logical_x_string_flips_observable_but_no_detectors() {
        // A full row of X errors is a logical X: it must flip the observable
        // while remaining invisible to every detector.
        let code = SurfaceCode::new(3).unwrap();
        let clean = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
        let mut c = Circuit::new(clean.num_qubits());
        let mut ticks = 0;
        for op in clean.ops() {
            c.push(*op);
            if let Op::Tick = op {
                ticks += 1;
                if ticks == 1 {
                    for &q in &code.logical_x_support() {
                        c.push(Op::XError {
                            q: q as u32,
                            p: 1.0,
                        });
                    }
                }
            }
        }
        for det in clean.detectors() {
            c.push_detector(det.records.clone(), DetectorCoord::default());
        }
        for obs in clean.observables() {
            c.push_observable(obs.clone());
        }
        let mut sim = FrameSimulator::new(&c);
        let (dets, obs) = sim.sample(&c, &mut rng());
        assert!(
            dets.iter().all(|&b| !b),
            "logical operator tripped a detector"
        );
        assert_eq!(obs, 1, "logical X must flip logical Z's outcome");
    }

    #[test]
    fn error_rate_scales_with_p() {
        // Sanity: the average number of triggered detectors grows with p.
        let code = SurfaceCode::new(3).unwrap();
        let mut rng = rng();
        let mut means = Vec::new();
        for p in [1e-3, 1e-2] {
            let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(p));
            let mut sim = FrameSimulator::new(&circuit);
            let mut total = 0usize;
            for _ in 0..2000 {
                let (dets, _) = sim.sample(&circuit, &mut rng);
                total += dets.iter().filter(|&&b| b).count();
            }
            means.push(total as f64 / 2000.0);
        }
        assert!(means[1] > 4.0 * means[0], "means: {means:?}");
    }
}
