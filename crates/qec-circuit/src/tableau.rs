//! A full stabilizer-tableau simulator (Aaronson–Gottesman / CHP).
//!
//! The Pauli-frame sampler in [`crate::frame`] is fast because it tracks
//! only *deviations* from a noiseless reference run — which is sound only
//! if every declared detector is deterministic in the absence of noise.
//! The frame sampler itself cannot check that assumption (noiseless frames
//! are identically zero whatever the circuit does). This module provides
//! the ground truth: a complete stabilizer simulation in the
//! Aaronson–Gottesman tableau representation, with genuinely random
//! measurement outcomes, against which the frame formalism is validated
//! (see the `determinism` and cross-validation tests).
//!
//! The simulator supports exactly the [`Op`] set of this crate's IR:
//! `R`, `H`, `CNOT`, `M`, the depolarizing channels, and `X_ERROR`.

use crate::circuit::{Circuit, Op};
use rand::Rng;

/// A stabilizer tableau over `n` qubits: `n` destabilizer and `n`
/// stabilizer generators, each a Pauli string with sign, stored bit-packed.
///
/// ```
/// use qec_circuit::TableauSimulator;
/// use qec_circuit::{Circuit, Op};
/// use rand::SeedableRng;
///
/// // A Bell pair: the two measurement outcomes are random but equal.
/// let mut c = Circuit::new(2);
/// c.push(Op::ResetZ(0));
/// c.push(Op::ResetZ(1));
/// c.push(Op::H(0));
/// c.push(Op::Cnot(0, 1));
/// c.push(Op::MeasureZ(0));
/// c.push(Op::MeasureZ(1));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// for _ in 0..10 {
///     let mut sim = TableauSimulator::new(2);
///     let records = sim.run(&c, &mut rng);
///     assert_eq!(records[0], records[1]);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TableauSimulator {
    n: usize,
    words: usize,
    /// `2n` rows; row `i < n` is the i-th destabilizer, row `n + i` the
    /// i-th stabilizer. Each row holds `words` x-words then `words`
    /// z-words.
    rows: Vec<u64>,
    /// Sign bit per row (phase `(-1)^r`).
    signs: Vec<bool>,
}

impl TableauSimulator {
    /// Creates the tableau for the all-|0⟩ state: destabilizers `Xᵢ`,
    /// stabilizers `Zᵢ`.
    pub fn new(n: usize) -> TableauSimulator {
        let words = n.div_ceil(64);
        let mut sim = TableauSimulator {
            n,
            words,
            rows: vec![0; 2 * n * 2 * words],
            signs: vec![false; 2 * n],
        };
        for i in 0..n {
            sim.set_x(i, i, true); // destabilizer i = X_i
            sim.set_z(n + i, i, true); // stabilizer i = Z_i
        }
        sim
    }

    #[inline]
    fn row_base(&self, row: usize) -> usize {
        row * 2 * self.words
    }

    #[inline]
    fn x(&self, row: usize, q: usize) -> bool {
        self.rows[self.row_base(row) + q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn z(&self, row: usize, q: usize) -> bool {
        self.rows[self.row_base(row) + self.words + q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, q: usize, v: bool) {
        let idx = self.row_base(row) + q / 64;
        if v {
            self.rows[idx] |= 1 << (q % 64);
        } else {
            self.rows[idx] &= !(1 << (q % 64));
        }
    }

    #[inline]
    fn set_z(&mut self, row: usize, q: usize, v: bool) {
        let idx = self.row_base(row) + self.words + q / 64;
        if v {
            self.rows[idx] |= 1 << (q % 64);
        } else {
            self.rows[idx] &= !(1 << (q % 64));
        }
    }

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let (x, z) = (self.x(row, q), self.z(row, q));
            if x && z {
                self.signs[row] = !self.signs[row];
            }
            self.set_x(row, q, z);
            self.set_z(row, q, x);
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        for row in 0..2 * self.n {
            let (xc, zc) = (self.x(row, c), self.z(row, c));
            let (xt, zt) = (self.x(row, t), self.z(row, t));
            if xc && zt && (xt == zc) {
                self.signs[row] = !self.signs[row];
            }
            self.set_x(row, t, xt ^ xc);
            self.set_z(row, c, zc ^ zt);
        }
    }

    /// Applies a Pauli X on `q`.
    pub fn pauli_x(&mut self, q: usize) {
        for row in 0..2 * self.n {
            if self.z(row, q) {
                self.signs[row] = !self.signs[row];
            }
        }
    }

    /// Applies a Pauli Z on `q`.
    pub fn pauli_z(&mut self, q: usize) {
        for row in 0..2 * self.n {
            if self.x(row, q) {
                self.signs[row] = !self.signs[row];
            }
        }
    }

    /// Measures `q` in the Z basis, consuming randomness only when the
    /// outcome is genuinely random.
    pub fn measure_z<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        // A random outcome iff some stabilizer anticommutes with Z_q.
        let pivot = (self.n..2 * self.n).find(|&row| self.x(row, q));
        match pivot {
            Some(p) => {
                // Random case: every other row anticommuting with Z_q is
                // multiplied by the pivot stabilizer.
                for row in 0..2 * self.n {
                    if row != p && self.x(row, q) {
                        self.row_mul(row, p);
                    }
                }
                // Destabilizer p−n becomes the old stabilizer p; the new
                // stabilizer is ±Z_q with a random sign.
                let (dst, src) = (p - self.n, p);
                self.copy_row(dst, src);
                self.clear_row(p);
                self.set_z(p, q, true);
                let outcome = rng.gen_bool(0.5);
                self.signs[p] = outcome;
                outcome
            }
            None => self.deterministic_outcome(q),
        }
    }

    /// The deterministic Z-measurement outcome of `q` (must only be called
    /// when no stabilizer anticommutes with `Z_q`).
    fn deterministic_outcome(&self, q: usize) -> bool {
        // Accumulate the product of stabilizers indicated by the
        // destabilizers that anticommute with Z_q; its sign is the outcome.
        let mut acc_x = vec![0u64; self.words];
        let mut acc_z = vec![0u64; self.words];
        let mut sign = false;
        for i in 0..self.n {
            if self.x(i, q) {
                sign ^= self.product_sign_into(&mut acc_x, &mut acc_z, self.n + i);
                sign ^= self.signs[self.n + i];
            }
        }
        sign
    }

    /// Multiplies the accumulator Pauli by row `src`, returning the extra
    /// sign bit produced by the Pauli product's phase (which is always ±1
    /// here because stabilizer products are Hermitian).
    fn product_sign_into(&self, acc_x: &mut [u64], acc_z: &mut [u64], src: usize) -> bool {
        // Phase exponent of i, mod 4, accumulated 2 bits at a time.
        let base = self.row_base(src);
        let mut phase: i32 = 0;
        for w in 0..self.words {
            let (x1, z1) = (self.rows[base + w], self.rows[base + self.words + w]);
            let (x2, z2) = (acc_x[w], acc_z[w]);
            // g() summed over the 64 lanes of this word.
            for bit in 0..64 {
                let (a, b) = ((x1 >> bit & 1) as u8, (z1 >> bit & 1) as u8);
                let (c, d) = ((x2 >> bit & 1) as u8, (z2 >> bit & 1) as u8);
                phase += g_phase(a, b, c, d);
            }
            acc_x[w] ^= x1;
            acc_z[w] ^= z1;
        }
        debug_assert!(phase.rem_euclid(2) == 0, "non-Hermitian stabilizer product");
        phase.rem_euclid(4) == 2
    }

    /// Row `dst` ← row `dst` · row `src` (Pauli product with sign
    /// tracking) — the CHP `rowsum`.
    fn row_mul(&mut self, dst: usize, src: usize) {
        let mut phase: i32 = if self.signs[dst] { 2 } else { 0 };
        phase += if self.signs[src] { 2 } else { 0 };
        let (db, sb) = (self.row_base(dst), self.row_base(src));
        for w in 0..self.words {
            let (x1, z1) = (self.rows[sb + w], self.rows[sb + self.words + w]);
            let (x2, z2) = (self.rows[db + w], self.rows[db + self.words + w]);
            for bit in 0..64 {
                let (a, b) = ((x1 >> bit & 1) as u8, (z1 >> bit & 1) as u8);
                let (c, d) = ((x2 >> bit & 1) as u8, (z2 >> bit & 1) as u8);
                phase += g_phase(a, b, c, d);
            }
            self.rows[db + w] = x2 ^ x1;
            self.rows[db + self.words + w] = z2 ^ z1;
        }
        debug_assert!(phase.rem_euclid(2) == 0);
        self.signs[dst] = phase.rem_euclid(4) == 2;
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        let (db, sb) = (self.row_base(dst), self.row_base(src));
        for w in 0..2 * self.words {
            self.rows[db + w] = self.rows[sb + w];
        }
        self.signs[dst] = self.signs[src];
    }

    fn clear_row(&mut self, row: usize) {
        let base = self.row_base(row);
        for w in 0..2 * self.words {
            self.rows[base + w] = 0;
        }
        self.signs[row] = false;
    }

    /// Resets `q` to |0⟩ (measure, then flip if the outcome was 1).
    pub fn reset_z<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure_z(q, rng) {
            self.pauli_x(q);
        }
    }

    /// Runs a full circuit, sampling noise channels stochastically, and
    /// returns the measurement record.
    pub fn run<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) -> Vec<bool> {
        let mut records = Vec::with_capacity(circuit.num_records());
        for op in circuit.ops() {
            match *op {
                Op::ResetZ(q) => self.reset_z(q as usize, rng),
                Op::H(q) => self.h(q as usize),
                Op::Cnot(c, t) => self.cnot(c as usize, t as usize),
                Op::MeasureZ(q) => records.push(self.measure_z(q as usize, rng)),
                Op::Depolarize1 { q, p } => {
                    if rng.gen_bool(p) {
                        match rng.gen_range(0..3u8) {
                            0 => self.pauli_x(q as usize),
                            1 => {
                                self.pauli_x(q as usize);
                                self.pauli_z(q as usize);
                            }
                            _ => self.pauli_z(q as usize),
                        }
                    }
                }
                Op::Depolarize2 { a, b, p } => {
                    if rng.gen_bool(p) {
                        let pattern = rng.gen_range(1..16u8);
                        if pattern & 1 != 0 {
                            self.pauli_x(a as usize);
                        }
                        if pattern & 2 != 0 {
                            self.pauli_z(a as usize);
                        }
                        if pattern & 4 != 0 {
                            self.pauli_x(b as usize);
                        }
                        if pattern & 8 != 0 {
                            self.pauli_z(b as usize);
                        }
                    }
                }
                Op::XError { q, p } => {
                    if rng.gen_bool(p) {
                        self.pauli_x(q as usize);
                    }
                }
                Op::Tick => {}
            }
        }
        records
    }

    /// Evaluates the circuit's detectors over a measurement record.
    pub fn detectors(circuit: &Circuit, records: &[bool]) -> Vec<bool> {
        circuit
            .detectors()
            .iter()
            .map(|d| {
                d.records
                    .iter()
                    .fold(false, |acc, &r| acc ^ records[r as usize])
            })
            .collect()
    }
}

/// The CHP phase function `g(x1, z1, x2, z2)`: the power of `i` produced
/// when multiplying single-qubit Paulis `(x1, z1) · (x2, z2)`.
fn g_phase(x1: u8, z1: u8, x2: u8, z2: u8) -> i32 {
    match (x1, z1) {
        (0, 0) => 0,
        (1, 1) => z2 as i32 - x2 as i32,
        (1, 0) => z2 as i32 * (2 * x2 as i32 - 1),
        (0, 1) => x2 as i32 * (1 - 2 * z2 as i32),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_memory_x_circuit, build_memory_z_circuit};
    use crate::frame::FrameSimulator;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fresh_qubits_measure_zero() {
        let mut sim = TableauSimulator::new(3);
        let mut r = rng(1);
        for q in 0..3 {
            assert!(!sim.measure_z(q, &mut r));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = TableauSimulator::new(1);
        let mut r = rng(1);
        sim.pauli_x(0);
        assert!(sim.measure_z(0, &mut r));
        assert!(sim.measure_z(0, &mut r), "repeated measurement is stable");
    }

    #[test]
    fn hadamard_makes_outcomes_random_then_stable() {
        let mut ones = 0;
        for seed in 0..200 {
            let mut sim = TableauSimulator::new(1);
            let mut r = rng(seed);
            sim.h(0);
            let first = sim.measure_z(0, &mut r);
            // After collapse, repeated measurement must agree.
            assert_eq!(sim.measure_z(0, &mut r), first);
            ones += first as u32;
        }
        assert!(
            (50..=150).contains(&ones),
            "biased |+⟩ measurements: {ones}/200"
        );
    }

    #[test]
    fn bell_pair_outcomes_correlate() {
        for seed in 0..100 {
            let mut sim = TableauSimulator::new(2);
            let mut r = rng(seed);
            sim.h(0);
            sim.cnot(0, 1);
            let a = sim.measure_z(0, &mut r);
            let b = sim.measure_z(1, &mut r);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn ghz_state_parity() {
        // |000⟩ + |111⟩: all three outcomes equal.
        for seed in 0..50 {
            let mut sim = TableauSimulator::new(3);
            let mut r = rng(seed);
            sim.h(0);
            sim.cnot(0, 1);
            sim.cnot(1, 2);
            let (a, b, c) = (
                sim.measure_z(0, &mut r),
                sim.measure_z(1, &mut r),
                sim.measure_z(2, &mut r),
            );
            assert!(a == b && b == c);
        }
    }

    #[test]
    fn reset_clears_any_state() {
        let mut sim = TableauSimulator::new(1);
        let mut r = rng(3);
        sim.h(0);
        sim.reset_z(0, &mut r);
        assert!(!sim.measure_z(0, &mut r));
    }

    #[test]
    fn noiseless_memory_circuit_detectors_are_deterministic() {
        // THE assumption behind frame sampling: with genuinely random
        // ancilla outcomes (X stabilizers measure randomly in round 0!),
        // every declared detector still evaluates to 0 noiselessly.
        for d in [3usize, 5] {
            let code = SurfaceCode::new(d).unwrap();
            for circuit in [
                build_memory_z_circuit(&code, d, NoiseModel::noiseless()),
                build_memory_x_circuit(&code, d, NoiseModel::noiseless()),
            ] {
                for seed in 0..5 {
                    let mut sim = TableauSimulator::new(circuit.num_qubits());
                    let records = sim.run(&circuit, &mut rng(seed));
                    let dets = TableauSimulator::detectors(&circuit, &records);
                    assert!(
                        dets.iter().all(|&b| !b),
                        "nondeterministic detector in noiseless d={d} circuit (seed {seed})"
                    );
                    // And the observable is deterministic 0 as well.
                    for obs in circuit.observables() {
                        let flip = obs.iter().fold(false, |acc, &r| acc ^ records[r as usize]);
                        assert!(!flip, "noiseless observable flip at d={d}");
                    }
                }
            }
        }
    }

    #[test]
    fn frame_simulator_matches_tableau_on_detectors_and_observables() {
        // For every single deterministic X error: the *detector* outcomes
        // and observable flips of the full tableau simulation must equal
        // the frame simulator's prediction. (Raw records are NOT
        // comparable — individually random measurements collapse
        // differently between runs; only the deterministic parities the
        // detectors encode are physical. That distinction is exactly why
        // frame sampling is sound for detectors and nothing else.)
        use crate::circuit::Op;
        let code = SurfaceCode::new(3).unwrap();
        let clean = build_memory_z_circuit(&code, 2, NoiseModel::noiseless());

        for err_qubit in 0..code.num_data_qubits() as u32 {
            // Circuit with a deterministic X inserted after the first tick.
            let mut noisy = Circuit::new(clean.num_qubits());
            let mut ticks = 0;
            for op in clean.ops() {
                noisy.push(*op);
                if let Op::Tick = op {
                    ticks += 1;
                    if ticks == 1 {
                        noisy.push(Op::XError {
                            q: err_qubit,
                            p: 1.0,
                        });
                    }
                }
            }
            for det in clean.detectors() {
                noisy.push_detector(det.records.clone(), det.coord);
            }
            for obs in clean.observables() {
                noisy.push_observable(obs.clone());
            }

            // Tableau ground truth (arbitrary seed: detectors must be
            // seed-independent).
            for seed in [11u64, 12] {
                let mut sim = TableauSimulator::new(noisy.num_qubits());
                let records = sim.run(&noisy, &mut rng(seed));
                let tableau_dets = TableauSimulator::detectors(&noisy, &records);
                let tableau_obs = noisy.observables()[0]
                    .iter()
                    .fold(false, |acc, &r| acc ^ records[r as usize]);

                let mut frame = FrameSimulator::new(&noisy);
                let (frame_dets, frame_obs) = frame.sample(&noisy, &mut rng(0));

                assert_eq!(
                    tableau_dets, frame_dets,
                    "detector mismatch for X on {err_qubit} (seed {seed})"
                );
                assert_eq!(
                    tableau_obs,
                    frame_obs & 1 == 1,
                    "observable mismatch for X on {err_qubit}"
                );
            }
        }
    }

    #[test]
    fn logical_x_string_flips_tableau_observable() {
        let code = SurfaceCode::new(3).unwrap();
        let clean = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
        let mut noisy = Circuit::new(clean.num_qubits());
        let mut first_tick = true;
        for op in clean.ops() {
            noisy.push(*op);
            if matches!(op, Op::Tick) && first_tick {
                first_tick = false;
                for &q in &code.logical_x_support() {
                    noisy.push(Op::XError {
                        q: q as u32,
                        p: 1.0,
                    });
                }
            }
        }
        let mut sim = TableauSimulator::new(noisy.num_qubits());
        let records = sim.run(&noisy, &mut rng(7));
        let dets = TableauSimulator::detectors(&noisy, &records);
        assert!(dets.iter().all(|&b| !b));
        let obs = clean.observables()[0]
            .iter()
            .fold(false, |acc, &r| acc ^ records[r as usize]);
        assert!(obs, "logical X must flip the tableau's logical Z outcome");
    }
}
