//! Bit-packed shot tables: 64 Monte-Carlo shots per machine word.
//!
//! Stim-style frame simulation gets its throughput from *word
//! parallelism*: instead of processing one shot at a time, every boolean
//! per-shot quantity (a frame bit, a measurement record, a detector
//! outcome) is stored for 64 shots at once in one `u64`, and every
//! bitwise operation — a CNOT's frame XOR, a detector's record fold, a
//! mechanism's symptom toggle — advances all 64 shots in a single
//! instruction. [`BitTable`] is the workspace's container for that
//! layout, shared by [`crate::BatchFrameSimulator`] and
//! [`crate::BatchDemSampler`].
//!
//! # Layout
//!
//! A `BitTable` is a `num_bits × num_shots` boolean matrix packed
//! row-major into `u64` words: row `b` (a detector, observable, qubit, or
//! record index) is a contiguous slice of `num_shots.div_ceil(64)` words,
//! and bit `s % 64` of word `s / 64` in that row is shot `s`. Rows are
//! the unit of word-parallel work; shots are the packed axis.
//!
//! The trailing word of each row may contain *padding lanes* (shots `≥
//! num_shots`). Samplers deliberately fill padding lanes with real draws
//! — always processing full 64-lane words is what makes packed streams
//! reproducible at any shot count (see [`column_seed`]) — so every
//! reading accessor ([`BitTable::get`], [`BitTable::count_row_ones`],
//! [`BitTable::iter_row_ones`]) masks them out via
//! [`BitTable::valid_lanes`].
//!
//! # Seeding contract
//!
//! Packed samplers draw randomness per *word column* (a block of 64
//! consecutive shots), seeding column `w` with [`column_seed`]`(seed,
//! w)`. Because each column's stream is independent of every other
//! column and the sampler always draws all 64 lanes of a column (padding
//! included), the first `n` shots of a packed run are bit-identical for
//! every requested shot count `≥ n` and for every thread count — chunking
//! a run at word boundaries never changes which RNG draws produce which
//! shot.

/// Derives the RNG seed for word column `word` (shots `64·word ..
/// 64·word + 64`) of a packed sampling run seeded with `seed`.
///
/// The same SplitMix64 mix as `astrea_core::batch::shot_seed`, applied to
/// word-column indices instead of shot indices: neighbouring columns get
/// decorrelated streams, and a column's seed depends only on `(seed,
/// word)` — not on the total shot count or the thread layout.
pub fn column_seed(seed: u64, word: u64) -> u64 {
    let mut z = seed ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `num_bits × num_shots` bit matrix, packed 64 shots per `u64` word.
///
/// See the [module docs](self) for the layout and padding-lane rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitTable {
    num_bits: usize,
    num_shots: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitTable {
    /// Creates an all-zero table with `num_bits` rows over `num_shots`
    /// packed shots.
    pub fn new(num_bits: usize, num_shots: usize) -> BitTable {
        let words_per_row = num_shots.div_ceil(64);
        BitTable {
            num_bits,
            num_shots,
            words_per_row,
            words: vec![0; num_bits * words_per_row],
        }
    }

    /// Number of rows (bits tracked per shot).
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of logical shots (packed columns).
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of `u64` words per row (`num_shots.div_ceil(64)`).
    pub fn num_words(&self) -> usize {
        self.words_per_row
    }

    /// The words of row `bit`, 64 shots per word.
    pub fn row(&self, bit: usize) -> &[u64] {
        let lo = bit * self.words_per_row;
        &self.words[lo..lo + self.words_per_row]
    }

    /// Mutable access to the words of row `bit`.
    pub fn row_mut(&mut self, bit: usize) -> &mut [u64] {
        let lo = bit * self.words_per_row;
        &mut self.words[lo..lo + self.words_per_row]
    }

    /// Word `word` of row `bit` (shots `64·word .. 64·word + 64`).
    #[inline]
    pub fn word(&self, bit: usize, word: usize) -> u64 {
        debug_assert!(bit < self.num_bits && word < self.words_per_row);
        self.words[bit * self.words_per_row + word]
    }

    /// Overwrites word `word` of row `bit`.
    #[inline]
    pub fn set_word(&mut self, bit: usize, word: usize, value: u64) {
        debug_assert!(bit < self.num_bits && word < self.words_per_row);
        self.words[bit * self.words_per_row + word] = value;
    }

    /// XORs `mask` into word `word` of row `bit` — one bitwise op
    /// toggling the bit for up to 64 shots at once.
    #[inline]
    pub fn xor_word(&mut self, bit: usize, word: usize, mask: u64) {
        debug_assert!(bit < self.num_bits && word < self.words_per_row);
        self.words[bit * self.words_per_row + word] ^= mask;
    }

    /// The mask of valid (non-padding) lanes in word `word`: all 64 for
    /// interior words, the low `num_shots % 64` for a partial final word.
    #[inline]
    pub fn valid_lanes(&self, word: usize) -> u64 {
        debug_assert!(word < self.words_per_row);
        if word + 1 < self.words_per_row || self.num_shots.is_multiple_of(64) {
            !0
        } else {
            (1u64 << (self.num_shots % 64)) - 1
        }
    }

    /// Reads bit `bit` of shot `shot`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` or `shot` is out of range.
    #[inline]
    pub fn get(&self, bit: usize, shot: usize) -> bool {
        assert!(bit < self.num_bits, "bit {bit} of {}", self.num_bits);
        assert!(shot < self.num_shots, "shot {shot} of {}", self.num_shots);
        self.words[bit * self.words_per_row + shot / 64] >> (shot % 64) & 1 == 1
    }

    /// Sets bit `bit` of shot `shot` to `value`.
    #[inline]
    pub fn set(&mut self, bit: usize, shot: usize, value: bool) {
        assert!(bit < self.num_bits, "bit {bit} of {}", self.num_bits);
        assert!(shot < self.num_shots, "shot {shot} of {}", self.num_shots);
        let w = &mut self.words[bit * self.words_per_row + shot / 64];
        let mask = 1u64 << (shot % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Toggles bit `bit` of shot `shot`.
    #[inline]
    pub fn toggle(&mut self, bit: usize, shot: usize) {
        assert!(bit < self.num_bits, "bit {bit} of {}", self.num_bits);
        assert!(shot < self.num_shots, "shot {shot} of {}", self.num_shots);
        self.words[bit * self.words_per_row + shot / 64] ^= 1u64 << (shot % 64);
    }

    /// Zeroes the whole table.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Popcount of row `bit` over valid lanes: in how many shots the bit
    /// is set.
    pub fn count_row_ones(&self, bit: usize) -> usize {
        self.row(bit)
            .iter()
            .enumerate()
            .map(|(w, &word)| (word & self.valid_lanes(w)).count_ones() as usize)
            .sum()
    }

    /// Iterates the shot indices (ascending) where row `bit` is set,
    /// padding lanes excluded.
    pub fn iter_row_ones(&self, bit: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(bit)
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut m = word & self.valid_lanes(w);
                std::iter::from_fn(move || {
                    if m == 0 {
                        None
                    } else {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        Some(w * 64 + lane)
                    }
                })
            })
    }

    /// ORs every row into `out` (resized to `num_words`), giving the
    /// per-word mask of shots where *any* tracked bit is set — the
    /// word-level screen for all-zero (trivial) shots. Padding lanes are
    /// masked off.
    pub fn or_rows_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.words_per_row, 0);
        for bit in 0..self.num_bits {
            for (acc, &w) in out.iter_mut().zip(self.row(bit)) {
                *acc |= w;
            }
        }
        for (w, acc) in out.iter_mut().enumerate() {
            *acc &= self.valid_lanes(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_toggle_round_trip() {
        let mut t = BitTable::new(3, 130);
        t.set(0, 0, true);
        t.set(1, 64, true);
        t.set(2, 129, true);
        t.toggle(1, 64);
        assert!(t.get(0, 0));
        assert!(!t.get(1, 64));
        assert!(t.get(2, 129));
        assert_eq!(t.num_words(), 3);
        assert_eq!(t.count_row_ones(0), 1);
        assert_eq!(t.count_row_ones(1), 0);
        assert_eq!(t.iter_row_ones(2).collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn valid_lanes_mask_padding() {
        let t = BitTable::new(1, 70);
        assert_eq!(t.valid_lanes(0), !0);
        assert_eq!(t.valid_lanes(1), (1 << 6) - 1);
        let aligned = BitTable::new(1, 128);
        assert_eq!(aligned.valid_lanes(1), !0);
    }

    #[test]
    fn padding_lanes_are_invisible_to_readers() {
        let mut t = BitTable::new(2, 66);
        // Write garbage into padding lanes via raw word access, as the
        // packed samplers do.
        t.set_word(0, 1, !0);
        t.set_word(1, 1, 0xFF00);
        assert_eq!(t.count_row_ones(0), 2); // only shots 64, 65
        assert_eq!(t.iter_row_ones(0).collect::<Vec<_>>(), vec![64, 65]);
        assert_eq!(t.count_row_ones(1), 0); // bits 8.. are padding
        let mut any = Vec::new();
        t.or_rows_into(&mut any);
        assert_eq!(any, vec![0, 0b11]);
    }

    #[test]
    fn xor_word_toggles_64_shots() {
        let mut t = BitTable::new(1, 64);
        t.xor_word(0, 0, !0);
        assert_eq!(t.count_row_ones(0), 64);
        t.xor_word(0, 0, 0b1010);
        assert!(!t.get(0, 1));
        assert!(!t.get(0, 3));
        assert_eq!(t.count_row_ones(0), 62);
    }

    #[test]
    fn zero_sized_axes() {
        let t = BitTable::new(0, 100);
        assert_eq!(t.num_bits(), 0);
        assert_eq!(t.num_words(), 2);
        let t = BitTable::new(4, 0);
        assert_eq!(t.num_words(), 0);
        let mut any = Vec::new();
        t.or_rows_into(&mut any);
        assert!(any.is_empty());
    }

    #[test]
    fn column_seed_decorrelates_and_is_stable() {
        let a = column_seed(42, 0);
        let b = column_seed(42, 1);
        let c = column_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(column_seed(42, 0), a);
    }
}
