//! Stim-compatible circuit serialization.
//!
//! The Astrea paper's evaluation pipeline is built on Google's Stim; this
//! module emits our [`Circuit`] IR in Stim's text format (a strict subset
//! of it) so circuits built here can be cross-checked with Stim itself,
//! and parses that same subset back for round-tripping.
//!
//! Supported instructions: `R`, `H`, `CX`, `M`, `DEPOLARIZE1(p)`,
//! `DEPOLARIZE2(p)`, `X_ERROR(p)`, `TICK`, `DETECTOR(coords) rec[-k] …`,
//! and `OBSERVABLE_INCLUDE(i) rec[-k] …`.

use crate::circuit::{Circuit, DetectorCoord, Op};
use std::error::Error;
use std::fmt;

/// Error from parsing a Stim-format circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStimError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseStimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stim parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseStimError {}

impl Circuit {
    /// Serializes the circuit to Stim's text format.
    ///
    /// Detector and observable record references are emitted as negative
    /// lookbacks (`rec[-k]`) relative to the end of the circuit, matching
    /// Stim's conventions. Detector coordinates are emitted as
    /// `(col, row, round)` to match Stim's `(x, y, t)` ordering.
    pub fn to_stim(&self) -> String {
        let mut out = String::new();
        for op in self.ops() {
            match *op {
                Op::ResetZ(q) => out.push_str(&format!("R {q}\n")),
                Op::H(q) => out.push_str(&format!("H {q}\n")),
                Op::Cnot(c, t) => out.push_str(&format!("CX {c} {t}\n")),
                Op::MeasureZ(q) => out.push_str(&format!("M {q}\n")),
                Op::Depolarize1 { q, p } => {
                    out.push_str(&format!("DEPOLARIZE1({p}) {q}\n"));
                }
                Op::Depolarize2 { a, b, p } => {
                    out.push_str(&format!("DEPOLARIZE2({p}) {a} {b}\n"));
                }
                Op::XError { q, p } => out.push_str(&format!("X_ERROR({p}) {q}\n")),
                Op::Tick => out.push_str("TICK\n"),
            }
        }
        let total = self.num_records() as i64;
        for det in self.detectors() {
            out.push_str(&format!(
                "DETECTOR({}, {}, {})",
                det.coord.col, det.coord.row, det.coord.round
            ));
            for &r in &det.records {
                out.push_str(&format!(" rec[{}]", r as i64 - total));
            }
            out.push('\n');
        }
        for (i, obs) in self.observables().iter().enumerate() {
            out.push_str(&format!("OBSERVABLE_INCLUDE({i})"));
            for &r in obs {
                out.push_str(&format!(" rec[{}]", r as i64 - total));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a circuit from the Stim-format subset written by
    /// [`Circuit::to_stim`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseStimError`] on unknown instructions, malformed
    /// arguments, or record lookbacks that point outside the circuit.
    pub fn from_stim(text: &str) -> Result<Circuit, ParseStimError> {
        // First pass: find the highest referenced qubit index.
        let mut max_qubit = 0u32;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for tok in line.split_whitespace().skip(1) {
                if let Ok(q) = tok.parse::<u32>() {
                    max_qubit = max_qubit.max(q);
                }
            }
        }
        let mut c = Circuit::new(max_qubit as usize + 1);

        let err = |line: usize, message: &str| ParseStimError {
            line,
            message: message.to_string(),
        };

        // Detector/observable lines are deferred until all measurements
        // are known (they use negative lookbacks).
        // (is_detector, coordinate/index argument, record tokens)
        let mut deferred: Vec<(usize, bool, String, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            // Split into instruction name, optional parenthesized argument
            // (which may contain spaces), and the target list.
            let (name, arg, rest) = match line.find('(') {
                Some(open) => {
                    let close = line[open..]
                        .find(')')
                        .map(|i| i + open)
                        .ok_or_else(|| err(lineno, "unterminated argument"))?;
                    (
                        &line[..open],
                        Some(&line[open + 1..close]),
                        line[close + 1..].trim(),
                    )
                }
                None => {
                    let (h, r) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
                    (h, None, r.trim())
                }
            };
            let targets: Result<Vec<u32>, _> =
                rest.split_whitespace().map(|t| t.parse::<u32>()).collect();
            let parse_p = |arg: Option<&str>| -> Result<f64, ParseStimError> {
                arg.ok_or_else(|| err(lineno, "missing probability"))?
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| err(lineno, "bad probability"))
            };
            match name {
                "R" | "RZ" => {
                    for q in targets.map_err(|_| err(lineno, "bad target"))? {
                        c.push(Op::ResetZ(q));
                    }
                }
                "H" => {
                    for q in targets.map_err(|_| err(lineno, "bad target"))? {
                        c.push(Op::H(q));
                    }
                }
                "M" | "MZ" => {
                    for q in targets.map_err(|_| err(lineno, "bad target"))? {
                        c.push(Op::MeasureZ(q));
                    }
                }
                "CX" | "CNOT" => {
                    let t = targets.map_err(|_| err(lineno, "bad target"))?;
                    if t.len() % 2 != 0 {
                        return Err(err(lineno, "CX needs an even number of targets"));
                    }
                    for pair in t.chunks(2) {
                        c.push(Op::Cnot(pair[0], pair[1]));
                    }
                }
                "DEPOLARIZE1" => {
                    let p = parse_p(arg)?;
                    for q in targets.map_err(|_| err(lineno, "bad target"))? {
                        c.push(Op::Depolarize1 { q, p });
                    }
                }
                "DEPOLARIZE2" => {
                    let p = parse_p(arg)?;
                    let t = targets.map_err(|_| err(lineno, "bad target"))?;
                    if t.len() % 2 != 0 {
                        return Err(err(lineno, "DEPOLARIZE2 needs qubit pairs"));
                    }
                    for pair in t.chunks(2) {
                        c.push(Op::Depolarize2 {
                            a: pair[0],
                            b: pair[1],
                            p,
                        });
                    }
                }
                "X_ERROR" => {
                    let p = parse_p(arg)?;
                    for q in targets.map_err(|_| err(lineno, "bad target"))? {
                        c.push(Op::XError { q, p });
                    }
                }
                "TICK" => c.push(Op::Tick),
                "DETECTOR" | "OBSERVABLE_INCLUDE" => {
                    deferred.push((
                        lineno,
                        name == "DETECTOR",
                        arg.unwrap_or("").to_string(),
                        rest.to_string(),
                    ));
                }
                other => return Err(err(lineno, &format!("unknown instruction {other}"))),
            }
        }

        let total = c.num_records() as i64;
        for (lineno, is_detector, arg, rest) in deferred {
            let mut records = Vec::new();
            for tok in rest.split_whitespace() {
                let inner = tok
                    .strip_prefix("rec[")
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(lineno, "expected rec[-k]"))?;
                let k: i64 = inner.parse().map_err(|_| err(lineno, "bad lookback"))?;
                let idx = total + k;
                if idx < 0 || idx >= total {
                    return Err(err(lineno, "lookback outside circuit"));
                }
                records.push(idx as u32);
            }
            if is_detector {
                // Coordinates: DETECTOR(x, y, t).
                let parts: Vec<i32> = arg
                    .split(',')
                    .filter_map(|s| s.trim().parse::<f64>().ok().map(|v| v as i32))
                    .collect();
                let coord = DetectorCoord {
                    col: parts.first().copied().unwrap_or(0),
                    row: parts.get(1).copied().unwrap_or(0),
                    round: parts.get(2).copied().unwrap_or(0),
                };
                c.push_detector(records, coord);
            } else {
                c.push_observable(records);
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::dem::DemSampler;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    #[test]
    fn memory_circuit_round_trips() {
        let code = SurfaceCode::new(3).unwrap();
        let original = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(1e-3));
        let text = original.to_stim();
        let parsed = Circuit::from_stim(&text).expect("round trip parses");
        assert_eq!(parsed.num_records(), original.num_records());
        assert_eq!(parsed.num_detectors(), original.num_detectors());
        assert_eq!(parsed.num_observables(), original.num_observables());
        assert_eq!(parsed.ops(), original.ops());
        for (a, b) in parsed.detectors().iter().zip(original.detectors()) {
            assert_eq!(a.records, b.records);
            assert_eq!(a.coord.round, b.coord.round);
        }
    }

    #[test]
    fn round_tripped_circuit_has_identical_error_model() {
        // The acid test: the DEM (and therefore all decoding behaviour)
        // must be unchanged by serialization.
        let code = SurfaceCode::new(3).unwrap();
        let original = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(2e-3));
        let parsed = Circuit::from_stim(&original.to_stim()).unwrap();
        let dem_a = original.detector_error_model();
        let dem_b = parsed.detector_error_model();
        assert_eq!(dem_a.mechanisms().len(), dem_b.mechanisms().len());
        for (a, b) in dem_a.mechanisms().iter().zip(dem_b.mechanisms()) {
            assert_eq!(a.detectors, b.detectors);
            assert_eq!(a.observables, b.observables);
            assert!((a.probability - b.probability).abs() < 1e-15);
        }
        // And sampling statistics agree for a fixed seed.
        let mut sa = DemSampler::new(&dem_a);
        let mut sb = DemSampler::new(&dem_b);
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(sa.sample(&mut ra), sb.sample(&mut rb));
        }
    }

    #[test]
    fn emits_expected_instructions() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(0));
        c.push(Op::H(1));
        c.push(Op::Cnot(0, 1));
        c.push(Op::Depolarize2 {
            a: 0,
            b: 1,
            p: 0.125,
        });
        c.push(Op::MeasureZ(1));
        c.push_detector(
            vec![0],
            DetectorCoord {
                row: 2,
                col: 4,
                round: 1,
            },
        );
        let text = c.to_stim();
        assert!(text.contains("R 0\n"));
        assert!(text.contains("H 1\n"));
        assert!(text.contains("CX 0 1\n"));
        assert!(text.contains("DEPOLARIZE2(0.125) 0 1\n"));
        assert!(text.contains("M 1\n"));
        assert!(text.contains("DETECTOR(4, 2, 1) rec[-1]\n"));
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\nR 0\nM 0  # trailing\nDETECTOR(0, 0, 0) rec[-1]\n";
        let c = Circuit::from_stim(text).unwrap();
        assert_eq!(c.num_records(), 1);
        assert_eq!(c.num_detectors(), 1);
    }

    #[test]
    fn rejects_unknown_instruction() {
        let e = Circuit::from_stim("FROB 1\n").unwrap_err();
        assert!(e.to_string().contains("unknown instruction"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_bad_lookback() {
        let e = Circuit::from_stim("M 0\nDETECTOR(0,0,0) rec[-5]\n").unwrap_err();
        assert!(e.to_string().contains("lookback"));
    }

    #[test]
    fn parses_multi_target_lines() {
        let c = Circuit::from_stim("R 0 1 2\nCX 0 1 1 2\nM 0 1 2\n").unwrap();
        assert_eq!(c.num_records(), 3);
        assert_eq!(
            c.ops().iter().filter(|o| matches!(o, Op::Cnot(..))).count(),
            2
        );
    }
}
