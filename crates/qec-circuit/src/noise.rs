//! The paper's circuit-level depolarizing noise model (§3.2).

/// Circuit-level noise parameters.
///
/// The Astrea paper uses a single physical error rate `p` and inserts
/// depolarizing errors:
///
/// 1. on every data qubit at the beginning of each round,
/// 2. as a two-qubit depolarizing channel after every CNOT of the syndrome
///    extraction circuit,
/// 3. on every parity qubit after reset and before measurement, and
/// 4. on every data qubit before the final transversal measurement.
///
/// All four sites default to the same probability `p`, but can be varied
/// independently for ablation studies (e.g. a phenomenological model sets
/// the CNOT noise to zero).
///
/// ```
/// use qec_circuit::NoiseModel;
///
/// let noise = NoiseModel::depolarizing(1e-3);
/// assert_eq!(noise.data, 1e-3);
/// assert_eq!(noise.gate, 1e-3);
///
/// let phenomenological = NoiseModel::depolarizing(1e-3).with_gate(0.0);
/// assert_eq!(phenomenological.gate, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability on data qubits at the start of each round.
    pub data: f64,
    /// Two-qubit depolarizing probability after each CNOT.
    pub gate: f64,
    /// Depolarizing probability on parity qubits after reset.
    pub reset: f64,
    /// Depolarizing probability on parity qubits before measurement.
    pub measure: f64,
    /// Depolarizing probability on data qubits before the final transversal
    /// measurement.
    pub final_measure: f64,
}

impl NoiseModel {
    /// Uniform circuit-level depolarizing noise at physical error rate `p`
    /// (the paper's default model).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn depolarizing(p: f64) -> NoiseModel {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        NoiseModel {
            data: p,
            gate: p,
            reset: p,
            measure: p,
            final_measure: p,
        }
    }

    /// A noiseless model (useful for validating circuit determinism).
    pub fn noiseless() -> NoiseModel {
        NoiseModel::depolarizing(0.0)
    }

    /// Overrides the CNOT (two-qubit) noise probability.
    pub fn with_gate(mut self, p: f64) -> NoiseModel {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        self.gate = p;
        self
    }

    /// Overrides the measurement noise probability (applied before both
    /// ancilla and final data measurements).
    pub fn with_measure(mut self, p: f64) -> NoiseModel {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        self.measure = p;
        self.final_measure = p;
        self
    }

    /// Returns `true` if every channel has zero probability.
    pub fn is_noiseless(&self) -> bool {
        self.data == 0.0
            && self.gate == 0.0
            && self.reset == 0.0
            && self.measure == 0.0
            && self.final_measure == 0.0
    }
}

impl Default for NoiseModel {
    /// The paper's default operating point, `p = 10⁻⁴`.
    fn default() -> NoiseModel {
        NoiseModel::depolarizing(1e-4)
    }
}

/// Per-qubit noise scaling over a base [`NoiseModel`] — the paper's §8.2
/// scenario: real devices have **non-uniform** error rates that **drift**
/// over time, and a decoder must adapt (Astrea does so by reprogramming
/// its Global Weight Table).
///
/// A `NoiseMap` assigns every physical qubit (data qubits first, then
/// ancillas in stabilizer order) a multiplicative factor on the base
/// rates; two-qubit channels use the geometric mean of their endpoints'
/// factors.
///
/// ```
/// use qec_circuit::{NoiseMap, NoiseModel};
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let mut map = NoiseMap::uniform(&code, NoiseModel::depolarizing(1e-4));
/// map.scale_qubit(4, 10.0); // a hot data qubit
/// assert_eq!(map.data(4), 1e-3);
/// assert_eq!(map.data(5), 1e-4);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseMap {
    base: NoiseModel,
    scale: Vec<f64>,
}

impl NoiseMap {
    /// A uniform map: every qubit at the base rates.
    pub fn uniform(code: &surface_code::SurfaceCode, base: NoiseModel) -> NoiseMap {
        NoiseMap {
            base,
            scale: vec![1.0; code.num_data_qubits() + code.num_stabilizers()],
        }
    }

    /// Scales one qubit's error rates by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or if any resulting probability
    /// would exceed 1, or if the qubit index is out of range.
    pub fn scale_qubit(&mut self, qubit: usize, factor: f64) -> &mut NoiseMap {
        assert!(factor >= 0.0, "negative noise scale {factor}");
        self.scale[qubit] = factor;
        let worst = self
            .base
            .data
            .max(self.base.gate)
            .max(self.base.reset)
            .max(self.base.measure)
            .max(self.base.final_measure);
        assert!(
            worst * factor <= 1.0,
            "scaled probability {} exceeds 1",
            worst * factor
        );
        self
    }

    /// Scales every qubit by `factor` — modeling global drift.
    pub fn scale_all(&mut self, factor: f64) -> &mut NoiseMap {
        for q in 0..self.scale.len() {
            self.scale_qubit(q, factor);
        }
        self
    }

    /// Number of qubits this map covers.
    pub fn num_qubits(&self) -> usize {
        self.scale.len()
    }

    /// The base model.
    pub fn base(&self) -> NoiseModel {
        self.base
    }

    /// Data-qubit round-start depolarizing probability for `qubit`.
    pub fn data(&self, qubit: usize) -> f64 {
        self.base.data * self.scale[qubit]
    }

    /// Post-reset depolarizing probability for an ancilla (global qubit
    /// index).
    pub fn reset(&self, qubit: usize) -> f64 {
        self.base.reset * self.scale[qubit]
    }

    /// Pre-measurement depolarizing probability for an ancilla.
    pub fn measure(&self, qubit: usize) -> f64 {
        self.base.measure * self.scale[qubit]
    }

    /// Pre-final-measurement depolarizing probability for a data qubit.
    pub fn final_measure(&self, qubit: usize) -> f64 {
        self.base.final_measure * self.scale[qubit]
    }

    /// Two-qubit depolarizing probability for a CNOT between global qubit
    /// indices `a` and `b` (geometric mean of the endpoint factors).
    pub fn gate(&self, a: usize, b: usize) -> f64 {
        self.base.gate * (self.scale[a] * self.scale[b]).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surface_code::SurfaceCode;

    #[test]
    fn uniform_model_sets_all_channels() {
        let m = NoiseModel::depolarizing(0.01);
        assert_eq!(m.data, 0.01);
        assert_eq!(m.gate, 0.01);
        assert_eq!(m.reset, 0.01);
        assert_eq!(m.measure, 0.01);
        assert_eq!(m.final_measure, 0.01);
        assert!(!m.is_noiseless());
    }

    #[test]
    fn noiseless_is_noiseless() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::depolarizing(1e-9).is_noiseless());
    }

    #[test]
    fn default_is_paper_operating_point() {
        assert_eq!(NoiseModel::default().data, 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn rejects_negative_probability() {
        NoiseModel::depolarizing(-0.1);
    }

    #[test]
    fn builder_overrides() {
        let m = NoiseModel::depolarizing(1e-3)
            .with_gate(0.0)
            .with_measure(2e-3);
        assert_eq!(m.gate, 0.0);
        assert_eq!(m.measure, 2e-3);
        assert_eq!(m.final_measure, 2e-3);
        assert_eq!(m.data, 1e-3);
    }

    #[test]
    fn uniform_map_reproduces_base_rates() {
        let code = SurfaceCode::new(3).unwrap();
        let map = NoiseMap::uniform(&code, NoiseModel::depolarizing(1e-3));
        assert_eq!(map.num_qubits(), 17);
        for q in 0..map.num_qubits() {
            assert_eq!(map.data(q), 1e-3);
            assert_eq!(map.measure(q), 1e-3);
        }
        assert_eq!(map.gate(0, 9), 1e-3);
    }

    #[test]
    fn scaled_qubit_affects_its_gates_geometrically() {
        let code = SurfaceCode::new(3).unwrap();
        let mut map = NoiseMap::uniform(&code, NoiseModel::depolarizing(1e-4));
        map.scale_qubit(2, 4.0);
        assert_eq!(map.data(2), 4e-4);
        assert_eq!(map.data(3), 1e-4);
        // Geometric mean: sqrt(4 · 1) = 2.
        assert!((map.gate(2, 3) - 2e-4).abs() < 1e-18);
    }

    #[test]
    fn scale_all_models_drift() {
        let code = SurfaceCode::new(3).unwrap();
        let mut map = NoiseMap::uniform(&code, NoiseModel::depolarizing(1e-4));
        map.scale_all(3.0);
        for q in 0..map.num_qubits() {
            assert!((map.data(q) - 3e-4).abs() < 1e-18);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn rejects_scales_that_overflow_probability() {
        let code = SurfaceCode::new(3).unwrap();
        let mut map = NoiseMap::uniform(&code, NoiseModel::depolarizing(0.5));
        map.scale_qubit(0, 3.0);
    }
}
