//! Compact bitsets over measurement-record indices, used by the backward
//! symbolic propagation pass in [`crate::dem`].

/// A fixed-width bitset over `num_records` bits, stored as `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct RecordSet {
    words: Vec<u64>,
}

impl RecordSet {
    pub(crate) fn new(num_records: usize) -> RecordSet {
        RecordSet {
            words: vec![0; num_records.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn clear(&mut self) {
        self.words.fill(0);
    }

    #[inline]
    pub(crate) fn toggle(&mut self, bit: usize) {
        self.words[bit / 64] ^= 1u64 << (bit % 64);
    }

    #[inline]
    pub(crate) fn xor_assign(&mut self, other: &RecordSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the indices of set bits in ascending order.
    pub(crate) fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_and_iterate() {
        let mut s = RecordSet::new(130);
        s.toggle(0);
        s.toggle(64);
        s.toggle(129);
        s.toggle(64); // toggled off again
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
        assert!(!s.is_empty());
    }

    #[test]
    fn xor_assign_combines() {
        let mut a = RecordSet::new(70);
        let mut b = RecordSet::new(70);
        a.toggle(3);
        a.toggle(65);
        b.toggle(65);
        b.toggle(69);
        a.xor_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![3, 69]);
    }

    #[test]
    fn clear_empties() {
        let mut s = RecordSet::new(10);
        s.toggle(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn zero_sized_set() {
        let s = RecordSet::new(0);
        assert!(s.is_empty());
    }
}
