//! Detector-error-model text serialization (Stim `.dem`-style subset).
//!
//! Error models extracted here can be dumped for inspection, diffed
//! against Stim's output for the same circuit, or loaded back to skip
//! re-extraction. The format is the `error(p) D… L…` subset of Stim's DEM
//! language:
//!
//! ```text
//! error(0.00026657) D0 D4
//! error(0.00013332) D2 L0
//! ```

use crate::dem::{DetectorErrorModel, ErrorMechanism};
use std::error::Error;
use std::fmt;

/// Error from parsing a DEM text file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDemError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dem parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDemError {}

impl DetectorErrorModel {
    /// Serializes the model as `error(p) D… L…` lines, one per mechanism,
    /// in the model's deterministic order.
    pub fn to_dem_text(&self) -> String {
        let mut out = String::new();
        for m in self.mechanisms() {
            out.push_str(&format!("error({})", m.probability));
            for &d in &m.detectors {
                out.push_str(&format!(" D{d}"));
            }
            let mut obs = m.observables;
            while obs != 0 {
                let bit = obs.trailing_zeros();
                out.push_str(&format!(" L{bit}"));
                obs &= obs - 1;
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `error(p) D… L…` subset written by
    /// [`DetectorErrorModel::to_dem_text`]. Detector and observable counts
    /// are inferred from the highest indices present.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDemError`] on malformed lines, probabilities outside
    /// `(0, 1]`, or unknown targets.
    pub fn from_dem_text(text: &str) -> Result<DetectorErrorModel, ParseDemError> {
        let err = |line: usize, message: &str| ParseDemError {
            line,
            message: message.to_string(),
        };
        let mut mechanisms = Vec::new();
        let mut num_detectors = 0usize;
        let mut num_observables = 0usize;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            let rest = line
                .strip_prefix("error(")
                .ok_or_else(|| err(lineno, "expected error(p)"))?;
            let (p_str, targets) = rest
                .split_once(')')
                .ok_or_else(|| err(lineno, "unterminated probability"))?;
            let probability: f64 = p_str
                .trim()
                .parse()
                .map_err(|_| err(lineno, "bad probability"))?;
            if !(probability > 0.0 && probability <= 1.0) {
                return Err(err(lineno, "probability outside (0, 1]"));
            }
            let mut detectors = Vec::new();
            let mut observables = 0u32;
            for tok in targets.split_whitespace() {
                if let Some(d) = tok.strip_prefix('D') {
                    let d: u32 = d.parse().map_err(|_| err(lineno, "bad detector id"))?;
                    detectors.push(d);
                    num_detectors = num_detectors.max(d as usize + 1);
                } else if let Some(l) = tok.strip_prefix('L') {
                    let l: u32 = l.parse().map_err(|_| err(lineno, "bad observable id"))?;
                    if l >= 32 {
                        return Err(err(lineno, "observable id ≥ 32"));
                    }
                    observables |= 1 << l;
                    num_observables = num_observables.max(l as usize + 1);
                } else {
                    return Err(err(lineno, &format!("unknown target {tok}")));
                }
            }
            detectors.sort_unstable();
            detectors.dedup();
            mechanisms.push(ErrorMechanism {
                detectors,
                observables,
                probability,
            });
        }
        Ok(DetectorErrorModel::from_mechanisms(
            num_detectors,
            num_observables,
            mechanisms,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::noise::NoiseModel;
    use surface_code::SurfaceCode;

    #[test]
    fn round_trips_a_real_model() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(1e-3));
        let dem = circuit.detector_error_model();
        let text = dem.to_dem_text();
        let parsed = DetectorErrorModel::from_dem_text(&text).unwrap();
        assert_eq!(parsed.num_detectors(), dem.num_detectors());
        assert_eq!(parsed.num_observables(), dem.num_observables());
        assert_eq!(parsed.mechanisms().len(), dem.mechanisms().len());
        for (a, b) in parsed.mechanisms().iter().zip(dem.mechanisms()) {
            assert_eq!(a.detectors, b.detectors);
            assert_eq!(a.observables, b.observables);
            assert!((a.probability - b.probability).abs() / b.probability < 1e-12);
        }
    }

    #[test]
    fn emits_expected_lines() {
        let dem = DetectorErrorModel::from_mechanisms(
            5,
            1,
            vec![ErrorMechanism {
                detectors: vec![0, 4],
                observables: 1,
                probability: 0.25,
            }],
        );
        assert_eq!(dem.to_dem_text(), "error(0.25) D0 D4 L0\n");
    }

    #[test]
    fn parses_comments_and_blanks() {
        let dem =
            DetectorErrorModel::from_dem_text("# header\n\nerror(0.1) D0 D1 # tail\n").unwrap();
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.num_detectors(), 2);
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(DetectorErrorModel::from_dem_text("error(1.5) D0\n").is_err());
        assert!(DetectorErrorModel::from_dem_text("error(0) D0\n").is_err());
    }

    #[test]
    fn rejects_unknown_targets() {
        let e = DetectorErrorModel::from_dem_text("error(0.1) Q3\n").unwrap_err();
        assert!(e.to_string().contains("unknown target"));
        assert_eq!(e.line, 1);
    }
}
