//! Memory-experiment circuits for the 1-D repetition code.
//!
//! The same circuit-level noise model and detector conventions as the
//! surface-code builder, on the `2d − 1`-qubit bit-flip code — the
//! bring-up platform of the QEC demonstrations the paper cites (§8.2) and
//! of the LILLIPUT decoder it compares against.

use crate::circuit::{Circuit, DetectorCoord, Op};
use crate::noise::NoiseModel;
use surface_code::RepetitionCode;

/// Builds a bit-flip memory experiment on a repetition code: all data
/// reset to |0⟩, `rounds` rounds of ZZ checks, final transversal Z
/// measurement. Detectors follow the surface-code layout conventions
/// (round-major, plus one final layer); observable 0 is Z on data qubit 0.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn build_repetition_memory_circuit(
    code: &RepetitionCode,
    rounds: usize,
    noise: NoiseModel,
) -> Circuit {
    assert!(rounds > 0, "a memory experiment needs at least one round");
    let n_data = code.num_data_qubits();
    let n_stab = code.num_stabilizers();
    let mut c = Circuit::new(n_data + n_stab);
    let ancilla = |s: usize| (n_data + s) as u32;

    for q in 0..n_data {
        c.push(Op::ResetZ(q as u32));
    }
    for s in 0..n_stab {
        c.push(Op::ResetZ(ancilla(s)));
    }

    let mut prev_rec: Vec<Option<u32>> = vec![None; n_stab];
    for round in 0..rounds {
        c.push(Op::Tick);
        if noise.data > 0.0 {
            for q in 0..n_data {
                c.push(Op::Depolarize1 {
                    q: q as u32,
                    p: noise.data,
                });
            }
        }
        if noise.reset > 0.0 {
            for s in 0..n_stab {
                c.push(Op::Depolarize1 {
                    q: ancilla(s),
                    p: noise.reset,
                });
            }
        }
        // Two CNOT steps: left neighbors, then right neighbors.
        for step in 0..2 {
            for s in 0..n_stab {
                let q = code.stabilizer_support(s)[step];
                c.push(Op::Cnot(q as u32, ancilla(s)));
                if noise.gate > 0.0 {
                    c.push(Op::Depolarize2 {
                        a: q as u32,
                        b: ancilla(s),
                        p: noise.gate,
                    });
                }
            }
        }
        if noise.measure > 0.0 {
            for s in 0..n_stab {
                c.push(Op::Depolarize1 {
                    q: ancilla(s),
                    p: noise.measure,
                });
            }
        }
        let base = (round * n_stab) as u32;
        for s in 0..n_stab {
            c.push(Op::MeasureZ(ancilla(s)));
            c.push(Op::ResetZ(ancilla(s)));
        }
        for (s, prev) in prev_rec.iter_mut().enumerate() {
            let rec = base + s as u32;
            let records = match *prev {
                None => vec![rec],
                Some(prev) => vec![prev, rec],
            };
            let coord = code.ancilla_coord(s);
            c.push_detector(
                records,
                DetectorCoord {
                    row: coord.row,
                    col: coord.col,
                    round: round as i32,
                },
            );
            *prev = Some(rec);
        }
    }

    c.push(Op::Tick);
    if noise.final_measure > 0.0 {
        for q in 0..n_data {
            c.push(Op::Depolarize1 {
                q: q as u32,
                p: noise.final_measure,
            });
        }
    }
    let data_base = (rounds * n_stab) as u32;
    for q in 0..n_data {
        c.push(Op::MeasureZ(q as u32));
    }
    for (s, prev) in prev_rec.iter().enumerate() {
        let [a, b] = code.stabilizer_support(s);
        let coord = code.ancilla_coord(s);
        c.push_detector(
            vec![
                data_base + a as u32,
                data_base + b as u32,
                prev.expect("measured every round"),
            ],
            DetectorCoord {
                row: coord.row,
                col: coord.col,
                round: rounds as i32,
            },
        );
    }
    let obs = code
        .logical_z_support()
        .into_iter()
        .map(|q| data_base + q as u32)
        .collect();
    c.push_observable(obs);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_circuit_is_silent() {
        let code = RepetitionCode::new(5).unwrap();
        let c = build_repetition_memory_circuit(&code, 5, NoiseModel::noiseless());
        let mut sim = FrameSimulator::new(&c);
        let mut rng = StdRng::seed_from_u64(0);
        let (dets, obs) = sim.sample(&c, &mut rng);
        assert!(dets.iter().all(|&b| !b));
        assert_eq!(obs, 0);
    }

    #[test]
    fn detector_count() {
        let code = RepetitionCode::new(5).unwrap();
        let c = build_repetition_memory_circuit(&code, 5, NoiseModel::default());
        assert_eq!(c.num_detectors(), 4 * 6);
        assert_eq!(c.num_observables(), 1);
    }

    #[test]
    fn single_x_error_flips_at_most_two_detectors() {
        use crate::circuit::Op;
        let code = RepetitionCode::new(5).unwrap();
        let clean = build_repetition_memory_circuit(&code, 3, NoiseModel::noiseless());
        for q in 0..5u32 {
            let mut c = Circuit::new(clean.num_qubits());
            let mut ticks = 0;
            for op in clean.ops() {
                c.push(*op);
                if matches!(op, Op::Tick) {
                    ticks += 1;
                    if ticks == 2 {
                        c.push(Op::XError { q, p: 1.0 });
                    }
                }
            }
            for det in clean.detectors() {
                c.push_detector(det.records.clone(), det.coord);
            }
            let mut sim = FrameSimulator::new(&c);
            let (dets, _) = sim.sample(&c, &mut StdRng::seed_from_u64(0));
            let w = dets.iter().filter(|&&b| b).count();
            assert!((1..=2).contains(&w), "X on {q} flipped {w} detectors");
        }
    }

    #[test]
    fn full_decoder_stack_runs_on_the_repetition_code() {
        // The entire pipeline — DEM, matching graph, GWT, MWPM, Astrea —
        // is code-agnostic: it must decode the 1-D code out of the box.
        use crate::dem::DemSampler;
        let code = RepetitionCode::new(5).unwrap();
        let c = build_repetition_memory_circuit(&code, 5, NoiseModel::depolarizing(2e-3));
        let dem = c.detector_error_model();
        assert!(dem.undetectable_logicals().is_empty());
        let mut sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(1);
        let mut nonzero = 0;
        for _ in 0..2000 {
            let shot = sampler.sample(&mut rng);
            nonzero += (!shot.detectors.is_empty()) as u32;
        }
        assert!(nonzero > 50);
    }
}
