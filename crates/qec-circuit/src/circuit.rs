//! The circuit intermediate representation.

use std::fmt;

/// One operation in a [`Circuit`].
///
/// The gate set is the minimum needed for surface-code syndrome extraction
/// under the paper's noise model: Z-basis reset and measurement, Hadamard,
/// CNOT, and one- and two-qubit depolarizing channels. `XError` models a
/// pure classical bit-flip channel (useful in tests and for phenomenological
/// noise studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Reset a qubit to |0⟩, discarding any prior error.
    ResetZ(u32),
    /// Hadamard gate (exchanges X and Z frames).
    H(u32),
    /// Controlled-NOT: `Cnot(control, target)`.
    Cnot(u32, u32),
    /// Z-basis measurement; appends one bit to the measurement record.
    MeasureZ(u32),
    /// Single-qubit depolarizing channel: applies X, Y, or Z each with
    /// probability `p / 3`.
    Depolarize1 {
        /// Affected qubit.
        q: u32,
        /// Total error probability.
        p: f64,
    },
    /// Two-qubit depolarizing channel: applies one of the 15 non-identity
    /// two-qubit Paulis, each with probability `p / 15`.
    Depolarize2 {
        /// First affected qubit.
        a: u32,
        /// Second affected qubit.
        b: u32,
        /// Total error probability.
        p: f64,
    },
    /// Classical bit-flip channel: applies X with probability `p`.
    XError {
        /// Affected qubit.
        q: u32,
        /// Error probability.
        p: f64,
    },
    /// Round separator; has no effect on simulation but delimits syndrome
    /// extraction rounds for inspection and debugging.
    Tick,
}

impl Op {
    /// Returns `true` for the stochastic noise channels.
    pub fn is_noise(&self) -> bool {
        matches!(
            self,
            Op::Depolarize1 { .. } | Op::Depolarize2 { .. } | Op::XError { .. }
        )
    }
}

/// Space-time coordinates attached to a detector for debugging and for
/// proximity-based error decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DetectorCoord {
    /// Doubled-lattice row of the associated ancilla.
    pub row: i32,
    /// Doubled-lattice column of the associated ancilla.
    pub col: i32,
    /// Measurement round (the final data-measurement layer has
    /// `round == rounds`).
    pub round: i32,
}

impl fmt::Display for DetectorCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, t={})", self.row, self.col, self.round)
    }
}

/// A detector: the XOR of a set of measurement records that is deterministic
/// (always 0) in the absence of errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detector {
    /// Indices into the measurement record.
    pub records: Vec<u32>,
    /// Space-time coordinate for diagnostics.
    pub coord: DetectorCoord,
}

/// A Clifford + noise circuit with detector and observable annotations.
///
/// Build circuits with [`Circuit::new`] followed by the `push_*` methods, or
/// use [`crate::build_memory_z_circuit`] for surface-code memory
/// experiments.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
    num_records: usize,
    detectors: Vec<Detector>,
    observables: Vec<Vec<u32>>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit {
            num_qubits,
            ..Circuit::default()
        }
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation references a qubit outside the circuit, if a
    /// CNOT's control equals its target, or if a noise probability is not a
    /// valid probability.
    pub fn push(&mut self, op: Op) {
        let check = |q: u32| {
            assert!(
                (q as usize) < self.num_qubits,
                "qubit {q} out of range (circuit has {} qubits)",
                self.num_qubits
            );
        };
        let check_p = |p: f64| {
            assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        };
        match op {
            Op::ResetZ(q) | Op::H(q) => check(q),
            Op::MeasureZ(q) => {
                check(q);
                self.num_records += 1;
            }
            Op::Cnot(c, t) => {
                check(c);
                check(t);
                assert_ne!(c, t, "CNOT control and target must differ");
            }
            Op::Depolarize1 { q, p } => {
                check(q);
                check_p(p);
            }
            Op::Depolarize2 { a, b, p } => {
                check(a);
                check(b);
                assert_ne!(a, b, "two-qubit depolarizing targets must differ");
                check_p(p);
            }
            Op::XError { q, p } => {
                check(q);
                check_p(p);
            }
            Op::Tick => {}
        }
        self.ops.push(op);
    }

    /// Declares a detector over the given measurement-record indices.
    ///
    /// # Panics
    ///
    /// Panics if any record index has not been produced yet.
    pub fn push_detector(&mut self, records: Vec<u32>, coord: DetectorCoord) {
        for &r in &records {
            assert!(
                (r as usize) < self.num_records,
                "detector references record {r}, but only {} exist",
                self.num_records
            );
        }
        self.detectors.push(Detector { records, coord });
    }

    /// Declares a logical observable over the given measurement-record
    /// indices. Observables are indexed in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if any record index has not been produced yet, or if more than
    /// 32 observables are declared (observable flips are reported as a `u32`
    /// mask).
    pub fn push_observable(&mut self, records: Vec<u32>) {
        for &r in &records {
            assert!(
                (r as usize) < self.num_records,
                "observable references record {r}, but only {} exist",
                self.num_records
            );
        }
        assert!(
            self.observables.len() < 32,
            "at most 32 observables supported"
        );
        self.observables.push(records);
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement records the circuit produces per shot.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Number of declared detectors.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Number of declared logical observables.
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// The operation sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The declared detectors.
    pub fn detectors(&self) -> &[Detector] {
        &self.detectors
    }

    /// The declared observables (lists of record indices).
    pub fn observables(&self) -> &[Vec<u32>] {
        &self.observables
    }

    /// Total number of elementary error mechanisms (Pauli components over
    /// all noise channels) in the circuit.
    pub fn num_error_components(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Depolarize1 { .. } => 3,
                Op::Depolarize2 { .. } => 15,
                Op::XError { .. } => 1,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_counts_records() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(0));
        c.push(Op::MeasureZ(0));
        c.push(Op::MeasureZ(1));
        assert_eq!(c.num_records(), 2);
        assert_eq!(c.ops().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_bad_qubit() {
        let mut c = Circuit::new(1);
        c.push(Op::H(1));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn push_rejects_self_cnot() {
        let mut c = Circuit::new(2);
        c.push(Op::Cnot(1, 1));
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn push_rejects_bad_probability() {
        let mut c = Circuit::new(1);
        c.push(Op::Depolarize1 { q: 0, p: 1.5 });
    }

    #[test]
    #[should_panic(expected = "references record")]
    fn detector_needs_existing_records() {
        let mut c = Circuit::new(1);
        c.push_detector(vec![0], DetectorCoord::default());
    }

    #[test]
    fn error_component_counting() {
        let mut c = Circuit::new(2);
        c.push(Op::Depolarize1 { q: 0, p: 0.1 });
        c.push(Op::Depolarize2 { a: 0, b: 1, p: 0.1 });
        c.push(Op::XError { q: 0, p: 0.1 });
        c.push(Op::H(0));
        assert_eq!(c.num_error_components(), 3 + 15 + 1);
    }

    #[test]
    fn is_noise_classification() {
        assert!(Op::Depolarize1 { q: 0, p: 0.0 }.is_noise());
        assert!(Op::Depolarize2 { a: 0, b: 1, p: 0.0 }.is_noise());
        assert!(Op::XError { q: 0, p: 0.0 }.is_noise());
        assert!(!Op::H(0).is_noise());
        assert!(!Op::Tick.is_noise());
    }
}
